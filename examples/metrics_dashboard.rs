//! A live terminal dashboard over a running NavP computation.
//!
//! The 2-D pipelined stage runs on the thread executor in a worker
//! thread while the main thread polls the *shared* [`RunMetrics`]
//! handle a few times a second and redraws a per-PE table: hop rate,
//! hop bandwidth, busy fraction (1 − parked time per wall second) and
//! current queue depth. Everything is read off lock-free counters —
//! the dashboard never perturbs the run it is watching.
//!
//! ```text
//! cargo run --release --example metrics_dashboard
//! ```

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_metrics::{MetricsSnapshot, RunMetrics};
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{run_navp_threads_metered, NavpStage};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PES: usize = 4;
const ROUNDS: usize = 8;

/// Per-PE values read out of one snapshot.
#[derive(Clone, Copy, Default)]
struct PeRow {
    hops: f64,
    hop_bytes: f64,
    park_ns: f64,
    queue: f64,
}

fn rows(snap: &MetricsSnapshot) -> [PeRow; PES] {
    let mut out = [PeRow::default(); PES];
    for (pe, row) in out.iter_mut().enumerate() {
        let l = format!("{pe}");
        let labels: &[(&str, &str)] = &[("pe", l.as_str())];
        let v = |name: &str| snap.value(name, labels).unwrap_or(0.0);
        *row = PeRow {
            hops: v("navp_hops_total"),
            hop_bytes: v("navp_hop_bytes_total"),
            park_ns: v("navp_park_ns_total"),
            queue: v("navp_queue_depth"),
        };
    }
    out
}

fn main() {
    let cfg = MmConfig::real(256, 32);
    let grid = Grid2D::new(2, 2).expect("grid");
    let metrics = RunMetrics::new(PES);

    println!(
        "== live metrics: {} x{ROUNDS} on {} threads ==\n",
        NavpStage::Pipe2D.name(),
        PES
    );

    // The run(s), off the main thread. The dashboard holds the same
    // Arc<RunMetrics>, so counters are visible the instant they move.
    let worker_metrics = Arc::clone(&metrics);
    let worker = std::thread::spawn(move || {
        let mut last = None;
        for _ in 0..ROUNDS {
            let out = run_navp_threads_metered(
                NavpStage::Pipe2D,
                &cfg,
                grid,
                Arc::clone(&worker_metrics),
            )
            .expect("metered run");
            assert_eq!(out.verified, Some(true));
            last = Some(out);
        }
        last.expect("at least one round")
    });

    // Poll-and-redraw loop: ANSI cursor-up rewrites the table in place
    // (on a dumb pipe the frames just stack, which is still readable).
    let interval = Duration::from_millis(150);
    let mut prev = rows(&metrics.snapshot());
    let mut prev_t = Instant::now();
    let mut frames = 0usize;
    let table_lines = PES + 3;
    while !worker.is_finished() {
        std::thread::sleep(interval);
        let now = Instant::now();
        let dt = now.duration_since(prev_t).as_secs_f64().max(1e-9);
        let cur = rows(&metrics.snapshot());
        if frames > 0 {
            print!("\x1b[{table_lines}A");
        }
        println!("  PE    hops/s      KiB/s   busy %   queue");
        println!("  --  --------  ---------  -------  ------");
        for pe in 0..PES {
            let hops_s = (cur[pe].hops - prev[pe].hops) / dt;
            let kib_s = (cur[pe].hop_bytes - prev[pe].hop_bytes) / dt / 1024.0;
            let parked = ((cur[pe].park_ns - prev[pe].park_ns) / 1e9 / dt).clamp(0.0, 1.0);
            let busy = (1.0 - parked) * 100.0;
            println!(
                "  {pe:>2}  {hops_s:>8.1}  {kib_s:>9.1}  {busy:>6.1}%  {:>6}",
                cur[pe].queue as i64
            );
        }
        println!("  frame {:>3}, {dt:.2}s window\x1b[K", frames + 1);
        prev = cur;
        prev_t = now;
        frames += 1;
    }
    let out = worker.join().expect("worker");

    // Final totals from the same registry the table was reading.
    let snap = metrics.snapshot();
    println!("\nrun complete: wall {:?} (last round), verified: {:?}",
        out.wall.expect("wall"), out.verified);
    println!(
        "totals over {ROUNDS} rounds: {} hops, {} hop bytes, {} steps, {} event waits",
        snap.total("navp_hops_total") as u64,
        snap.total("navp_hop_bytes_total") as u64,
        snap.total("navp_steps_total") as u64,
        snap.total("navp_events_waited_total") as u64,
    );
    assert!(frames > 0, "the run ended before a single frame rendered");
    assert!(snap.total("navp_hops_total") > 0.0);
    println!("ok: dashboard polled {frames} frames off live lock-free counters");
}
