//! The NavP journey on the *second* workload: a hash-partitioned
//! key-value store driven through the same four steps as GEMM —
//! sequential, DSC, pipelined, phase-shifted — on a 4-PE mesh of real
//! OS threads, with the phase-shifted step's space-time diagram
//! rendered from a simulated run.
//!
//! Run with: `cargo run --release --example kv_cluster`
//!
//! Every step prints its throughput and must report `verified`: all
//! four products are bitwise identical to the sequential reference —
//! the journey changed *where* operations execute, never *what* they
//! compute.

use navp_repro::navp_kv::{run_kv_sim, run_kv_threads, KvConfig, KvStage};
use navp_repro::navp_sim::CostModel;

fn main() {
    let pes = 4;
    let cfg = KvConfig::new(4_000, 16).with_seed(0x5EED_CAFE);
    println!(
        "navp-kv journey: {} ops in {} batches on {pes} PEs (threads)\n",
        cfg.ops, cfg.batches
    );

    let reference = run_kv_threads(KvStage::Seq, &cfg, pes)
        .expect("sequential reference")
        .product;

    for (tag, stage) in [
        ("(a) sequential     ", KvStage::Seq),
        ("(b) DSC            ", KvStage::Dsc),
        ("(c) pipelined      ", KvStage::Pipe),
        ("(d) phase-shifted  ", KvStage::Phase),
    ] {
        let out = run_kv_threads(stage, &cfg, pes).expect("run");
        let wall = out.wall.expect("threads report wall time");
        let ops_per_s = out.stats.ops as f64 / wall.as_secs_f64();
        let verified = out.verified == Some(true) && out.product == reference;
        println!(
            "{tag} {:>9.0} ops/s   {:>6} scanned   {} compactions   {}",
            ops_per_s,
            out.stats.scanned,
            out.stats.compactions,
            if verified { "verified" } else { "MISMATCH" },
        );
        assert!(verified, "{stage}: product diverged from the reference");
    }

    // The space-time picture of the phase-shifted step, from the
    // simulation executor (virtual time, paper cost model): columns
    // are PEs, time flows downward, letters are messenger labels.
    // Batch carriers enter the mesh at staggered PEs, so every column
    // is busy almost immediately — same shape as GEMM's Figure 1(d).
    println!("\nphase-shifted space-time (simulated, paper cost model):\n");
    let sim_cfg = KvConfig::new(96, 8).with_seed(0x5EED_CAFE);
    let out = run_kv_sim(
        KvStage::Phase,
        &sim_cfg,
        pes,
        &CostModel::paper_cluster(),
        true,
    )
    .expect("sim run");
    let trace = out.trace.expect("trace requested");
    println!("{}", trace.render_spacetime(pes, 16));
    println!(
        "   makespan {:.3} s (virtual), utilization {:.0}%, {} hops / {:.1} kB moved",
        out.virt_seconds.expect("sim"),
        100.0 * trace.utilization(pes),
        out.transfers,
        out.bytes as f64 / 1e3,
    );
}
