//! Figure 1, from live executions: space-time diagrams of the three
//! transformations, rendered from the traces the simulation executor
//! records.
//!
//! Run with: `cargo run --release --example spacetime`
//!
//! Columns are PEs, time flows downward, each cell shows the messenger
//! executing there (first letter of its label; `*` = several in one
//! bucket, `.` = idle). Compare with the paper's Figure 1 (a)-(d).

use navp_repro::navp::SimExecutor;
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{run_navp_sim, NavpStage};
use navp_repro::navp_mm::seq;
use navp_repro::navp_sim::CostModel;

fn main() {
    let cost = CostModel::paper_cluster();
    let cfg = MmConfig::phantom(384, 64);
    let grid = Grid2D::line(3).expect("grid");

    println!("(a) Sequential — one computation locus on one PE:\n");
    let (a, b) = cfg.operands().expect("operands");
    let cl = seq::cluster(&cfg, &a, &b).expect("cluster");
    let rep = SimExecutor::new(cost).with_trace().run(cl).expect("run");
    println!("{}", rep.trace.render_spacetime(3, 14));

    for (tag, stage) in [
        ("(b) DSC — the locus hops after the distributed data:", NavpStage::Dsc1D),
        ("(c) Pipelining — row carriers follow each other:", NavpStage::Pipe1D),
        ("(d) Phase shifting — carriers enter at different PEs:", NavpStage::Phase1D),
    ] {
        println!("{tag}\n");
        let out = run_navp_sim(stage, &cfg, grid, &cost, true).expect("run");
        let trace = out.trace.expect("requested");
        println!("{}", trace.render_spacetime(3, 14));
        println!(
            "   makespan {:.2} s, utilization {:.0}%, {} hops / {:.1} MB moved\n",
            out.virt_seconds.expect("sim"),
            100.0 * trace.utilization(3),
            out.transfers,
            out.bytes as f64 / 1e6,
        );
    }
}
