//! The NavP methodology applied to something other than matrices, using
//! the `navp::transform` API (the paper's future-work "automatable
//! transformations"): a sharded-data analytics workload.
//!
//! Run with: `cargo run --release --example transformations`
//!
//! Setup: a dataset is sharded across 4 PEs (node variables). Eight
//! queries must each scan *every* shard (order does not matter — scans
//! commute, the precondition for phase shifting). We derive, exactly as
//! in the paper:
//!
//! 1. **Sequential**: all shards pulled to one PE — infeasible for big
//!    data; here, one itinerary visiting only PE 0 after centralizing.
//! 2. **DSC**: one query-carrier hops shard to shard (data stays put).
//! 3. **Pipelining**: one carrier per query, following each other.
//! 4. **Phase shifting**: carriers enter at different shards.

use navp_repro::navp::transform::{pipeline, Itinerary};
use navp_repro::navp::{Cluster, Key, SimExecutor};
use navp_repro::navp_sim::CostModel;
use std::sync::Arc;

const PES: usize = 4;
const QUERIES: usize = 8;
const SCAN_SECONDS: f64 = 1.0;

/// An itinerary for one query: scan all shards, leave the result where
/// the scan ends. The per-query accumulator is an agent variable
/// (travels with the carrier).
fn query_itinerary(q: usize) -> Itinerary {
    let acc = Arc::new(std::sync::Mutex::new((0.0f64, 0usize)));
    let mut it = Itinerary::new(format!("q{q}"));
    for pe in 0..PES {
        let acc = acc.clone();
        it = it.then_at(pe, move |ctx| {
            ctx.charge_seconds(SCAN_SECONDS); // modeled scan cost
            let shard = *ctx
                .store()
                .get::<f64>(Key::plain("shard"))
                .expect("shard placed");
            let mut a = acc.lock().unwrap();
            a.0 += shard * (q as f64 + 1.0); // a query-specific aggregate
            a.1 += 1;
            if a.1 == PES {
                let result = a.0;
                ctx.store().insert(Key::at("result", q), result, 8);
            }
        });
    }
    it
}

fn cluster_with_shards() -> Cluster {
    let mut cl = Cluster::new(PES).expect("cluster");
    for pe in 0..PES {
        cl.store_mut(pe)
            .insert(Key::plain("shard"), (pe + 1) as f64 * 10.0, 1 << 20);
    }
    cl
}

fn run(label: &str, cl: Cluster) -> f64 {
    let mut cost = CostModel::paper_cluster();
    cost.daemon_overhead = 0.0;
    let rep = SimExecutor::new(cost).run(cl).expect("no deadlock");
    // All query results must exist, wherever their walks ended.
    let found: usize = rep
        .stores
        .iter()
        .map(|s| (0..QUERIES).filter(|&q| s.contains(Key::at("result", q))).count())
        .sum();
    assert_eq!(found, QUERIES, "{label}: all queries must finish");
    let t = rep.makespan.as_secs_f64();
    println!("{label:<44} {t:>7.2} s");
    t
}

fn main() {
    println!(
        "{QUERIES} queries x {PES} shards, {SCAN_SECONDS:.0} s per shard scan \
         (total work {:.0} s)\n",
        QUERIES as f64 * PES as f64 * SCAN_SECONDS
    );

    // 1. Sequential on one PE: queries run one after another, all scans
    //    on PE 0 against *copies* of the shards (the non-distributed
    //    original). Modeled as all itineraries pinned to PE 0.
    let mut cl = cluster_with_shards();
    for q in 0..QUERIES {
        let acc = Arc::new(std::sync::Mutex::new(0.0f64));
        let mut it = Itinerary::new(format!("q{q}"));
        for _ in 0..PES {
            let acc = acc.clone();
            it = it.then_at(0, move |ctx| {
                ctx.charge_seconds(SCAN_SECONDS);
                let shard = *ctx.store().get::<f64>(Key::plain("shard")).expect("shard");
                *acc.lock().unwrap() += shard;
            });
        }
        let it = it.then_at(0, move |ctx| {
            ctx.store().insert(Key::at("result", q), 0.0f64, 8);
        });
        cl.inject(0, it.into_messenger());
    }
    let t_seq = run("1. sequential (everything on PE 0)", cl);

    // 2. DSC Transformation: ONE carrier does all queries, hopping
    //    after the shards. Still sequential — but the data never moves.
    let mut cl = cluster_with_shards();
    let mut whole = Itinerary::new("dsc");
    for q in 0..QUERIES {
        whole = whole.concat(query_itinerary(q));
    }
    cl.inject(0, whole.into_messenger());
    let t_dsc = run("2. DSC (one carrier chases the shards)", cl);

    // 3. Pipelining Transformation: one carrier per query.
    let mut cl = cluster_with_shards();
    for (pe, carrier) in pipeline((0..QUERIES).map(query_itinerary).collect()) {
        cl.inject(pe, carrier);
    }
    let t_pipe = run("3. pipelined (one carrier per query)", cl);

    // 4. Phase-shifting Transformation: queries enter at different
    //    shards (scans commute, so this is legal).
    let mut cl = cluster_with_shards();
    for q in 0..QUERIES {
        let it = query_itinerary(q).phase_shift(q % PES);
        let entry = it.entry_pe();
        cl.inject(entry, it.into_messenger());
    }
    let t_phase = run("4. phase-shifted (enter at different shards)", cl);

    println!(
        "\nspeedups over sequential: DSC {:.2}x, pipelined {:.2}x, phase-shifted {:.2}x",
        t_seq / t_dsc,
        t_seq / t_pipe,
        t_seq / t_phase
    );
    println!(
        "— the same incremental ladder as the paper's matrix study, derived\n\
         with the `navp::transform` API instead of hand-written carriers."
    );
    assert!(t_phase <= t_pipe && t_pipe < t_seq + 1e-9);
}
