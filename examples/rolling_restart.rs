//! Rolling restart of a live 4-process networked cluster under durable
//! checkpoints: each `navp-pe` daemon is terminated mid-computation
//! and replaced in sequence, the run resumes from the on-disk cuts
//! after every replacement, and the final product is **bitwise**
//! identical to an uninterrupted in-process run.
//!
//! Run with:
//!
//! ```text
//! cargo build --release          # builds the navp-pe daemon
//! cargo run --release --example rolling_restart
//! ```
//!
//! What it demonstrates, per round:
//!
//! 1. four `navp-pe --listen --durable-dir` daemons serve the cluster;
//! 2. once the round's victim has committed some run boundaries, it
//!    receives SIGTERM, flushes its durable cut, and exits cleanly —
//!    the driver reports [`RunError::PeStopped`] (or the disconnect of
//!    a peer that lost its mesh), never a wrong product;
//! 3. the victim process is replaced, the cluster state is restored
//!    from the checkpoint directory (`restore latency` below measures
//!    that read+reconcile), and the computation resumes where the
//!    durable cuts left it.
//!
//! After all four daemons have been replaced, a final resumed run
//! completes and the product is compared bit-for-bit against the
//! thread executor's.

use navp_repro::navp::durable::{read_cut, read_manifest};
use navp_repro::navp_matrix::{Grid2D, Matrix};
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_threads, run_restored_net, NavpStage, NetOpts, RunOutput, RunnerError,
};
use navp_repro::navp_mm::MmConfig;
use navp_repro::navp_net::cluster::resolve_pe_bin;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PES: usize = 4;
const BASE_PORT: u16 = 7410;

fn addr(pe: usize) -> String {
    format!("127.0.0.1:{}", BASE_PORT + pe as u16)
}

fn spawn_daemon(bin: &Path, pe: usize, dir: &Path) -> Child {
    Command::new(bin)
        .arg("--listen")
        .arg(addr(pe))
        .arg("--durable-dir")
        .arg(dir)
        .stdin(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()))
}

/// SIGTERM (not SIGKILL): the daemon flushes its durable state and
/// exits with the distinct graceful status.
fn sigterm(child: &Child) {
    let _ = Command::new("kill").arg(child.id().to_string()).status();
}

/// The victim's committed boundary in the *current* session (`None`
/// until its first spill of this session lands).
fn session_boundary(dir: &Path, pe: usize) -> Option<u64> {
    let manifest = read_manifest(dir).ok()?;
    let cut = read_cut(dir, pe).ok()?;
    (cut.nonce == manifest.nonce).then_some(cut.boundary)
}

fn checkpoint_sizes(dir: &Path) -> (u64, Vec<u64>) {
    let mut per_pe = Vec::with_capacity(PES);
    let mut total = 0;
    for pe in 0..PES {
        let bytes = std::fs::metadata(dir.join(format!("pe-{pe}.ckpt")))
            .map(|m| m.len())
            .unwrap_or(0);
        total += bytes;
        per_pe.push(bytes);
    }
    (total, per_pe)
}

fn main() {
    let cfg = MmConfig::real(24, 4); // N = 24, block order 4
    let grid = Grid2D::new(2, 2).expect("grid");
    let stage = NavpStage::Pipe2D;
    let dir = std::env::temp_dir().join(format!("navp-rolling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    let bin = resolve_pe_bin(None).expect("navp-pe binary (cargo build --release first)");
    let opts = NetOpts {
        join: (0..PES).map(addr).collect(),
        ..NetOpts::default()
    }
    .with_durable_dir(&dir);

    println!("== rolling restart: {} on {PES} durable PE daemons ==\n", stage.name());

    // The uninterrupted reference product (in-process threads).
    let reference = run_navp_threads(stage, &cfg, grid)
        .expect("thread run")
        .c
        .expect("real payload");

    let mut daemons: Vec<Child> = (0..PES).map(|pe| spawn_daemon(&bin, pe, &dir)).collect();
    std::thread::sleep(Duration::from_millis(300)); // listeners bind at exec

    let mut final_out: Option<RunOutput> = None;
    let mut restarted = 0usize;
    // Indexing, not iterating: the body replaces `daemons[victim]`
    // while the rest of the vec keeps serving.
    #[allow(clippy::needless_range_loop)]
    for victim in 0..PES {
        // Drive the (first or resumed) run on a side thread so this
        // one can terminate the victim mid-computation.
        let (cfg2, opts2, dir2) = (cfg, opts.clone(), dir.clone());
        let driver = std::thread::spawn(move || -> Result<RunOutput, RunnerError> {
            if victim == 0 {
                run_navp_net(stage, &cfg2, grid, &opts2)
            } else {
                run_restored_net(stage, &cfg2, grid, &opts2, &dir2)
            }
        });

        // Wait for the victim to commit real progress in *this*
        // session (its cut carries the session nonce), then stop it.
        let mut killed = false;
        while !driver.is_finished() {
            if session_boundary(&dir, victim).is_some_and(|b| b >= 2) {
                sigterm(&daemons[victim]);
                killed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let result = driver.join().expect("driver thread");
        match result {
            Ok(out) => {
                // The run beat the kill (tiny problems finish fast);
                // the product is already complete.
                println!("round {victim}: run completed before the stop landed");
                if killed {
                    let _ = daemons[victim].wait();
                    daemons[victim] = spawn_daemon(&bin, victim, &dir);
                }
                final_out = Some(out);
                break;
            }
            Err(e) => {
                assert!(killed, "run may only fail because we stopped a PE: {e}");
                let status = daemons[victim].wait().expect("victim exit status");
                let (total, per_pe) = checkpoint_sizes(&dir);
                println!(
                    "round {victim}: stopped PE {victim} mid-run (driver saw: {e}; victim exit {status}); \
                     cuts on disk: {total} B total {per_pe:?}"
                );
                // Replace the stopped daemon — the other three keep
                // serving — and measure how long the state takes to
                // come back from disk.
                daemons[victim] = spawn_daemon(&bin, victim, &dir);
                restarted += 1;
                let t0 = Instant::now();
                let restored = navp_repro::navp_net::restore_from_dir(&dir).expect("restore");
                println!(
                    "  restore latency: {:.2?} ({} PEs reconciled)",
                    t0.elapsed(),
                    PES
                );
                drop(restored); // the resumed run re-reads the cuts itself
                std::thread::sleep(Duration::from_millis(200)); // replacement binds
            }
        }
    }

    // All four daemons were replaced (or the run finished early): one
    // final resumed run completes the computation.
    let out = match final_out {
        Some(out) => out,
        None => run_restored_net(stage, &cfg, grid, &opts, &dir).expect("final resumed run"),
    };
    let c = out.c.as_ref().expect("real payload");
    assert_eq!(out.verified, Some(true), "product must verify");
    assert!(bitwise_eq(c, &reference), "product must be bitwise-identical");
    println!(
        "\nrolled through {restarted} daemon replacements; final product bitwise-identical \
         to the uninterrupted run ({} hops, {} wire bytes)",
        out.transfers, out.bytes
    );

    for d in &mut daemons {
        let _ = d.kill();
        let _ = d.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}
