//! Fault tolerance from the programming model: a PE is crashed in the
//! middle of a 1-D DSC run, the runtime restarts it from hop-boundary
//! checkpoints plus a node-store write journal, and the product still
//! matches the sequential kernel **bitwise**.
//!
//! Run with: `cargo run --release --example crash_recovery`
//!
//! NavP makes this cheap: a messenger's whole computation state lives
//! in its agent variables, which are only externally visible at
//! delivery points (injection, hop arrival, event wake-up). Snapshotting
//! there captures everything; nothing mid-run ever needs saving.

use navp_repro::navp::FaultPlan;
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{
    run_navp_sim, run_navp_sim_faulted, run_navp_threads_faulted, NavpStage,
};
use navp_repro::navp_sim::CostModel;

fn main() {
    let cfg = MmConfig::real(24, 4); // N = 24, block order 4 → 6 block rows
    let grid = Grid2D::line(3).expect("grid"); // 3 PEs in a line
    let cost = CostModel::paper_cluster();

    // Crash PE 1 just as it starts its second messenger run: the DSC
    // carrier has already deposited work there, so recovery must rebuild
    // real state, not an idle daemon.
    let plan = FaultPlan::new().crash_pe(1, 2);

    let clean = run_navp_sim(NavpStage::Dsc1D, &cfg, grid, &cost, false).expect("clean run");
    let faulted =
        run_navp_sim_faulted(NavpStage::Dsc1D, &cfg, grid, &cost, plan.clone()).expect("recovery");

    let f = faulted.faults.expect("sim reports fault counters");
    println!("injected : {plan:?}");
    println!(
        "recovered: crashes={} redelivered={} replayed_writes={}",
        f.crashes, f.redelivered, f.replayed_writes
    );
    println!(
        "makespan : clean {:.3}s -> faulted {:.3}s (outage absorbed)",
        clean.virt_seconds.unwrap(),
        faulted.virt_seconds.unwrap()
    );
    assert_eq!(faulted.verified, Some(true));
    assert_eq!(clean.c, faulted.c, "recovery must be bitwise-identical");
    println!("sim      : product identical to the fault-free run, bit for bit");

    // The same plan against real OS threads: the daemon is restarted and
    // the last checkpoints are re-delivered under an epoch guard.
    let wall = run_navp_threads_faulted(NavpStage::Dsc1D, &cfg, grid, plan).expect("threads");
    assert_eq!(wall.verified, Some(true));
    assert_eq!(clean.c, wall.c);
    println!(
        "threads  : recovered in {:?}, product verified",
        wall.wall.unwrap()
    );
}
