//! Quickstart: the NavP programming model in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Part 1 writes a tiny navigational program by hand — a messenger that
//! hops after distributed data, a producer/consumer pair synchronized by
//! events — and runs it on both executors.
//!
//! Part 2 multiplies two real matrices with the paper's final program
//! (2-D full DPC, Figure 15) and verifies the product against the
//! sequential kernel.

use navp_repro::navp::script::Script;
use navp_repro::navp::{Cluster, Effect, Key, SimExecutor, ThreadExecutor};
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{run_navp_sim, run_navp_threads, NavpStage};
use navp_repro::navp_sim::CostModel;

fn main() {
    part1_navigational_programming();
    part2_matrix_multiplication();
}

fn part1_navigational_programming() {
    println!("== Part 1: messengers, node variables, events ==\n");

    // A cluster of three PEs. Node variables are placed before the run —
    // here, PE 2 holds a "large" value that stays put.
    let mut cluster = Cluster::new(3).expect("cluster");
    cluster
        .store_mut(2)
        .insert(Key::plain("big-data"), 21.0f64, 8);

    // A messenger: its struct fields (here, captured state in the
    // closures) are agent variables that migrate with it. It hops to the
    // data, computes, leaves the result as a node variable, and signals.
    cluster.inject(
        0,
        Script::new("worker")
            .then(|_| Effect::Hop(2)) // chase the large data
            .then(|ctx| {
                let x = *ctx
                    .store()
                    .get::<f64>(Key::plain("big-data"))
                    .expect("placed at setup");
                ctx.store().insert(Key::plain("result"), 2.0 * x, 8);
                ctx.signal(Key::plain("ready"));
                Effect::Done
            }),
    );

    // A second messenger waits for the event — MESSENGERS' waitEvent.
    cluster.inject(
        2,
        Script::new("reader")
            .then(|_| Effect::WaitEvent(Key::plain("ready")))
            .then(|ctx| {
                let r = *ctx.store().get::<f64>(Key::plain("result")).expect("set");
                println!("reader saw result = {r} on PE {}", ctx.here());
                Effect::Done
            }),
    );

    // Run under the calibrated virtual-time model of the paper's 2003
    // cluster...
    let report = SimExecutor::new(CostModel::paper_cluster())
        .run(cluster)
        .expect("no deadlock");
    println!(
        "virtual time {:.6} s, {} hops, {} steps\n",
        report.makespan.as_secs_f64(),
        report.hops,
        report.steps
    );

    // ...and the same program on real OS threads.
    let mut cluster = Cluster::new(3).expect("cluster");
    cluster.store_mut(2).insert(Key::plain("big-data"), 21.0f64, 8);
    cluster.inject(
        0,
        Script::new("worker")
            .then(|_| Effect::Hop(2))
            .then(|ctx| {
                let x = *ctx.store().get::<f64>(Key::plain("big-data")).expect("set");
                ctx.store().insert(Key::plain("result"), 2.0 * x, 8);
                Effect::Done
            }),
    );
    let report = ThreadExecutor::new().run(cluster).expect("run");
    println!(
        "thread executor: wall {:?}, result = {:?}\n",
        report.wall,
        report.stores[2].get::<f64>(Key::plain("result"))
    );
}

fn part2_matrix_multiplication() {
    println!("== Part 2: the paper's full DPC matrix multiply ==\n");
    // Real payloads: the product is verified against the sequential
    // kernel. N = 240, algorithmic blocks of order 40, 2x2 PEs.
    let cfg = MmConfig::real(240, 40);
    let grid = Grid2D::new(2, 2).expect("grid");

    let sim = run_navp_sim(
        NavpStage::Dpc2D,
        &cfg,
        grid,
        &CostModel::paper_cluster(),
        false,
    )
    .expect("run");
    println!(
        "virtual time on the 2003 cluster: {:.3} s (verified: {:?})",
        sim.virt_seconds.expect("sim"),
        sim.verified
    );

    let wall = run_navp_threads(NavpStage::Dpc2D, &cfg, grid).expect("run");
    println!(
        "wall time on this machine:        {:?} (verified: {:?})",
        wall.wall.expect("threads"),
        wall.verified
    );
    assert_eq!(sim.verified, Some(true));
    assert_eq!(wall.verified, Some(true));
    println!("\nquickstart OK");
}
