//! A real distributed run: four `navp-pe` OS processes on loopback
//! TCP execute the 2-D pipelined stage, first clean, then with a
//! seeded hop-delay fault plan stressing the transport — and both
//! products match the in-process thread executor **bitwise**.
//!
//! Run with:
//!
//! ```text
//! cargo build --release          # builds the navp-pe daemon
//! cargo run --release --example net_cluster
//! ```
//!
//! The driver spawns the four PE processes itself and wires the full
//! TCP mesh. To spread the same cluster over real machines instead,
//! start `navp-pe --listen host:port` on each and hand the addresses
//! to `NetOpts::join` — nothing else changes. This example does that
//! itself when `NAVP_NET_JOIN` names comma-separated addresses
//! (which is how CI points it at daemons started with
//! `--metrics-addr`, then curls their live `/metrics` endpoints).
//! Four addresses reproduce the default 2×2 pipelined demo; any other
//! count runs the phase-shifted 1-D stage on a line mesh of that many
//! PEs — the CI high-PE job drives 64 this way:
//!
//! ```text
//! navp-pe --listen 127.0.0.1:7101 --metrics-addr 127.0.0.1:9101 &
//! ... (four daemons) ...
//! NAVP_NET_JOIN=127.0.0.1:7101,... cargo run --release --example net_cluster
//! curl -s http://127.0.0.1:9101/metrics
//! curl -s http://127.0.0.1:9101/healthz
//! ```

use navp_repro::navp::FaultPlan;
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_net_faulted, run_navp_threads, NavpStage, NetOpts,
};

fn main() {
    let opts = match std::env::var("NAVP_NET_JOIN") {
        Ok(v) => {
            let join: Vec<String> = v.split(',').map(str::to_string).collect();
            assert!(join.len() >= 2, "NAVP_NET_JOIN needs >=2 addresses, got {v}");
            println!("joining externally started daemons: {join:?}");
            NetOpts {
                join,
                ..NetOpts::default()
            }
        }
        Err(_) => NetOpts::default(), // spawn navp-pe next to this executable
    };
    // Metrics on: every PE daemon meters its run and the driver merges
    // the per-PE registries into one cluster snapshot at drain. Four
    // PEs (the default spawn count) demo the 2-D pipelined stage on a
    // 2×2 mesh; any other join count runs phase1d on a line mesh that
    // wide, with the problem scaled so every PE owns two block rows.
    let pes = if opts.join.is_empty() { 4 } else { opts.join.len() };
    let (grid, stage, cfg) = if pes == 4 {
        (
            Grid2D::new(2, 2).expect("grid"),
            NavpStage::Pipe2D,
            MmConfig::real(24, 4).with_metrics(true),
        )
    } else {
        (
            Grid2D::line(pes).expect("grid"),
            NavpStage::Phase1D,
            MmConfig::real(4 * pes, 2)
                .with_metrics(true)
                .with_watchdog(std::time::Duration::from_secs(180)),
        )
    };

    println!("== {} on a {pes}-process loopback cluster ==\n", stage.name());

    // Reference product from the in-process thread executor.
    let reference = run_navp_threads(stage, &cfg, grid).expect("thread run");

    // Clean networked run: every hop is a serialized messenger snapshot
    // crossing a real TCP socket between OS processes.
    let clean = run_navp_net(stage, &cfg, grid, &opts).expect("networked run");
    report("clean", &clean);
    assert_eq!(clean.verified, Some(true));
    assert_eq!(
        reference.c, clean.c,
        "networked product must match threads bitwise"
    );
    println!("         product bitwise-identical to the thread executor\n");

    // The merged cluster metrics, collected over the mesh at drain —
    // including the event loop's own I/O series (frames sent, frames
    // coalesced into a neighbour's buffer, writev flushes).
    let snap = clean.metrics.as_ref().expect("metered run");
    println!("cluster metrics (merged over {pes} PEs):");
    for name in [
        "navp_hops_total",
        "navp_hop_bytes_total",
        "navp_steps_total",
        "navp_events_signaled_total",
        "navp_frame_encode_bytes_total",
        "navp_frame_decode_bytes_total",
        "navp_net_io_frames_total",
        "navp_net_io_coalesced_frames_total",
        "navp_net_io_writev_total",
        "navp_net_io_flushed_bytes_total",
    ] {
        println!("  {name:<36} {}", snap.total(name) as u64);
    }
    assert!(
        snap.total("navp_net_io_frames_total") > 0.0,
        "the event loop's I/O counters must land in the merged snapshot"
    );
    println!();

    // Now hold individual frames back at the sockets: a deterministic
    // hop-delay plan (delay-only — the data path is untouched, only
    // arrival times move).
    let mut plan = FaultPlan::new();
    for (pe, (nth, secs)) in [(1, 0.10), (2, 0.15), (1, 0.10), (1, 0.05)]
        .into_iter()
        .enumerate()
        .take(pes)
    {
        plan = plan.delay_hop(pe, nth, secs);
    }
    println!("injecting: {plan:?}");
    let delayed = run_navp_net_faulted(stage, &cfg, grid, &opts, plan).expect("delayed run");
    report("delayed", &delayed);
    let f = delayed.faults.expect("networked runs report fault stats");
    println!("         hops held at the socket: {}", f.hops_delayed);
    assert!(f.hops_delayed > 0);
    // The same injections, seen three ways: aggregate FaultStats,
    // per-PE FaultStats, and the navp_fault_injections_total counter.
    let per_pe_delayed: u64 = delayed
        .per_pe_net
        .as_ref()
        .expect("per-PE stats")
        .iter()
        .map(|s| s.faults.hops_delayed)
        .sum();
    assert_eq!(per_pe_delayed, f.hops_delayed, "per-PE faults must sum up");
    let injected = delayed
        .metrics
        .as_ref()
        .expect("metered run")
        .total("navp_fault_injections_total") as u64;
    println!("         navp_fault_injections_total: {injected}");
    assert!(injected >= f.hops_delayed, "counter must cover the delays");
    assert_eq!(delayed.verified, Some(true));
    assert_eq!(
        reference.c, delayed.c,
        "delays must never change the product"
    );
    println!("         product still bitwise-identical\n");

    println!("ok: TCP cluster reproduces the thread executor bit for bit");
}

/// Print the per-PE transfer table for one networked run.
fn report(label: &str, out: &navp_repro::navp_mm::runner::RunOutput) {
    let per_pe = out.per_pe_net.as_ref().expect("per-PE stats");
    println!(
        "{label:>8}: wall {:?}, {} hops, {} wire bytes",
        out.wall.expect("wall clock"),
        out.transfers,
        out.bytes
    );
    println!("          PE   steps    hops   payload B");
    for (pe, s) in per_pe.iter().enumerate() {
        println!(
            "          {pe:>2} {:>7} {:>7} {:>11}",
            s.steps, s.hops, s.hop_payload_bytes
        );
    }
}
