//! A real distributed run: four `navp-pe` OS processes on loopback
//! TCP execute the 2-D pipelined stage, first clean, then with a
//! seeded hop-delay fault plan stressing the transport — and both
//! products match the in-process thread executor **bitwise**.
//!
//! Run with:
//!
//! ```text
//! cargo build --release          # builds the navp-pe daemon
//! cargo run --release --example net_cluster
//! ```
//!
//! The driver spawns the four PE processes itself and wires the full
//! TCP mesh. To spread the same cluster over real machines instead,
//! start `navp-pe --listen host:port` on each and hand the addresses
//! to `NetOpts::join` — nothing else changes. This example does that
//! itself when `NAVP_NET_JOIN` names four comma-separated addresses
//! (which is how CI points it at daemons started with
//! `--metrics-addr`, then curls their live `/metrics` endpoints):
//!
//! ```text
//! navp-pe --listen 127.0.0.1:7101 --metrics-addr 127.0.0.1:9101 &
//! ... (four daemons) ...
//! NAVP_NET_JOIN=127.0.0.1:7101,... cargo run --release --example net_cluster
//! curl -s http://127.0.0.1:9101/metrics
//! curl -s http://127.0.0.1:9101/healthz
//! ```

use navp_repro::navp::FaultPlan;
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_net_faulted, run_navp_threads, NavpStage, NetOpts,
};

fn main() {
    // Metrics on: every PE daemon meters its run and the driver merges
    // the per-PE registries into one cluster snapshot at drain.
    let cfg = MmConfig::real(24, 4).with_metrics(true); // N = 24, block order 4
    let grid = Grid2D::new(2, 2).expect("grid"); // 2×2 PE mesh, 4 processes
    let stage = NavpStage::Pipe2D;
    let opts = match std::env::var("NAVP_NET_JOIN") {
        Ok(v) => {
            let join: Vec<String> = v.split(',').map(str::to_string).collect();
            assert_eq!(join.len(), 4, "NAVP_NET_JOIN needs 4 addresses, got {v}");
            println!("joining externally started daemons: {join:?}");
            NetOpts {
                join,
                ..NetOpts::default()
            }
        }
        Err(_) => NetOpts::default(), // spawn navp-pe next to this executable
    };

    println!("== {} on a 4-process loopback cluster ==\n", stage.name());

    // Reference product from the in-process thread executor.
    let reference = run_navp_threads(stage, &cfg, grid).expect("thread run");

    // Clean networked run: every hop is a serialized messenger snapshot
    // crossing a real TCP socket between OS processes.
    let clean = run_navp_net(stage, &cfg, grid, &opts).expect("networked run");
    report("clean", &clean);
    assert_eq!(clean.verified, Some(true));
    assert_eq!(
        reference.c, clean.c,
        "networked product must match threads bitwise"
    );
    println!("         product bitwise-identical to the thread executor\n");

    // The merged cluster metrics, collected over the mesh at drain.
    let snap = clean.metrics.as_ref().expect("metered run");
    println!("cluster metrics (merged over {} PEs):", grid.rows * grid.cols);
    for name in [
        "navp_hops_total",
        "navp_hop_bytes_total",
        "navp_steps_total",
        "navp_events_signaled_total",
        "navp_frame_encode_bytes_total",
        "navp_frame_decode_bytes_total",
    ] {
        println!("  {name:<32} {}", snap.total(name) as u64);
    }
    println!();

    // Now hold individual frames back at the sockets: a deterministic
    // hop-delay plan (delay-only — the data path is untouched, only
    // arrival times move).
    let plan = FaultPlan::new()
        .delay_hop(0, 1, 0.10)
        .delay_hop(1, 2, 0.15)
        .delay_hop(2, 1, 0.10)
        .delay_hop(3, 1, 0.05);
    println!("injecting: {plan:?}");
    let delayed = run_navp_net_faulted(stage, &cfg, grid, &opts, plan).expect("delayed run");
    report("delayed", &delayed);
    let f = delayed.faults.expect("networked runs report fault stats");
    println!("         hops held at the socket: {}", f.hops_delayed);
    assert!(f.hops_delayed > 0);
    // The same injections, seen three ways: aggregate FaultStats,
    // per-PE FaultStats, and the navp_fault_injections_total counter.
    let per_pe_delayed: u64 = delayed
        .per_pe_net
        .as_ref()
        .expect("per-PE stats")
        .iter()
        .map(|s| s.faults.hops_delayed)
        .sum();
    assert_eq!(per_pe_delayed, f.hops_delayed, "per-PE faults must sum up");
    let injected = delayed
        .metrics
        .as_ref()
        .expect("metered run")
        .total("navp_fault_injections_total") as u64;
    println!("         navp_fault_injections_total: {injected}");
    assert!(injected >= f.hops_delayed, "counter must cover the delays");
    assert_eq!(delayed.verified, Some(true));
    assert_eq!(
        reference.c, delayed.c,
        "delays must never change the product"
    );
    println!("         product still bitwise-identical\n");

    println!("ok: TCP cluster reproduces the thread executor bit for bit");
}

/// Print the per-PE transfer table for one networked run.
fn report(label: &str, out: &navp_repro::navp_mm::runner::RunOutput) {
    let per_pe = out.per_pe_net.as_ref().expect("per-PE stats");
    println!(
        "{label:>8}: wall {:?}, {} hops, {} wire bytes",
        out.wall.expect("wall clock"),
        out.transfers,
        out.bytes
    );
    println!("          PE   steps    hops   payload B");
    for (pe, s) in per_pe.iter().enumerate() {
        println!(
            "          {pe:>2} {:>7} {:>7} {:>11}",
            s.steps, s.hops, s.hop_payload_bytes
        );
    }
}
