//! Would the paper's conclusions hold on modern hardware? A what-if
//! sweep over cost models: the paper's 2003 cluster vs a contemporary
//! one (~50 GFLOP/s nodes, 25 GbE), at equal problem sizes.
//!
//! Run with: `cargo run --release --example modern_cluster`
//!
//! The qualitative result: the *transformation chain* still orders the
//! same way, but the margins compress — the compute/communication ratio
//! of dense matrix multiply has shifted so far toward communication that
//! the 2-D stages become bandwidth-bound at sizes the 2003 cluster found
//! compute-bound. This is exactly the kind of question a calibrated
//! model answers cheaply.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::gentleman::GentlemanOpts;
use navp_repro::navp_mm::runner::{run_mp_sim, run_navp_sim, run_seq_sim, MpAlg, NavpStage};
use navp_repro::navp_sim::CostModel;

fn main() {
    let grid = Grid2D::new(3, 3).expect("grid");
    let cfg = MmConfig::phantom(6144, 256);

    for (label, cost) in [
        ("2003 cluster (paper calibration)", CostModel::paper_cluster()),
        ("modern cluster (50 GF/s, 25 GbE)", CostModel::modern_cluster()),
    ] {
        println!("== {label} ==");
        let seq = run_seq_sim(&cfg, &cost).expect("seq").virt_seconds.expect("sim");
        println!("{:<22} {:>10.2} s", "Sequential", seq);
        for stage in [NavpStage::Dsc2D, NavpStage::Pipe2D, NavpStage::Dpc2D] {
            let t = run_navp_sim(stage, &cfg, grid, &cost, false)
                .expect("run")
                .virt_seconds
                .expect("sim");
            println!("{:<22} {:>10.2} s   speedup {:>5.2}", stage.name(), t, seq / t);
        }
        let t = run_mp_sim(MpAlg::Gentleman(GentlemanOpts::default()), &cfg, grid, &cost)
            .expect("run")
            .virt_seconds
            .expect("sim");
        println!("{:<22} {:>10.2} s   speedup {:>5.2}\n", "MPI (Gentleman)", t, seq / t);
    }

    println!(
        "Note how the ordering (phase <= pipeline <= DSC, NavP phase vs MPI)\n\
         survives the 20-year hardware shift while every absolute speedup\n\
         moves: on the modern model the same N is latency/bandwidth-bound."
    );
}
