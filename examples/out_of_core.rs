//! The Table 2 phenomenon: **DSC turns paging into a modest amount of
//! network communication** — the paper's original motivation for
//! distributed sequential computing, reproduced under the memory model.
//!
//! Run with: `cargo run --release --example out_of_core`
//!
//! A matrix problem several times larger than one PE's physical memory
//! is run (a) sequentially on one PE, which thrashes, and (b) as 1-D DSC
//! over 8 PEs, where each PE's slice fits and only the carried block row
//! crosses the network. No parallelism is involved — the DSC program is
//! still one thread of control.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{run_navp_sim, run_seq_sim, NavpStage};
use navp_repro::navp_sim::CostModel;

fn main() {
    let cost = CostModel::paper_cluster();
    println!(
        "Machine model: {} MB RAM/PE, fault bandwidth {:.1} MB/s, thrash threshold {}x\n",
        cost.mem_capacity >> 20,
        cost.fault_bandwidth / 1e6,
        cost.thrash_threshold,
    );

    println!("{:>6} {:>9} | {:>12} {:>12} {:>12} | {:>9}", "N", "data(MB)", "seq-clean(s)", "seq-256MB(s)", "DSC-8PE(s)", "DSC SU");
    for n in [4096usize, 6144, 9216] {
        let cfg = MmConfig::phantom(n, 128);
        let data_mb = 3 * n * n * 8 / (1 << 20);

        // The paper's "fitted" sequential: what a machine with enough
        // memory would do.
        let mut clean = cost;
        clean.mem_capacity = u64::MAX;
        let t_clean = run_seq_sim(&cfg, &clean).expect("seq").virt_seconds.expect("sim");

        // One 256 MB PE: pays the paging model's price.
        let t_thrash = run_seq_sim(&cfg, &cost).expect("seq").virt_seconds.expect("sim");

        // 1-D DSC over 8 PEs: B and C bands fit per PE.
        let t_dsc = run_navp_sim(
            NavpStage::Dsc1D,
            &cfg,
            Grid2D::line(8).expect("grid"),
            &cost,
            false,
        )
        .expect("dsc")
        .virt_seconds
        .expect("sim");

        println!(
            "{n:>6} {data_mb:>9} | {t_clean:>12.0} {t_thrash:>12.0} {t_dsc:>12.0} | {:>9.2}",
            t_clean / t_dsc
        );
    }

    println!(
        "\nPaper (Table 2, N=9216): sequential 36534 s measured vs 13922 s\n\
         fitted; 1-D DSC on 8 PEs 14959 s — speedup 0.93 over the *fitted*\n\
         time, i.e. DSC runs the too-big-for-one-machine problem at almost\n\
         full sequential speed while the real sequential run was 2.6x slower."
    );
}
