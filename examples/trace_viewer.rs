//! Trace a live 4-PE run on both real executors and export it for
//! Perfetto.
//!
//! Run with: `cargo run --release --example trace_viewer`
//!
//! The sim executor replays the paper's figures in *virtual* time; this
//! example shows the same instrumentation on *wall* clocks: the 2-D
//! pipelined stage runs once on the thread executor and once as four OS
//! processes over loopback TCP, each with `MmConfig::with_trace(true)`.
//! For each run it prints the derived [`TraceReport`] and the ASCII
//! space-time diagram, then writes Chrome trace-event JSON to
//! `target/trace_threads.json` / `target/trace_net.json` — open either
//! in <https://ui.perfetto.dev> to get one swim-lane per PE with named
//! messenger tracks.
//!
//! The exports are self-checked with [`validate_chrome_json`]; the CI
//! loopback job runs this example as its traced acceptance step.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::runner::{run_navp_net, run_navp_threads, NavpStage, NetOpts, RunOutput};
use navp_repro::navp_mm::MmConfig;
use navp_repro::navp_trace::{validate_chrome_json, ChromeTrace};
use std::path::Path;
use std::time::Duration;

fn show(tag: &str, out: &RunOutput, pes: usize, path: &Path) {
    let trace = out.trace.as_ref().expect("trace requested");
    let report = out.trace_report.as_ref().expect("report derived");
    println!("== {tag} ==\n");
    println!("{}", trace.render_spacetime(pes, 14));
    println!("{report}");

    let doc = trace.to_chrome_json();
    let sum = validate_chrome_json(&doc).unwrap_or_else(|e| panic!("{tag}: invalid export: {e}"));
    assert_eq!(
        sum.pids,
        (0..pes).collect::<Vec<_>>(),
        "{tag}: every PE must appear in the export"
    );
    assert!(
        sum.execs > 0 && sum.transfers > 0,
        "{tag}: export missing exec/transfer spans"
    );
    std::fs::write(path, &doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "wrote {} ({} events, {} PEs) — open in ui.perfetto.dev\n",
        path.display(),
        sum.events,
        sum.pids.len()
    );
}

fn main() {
    let cfg = MmConfig::real(16, 2)
        .with_watchdog(Duration::from_secs(60))
        .with_trace(true);
    let grid = Grid2D::new(2, 2).expect("grid");
    let out_dir = Path::new("target");
    std::fs::create_dir_all(out_dir).expect("target dir");

    let threads =
        run_navp_threads(NavpStage::Pipe2D, &cfg, grid).expect("traced threads run");
    assert_eq!(threads.verified, Some(true));
    show(
        "threads: 4 PEs in one process",
        &threads,
        4,
        &out_dir.join("trace_threads.json"),
    );

    // The same stage as four `navp-pe` OS processes over loopback TCP;
    // per-PE traces ship back on the wire and merge onto the driver's
    // clock. Outside `cargo test` the daemon binary is found next to
    // this example's own executable.
    let net = run_navp_net(NavpStage::Pipe2D, &cfg, grid, &NetOpts::default())
        .expect("traced net run");
    assert_eq!(net.verified, Some(true));
    show(
        "net: 4 PEs as OS processes (loopback TCP)",
        &net,
        4,
        &out_dir.join("trace_net.json"),
    );

    println!("ok: both products verified, both exports validate");
}
