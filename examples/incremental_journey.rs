//! The paper's central claim, reproduced end to end: **each
//! transformation is mechanical, and each intermediate program is an
//! improvement over its predecessor.**
//!
//! Run with: `cargo run --release --example incremental_journey`
//!
//! The six stages are run twice:
//! * with real payloads at a small order, verifying every product
//!   against the sequential kernel (any stage that breaks correctness
//!   would fail here);
//! * with phantom payloads at a paper-scale order under the calibrated
//!   1-D (3 PEs) and 2-D (3x3) cost models, printing the improvement
//!   ladder the paper's tables show.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{run_navp_sim, run_seq_sim, NavpStage};
use navp_repro::navp_sim::CostModel;

fn main() {
    println!("== Correctness at every step (N=180, block 30, real data) ==\n");
    let cfg = MmConfig::real(180, 30);
    for stage in NavpStage::ALL {
        let grid = if stage.is_1d() {
            Grid2D::line(3).expect("grid")
        } else {
            Grid2D::new(3, 3).expect("grid")
        };
        let out = run_navp_sim(stage, &cfg, grid, &CostModel::paper_cluster(), false)
            .expect("stage runs");
        println!(
            "{:<22} verified = {:?}",
            stage.name(),
            out.verified.expect("real payload")
        );
        assert_eq!(out.verified, Some(true));
    }

    println!("\n== The improvement ladder (N=3072, block 128, phantom) ==\n");
    let cfg = MmConfig::phantom(3072, 128);
    let cost = CostModel::paper_cluster();
    let seq = run_seq_sim(&cfg, &cost).expect("seq").virt_seconds.expect("sim");
    println!("{:<22} {:>10.2} s   speedup 1.00   (the starting point)", "Sequential", seq);

    let mut previous = seq;
    for stage in NavpStage::ALL {
        let (grid, label) = if stage.is_1d() {
            (Grid2D::line(3).expect("grid"), "3 PEs")
        } else {
            (Grid2D::new(3, 3).expect("grid"), "9 PEs")
        };
        let t = run_navp_sim(stage, &cfg, grid, &cost, false)
            .expect("stage runs")
            .virt_seconds
            .expect("sim");
        let note = if stage == NavpStage::Dsc1D {
            "(no parallelism yet - but out-of-core capable)".to_string()
        } else if t < previous {
            format!("improves on the previous stage by {:.0}%", 100.0 * (1.0 - t / previous))
        } else {
            "(moves to the wider 2-D network)".to_string()
        };
        println!(
            "{:<22} {:>10.2} s   speedup {:>5.2}   on {label}; {note}",
            stage.name(),
            t,
            seq / t,
        );
        previous = t;
    }

    println!(
        "\nEvery stage is a complete, runnable, verified program — the\n\
         paper's incremental-parallelization property. The 1-D chain tops\n\
         out near 3x on 3 PEs; re-applying the same three transformations\n\
         in the second dimension reaches ~9x on 9 PEs."
    );
}
