//! The production PE daemon: one OS process hosting one PE of a
//! networked NavP cluster.
//!
//! A driver ([`navp_net::NetExecutor`]) either spawns these itself
//! (`navp-pe --connect <driver-addr>`, the default for local loopback
//! clusters) or joins daemons started by hand on remote machines
//! (`navp-pe --listen <bind-addr>` + `NetExecutor::join_addrs`). The
//! binary registers every wire codec of both workloads before serving,
//! so all six GEMM stage carriers, the launcher, matrix blocks, and
//! the kv carriers and shards can arrive over TCP.
//!
//! `--metrics-addr <host:port>` additionally serves `GET /metrics`
//! (Prometheus text exposition) and `GET /healthz` (JSON: assigned
//! pe/pes, peers connected, queue depth, last-frame age, uptime) over
//! plain HTTP/1.1. The endpoint is up from process start — before any
//! driver connects — and a `--listen` daemon keeps serving driver
//! sessions in a loop with the metrics registry persisting across
//! them, so the same long-lived cluster can be health-checked and
//! scraped before, during, and after each run.
//!
//! The flight recorder is always on: `SIGQUIT` (or a panic) dumps a
//! checksummed `postmortem-*.navpobs` black box — into `--durable-dir`
//! when set, else `NAVP_FLIGHT_DIR` — readable with
//! `navp-submit postmortem`.

fn main() {
    // Registers the kv codecs *and* (transitively) the GEMM ones, so
    // one daemon serves both workloads.
    navp_kv::register_net();
    let args = match navp_net::parse_pe_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("navp-pe: {usage}");
            std::process::exit(2);
        }
    };
    // Flight recorder black box: panic or SIGQUIT dumps a checksummed
    // postmortem next to the checkpoints when a durable dir is set.
    navp_obs::install_panic_hook();
    navp_obs::install_sigquit_dump();
    if let Some(dir) = &args.durable_dir {
        navp_obs::set_dump_dir(dir);
    }
    let opts = navp_net::PeOptions {
        metrics_addr: args.metrics_addr,
        durable_dir: args.durable_dir,
        durable_keep: args.durable_keep,
    };
    if let Err(e) = navp_net::pe_main(args.mode, opts) {
        eprintln!("navp-pe: {e}");
        std::process::exit(1);
    }
}
