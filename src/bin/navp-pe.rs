//! The production PE daemon: one OS process hosting one PE of a
//! networked NavP cluster.
//!
//! A driver ([`navp_net::NetExecutor`]) either spawns these itself
//! (`navp-pe --connect <driver-addr>`, the default for local loopback
//! clusters) or joins daemons started by hand on remote machines
//! (`navp-pe --listen <bind-addr>` + `NetExecutor::join_addrs`). The
//! binary registers every wire codec of the case study before serving,
//! so all six stage carriers, the launcher, and matrix blocks can
//! arrive over TCP.

fn main() {
    navp_mm::register_net();
    let mode = match navp_net::parse_pe_args(std::env::args().skip(1)) {
        Ok(m) => m,
        Err(usage) => {
            eprintln!("navp-pe: {usage}");
            eprintln!("usage: navp-pe --connect <driver-host:port> | --listen <bind-host:port>");
            std::process::exit(2);
        }
    };
    if let Err(e) = navp_net::pe_main(mode) {
        eprintln!("navp-pe: {e}");
        std::process::exit(1);
    }
}
