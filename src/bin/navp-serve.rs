//! The job-service daemon: multiplexes concurrent client submissions
//! — GEMM and key-value jobs alike — onto one persistent PE mesh.
//!
//! ```text
//! navp-serve --listen <host:port>
//!            (--join <pe-host:port> ... | --spawn <n>)
//!            [--pe-bin <path>] [--metrics-addr <host:port>]
//!            [--durable-dir <path>] [--durable-keep <n>]
//!            [--journal <path>]
//!            [--queue-cap <n>] [--max-inflight <n>]
//! ```
//!
//! `--join` names already-running `navp-pe --listen` daemons (one per
//! PE, in PE order); `--spawn n` starts `n` local daemons itself on
//! free ports, forwarding `--durable-dir`/`--durable-keep` so the
//! mesh's checkpoint retention matches the service's. Every accepted
//! job runs under its own run namespace (run id = job id), so
//! concurrent runs on the same daemons cannot collide on tags, events
//! or checkpoint directories.
//!
//! `--metrics-addr` serves `GET /metrics` (the `navp_serve_*` set:
//! queue depth, in-flight gauge, admission rejects, job latency and
//! queue age — plus the `navp_kv_*` workload counters, with per-run
//! attribution), `GET /healthz` (JSON with latency and queue-age
//! p50/p99), `GET /debug/jobs` (the job table as JSON) and
//! `GET /debug/flight` (the in-process flight recorder's lanes).
//!
//! The flight recorder is always on: a panic, a `SIGQUIT`, or a run
//! error dumps a checksummed postmortem (`postmortem-*.navpobs`,
//! readable with `navp-submit postmortem`) into `--durable-dir` when
//! set, else the `NAVP_FLIGHT_DIR` directory.
//!
//! `--journal` (default: `jobs.journal` under `--durable-dir` when
//! that is set) keeps a checksummed record of every finished job, so
//! a restarted service still answers `status`/`result`/`list` for
//! them and never reuses a dead run's id.
//!
//! SIGTERM/SIGINT drains gracefully: admission stops (clients get a
//! clean `Draining` rejection), queued and in-flight jobs finish and
//! flush, then the process exits 0.

use navp_serve::{
    job_runner, serve, KvMetrics, MeshOpts, SchedConfig, Scheduler, ServeMetrics, ServerConfig,
    TraceStore,
};
use std::fmt::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    join: Vec<String>,
    spawn: usize,
    pe_bin: Option<PathBuf>,
    metrics_addr: Option<String>,
    durable_dir: Option<PathBuf>,
    durable_keep: Option<usize>,
    journal: Option<PathBuf>,
    queue_cap: usize,
    max_inflight: usize,
}

const USAGE: &str = "usage: navp-serve --listen <host:port> \
                     (--join <pe-host:port> ... | --spawn <n>) \
                     [--pe-bin <path>] [--metrics-addr <host:port>] \
                     [--durable-dir <path>] [--durable-keep <n>] \
                     [--journal <path>] \
                     [--queue-cap <n>] [--max-inflight <n>]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        join: Vec::new(),
        spawn: 0,
        pe_bin: None,
        metrics_addr: None,
        durable_dir: None,
        durable_keep: None,
        journal: None,
        queue_cap: 64,
        max_inflight: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--listen" => args.listen = value()?,
            "--join" => args.join.push(value()?),
            "--spawn" => {
                let n = value()?;
                args.spawn = n
                    .parse()
                    .map_err(|_| format!("--spawn wants a count, got {n:?}\n{USAGE}"))?;
            }
            "--pe-bin" => args.pe_bin = Some(value()?.into()),
            "--metrics-addr" => args.metrics_addr = Some(value()?),
            "--durable-dir" => args.durable_dir = Some(value()?.into()),
            "--durable-keep" => {
                let n = value()?;
                args.durable_keep = Some(
                    n.parse()
                        .map_err(|_| format!("--durable-keep wants a count, got {n:?}\n{USAGE}"))?,
                );
            }
            "--journal" => args.journal = Some(value()?.into()),
            "--queue-cap" => {
                let n = value()?;
                args.queue_cap = n
                    .parse()
                    .map_err(|_| format!("--queue-cap wants a count, got {n:?}\n{USAGE}"))?;
            }
            "--max-inflight" => {
                let n = value()?;
                args.max_inflight = n
                    .parse()
                    .map_err(|_| format!("--max-inflight wants a count, got {n:?}\n{USAGE}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.listen.is_empty() {
        return Err(format!("--listen is required\n{USAGE}"));
    }
    if args.join.is_empty() && args.spawn == 0 {
        return Err(format!("need --join addresses or --spawn <n>\n{USAGE}"));
    }
    if !args.join.is_empty() && args.spawn != 0 {
        return Err(format!("--join and --spawn are mutually exclusive\n{USAGE}"));
    }
    Ok(args)
}

/// The `/debug/jobs` payload: the scheduler's job table as JSON.
fn jobs_json(sched: &Scheduler) -> String {
    let mut out = String::from("{\"jobs\":[");
    for (i, j) in sched.list().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"state\":\"{}\",\"priority\":{},\"queued_ms\":{},\
             \"started_ms\":{},\"finished_ms\":{},\"detail\":\"",
            j.id,
            j.state.name(),
            j.priority,
            j.queued_ms,
            j.started_ms,
            j.finished_ms,
        );
        navp_obs::json_escape(&j.detail, &mut out);
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

/// Reserve a free localhost port by binding `:0` and releasing it.
fn free_addr() -> std::io::Result<String> {
    let l = TcpListener::bind("127.0.0.1:0")?;
    Ok(l.local_addr()?.to_string())
}

/// Start `n` local `navp-pe --listen` daemons on free ports,
/// forwarding the durable flags so mesh retention matches ours.
fn spawn_mesh(args: &Args) -> std::io::Result<(Vec<String>, Vec<Child>)> {
    let pe_bin = navp_net::cluster::resolve_pe_bin(args.pe_bin.as_deref())
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut addrs = Vec::new();
    let mut children = Vec::new();
    for _ in 0..args.spawn {
        let addr = free_addr()?;
        let mut cmd = Command::new(&pe_bin);
        cmd.args(["--listen", &addr]).stdin(Stdio::null());
        if let Some(dir) = &args.durable_dir {
            cmd.arg("--durable-dir").arg(dir);
        }
        if let Some(keep) = args.durable_keep {
            cmd.args(["--durable-keep", &keep.to_string()]);
        }
        children.push(cmd.spawn()?);
        addrs.push(addr);
    }
    Ok((addrs, children))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("navp-serve: {e}");
            std::process::exit(2);
        }
    };
    navp_net::install_stop_handlers();
    // Flight recorder: dump a postmortem on panic or SIGQUIT, into
    // the durable dir when one is configured.
    navp_obs::install_panic_hook();
    navp_obs::install_sigquit_dump();
    if let Some(dir) = &args.durable_dir {
        navp_obs::set_dump_dir(dir);
    }

    let (join, mut children) = if args.spawn > 0 {
        match spawn_mesh(&args) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("navp-serve: spawning mesh: {e}");
                std::process::exit(1);
            }
        }
    } else {
        (args.join.clone(), Vec::new())
    };

    let metrics = ServeMetrics::new();
    let kv_metrics = KvMetrics::on_registry(&metrics.registry);
    let traces = Arc::new(TraceStore::default());
    let runner = job_runner(
        MeshOpts {
            join: join.clone(),
            pe_bin: args.pe_bin.clone(),
            durable_dir: args.durable_dir.clone(),
            watchdog: Some(Duration::from_secs(120)),
            traces: Some(Arc::clone(&traces)),
        },
        Some(kv_metrics),
    );
    let cfg = ServerConfig {
        sched: SchedConfig {
            queue_cap: args.queue_cap,
            max_inflight: args.max_inflight,
        },
        durable_dir: args.durable_dir.clone(),
        durable_keep: args.durable_keep,
        journal: args.journal.clone(),
        traces: Some(traces),
    };
    let server = match serve(&args.listen, cfg, Arc::clone(&metrics), runner) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("navp-serve: cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!("navp-serve: listening on {}", server.local_addr());

    if let Some(addr) = &args.metrics_addr {
        let m = Arc::clone(&metrics);
        let health: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(move || m.health_json());
        let sched = Arc::clone(server.scheduler());
        let jobs_route: navp_metrics::RouteFn =
            Arc::new(move || ("application/json".to_string(), jobs_json(&sched)));
        let flight_route: navp_metrics::RouteFn = Arc::new(|| {
            ("application/json".to_string(), navp_obs::flight_json(256))
        });
        let routes = vec![
            ("/debug/jobs".to_string(), jobs_route),
            ("/debug/flight".to_string(), flight_route),
        ];
        match navp_metrics::serve_http_with(addr, Arc::clone(&metrics.registry), health, routes) {
            Ok(bound) => eprintln!("navp-serve: metrics on http://{bound}/metrics"),
            Err(e) => {
                eprintln!("navp-serve: cannot bind metrics endpoint {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "navp-serve: mesh of {} PE daemon(s): {}",
        join.len(),
        join.join(", ")
    );

    // Park until SIGTERM/SIGINT, then drain: stop admission, let the
    // queue and in-flight runs finish, and exit 0.
    while !navp_net::stop_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("navp-serve: stop requested, draining (new submits rejected)");
    server.drain();
    if !server.wait_idle(Duration::from_secs(600)) {
        eprintln!("navp-serve: drain timed out with work still in flight");
        std::process::exit(1);
    }
    server.shutdown();
    for c in &mut children {
        let _ = c.kill();
        let _ = c.wait();
    }
    eprintln!("navp-serve: drained, bye");
}
