//! Deterministic fault-space fuzzer for the case-study stages.
//!
//! Explore mode (default) sweeps seeded fault schedules over a stage,
//! checking every run for bitwise product parity against the
//! fault-free baseline; violations are delta-minimized and written as
//! replayable `repro-<seed>.navpfault` files. Replay mode
//! (`--replay <file>`) re-executes one repro (or any fault-spec file)
//! and reports whether it still violates.
//!
//! ```text
//! navp-fuzz [--workload gemm|kv]
//!           [--stage dsc1d|pipe1d|phase1d|dsc2d|pipe2d|dpc2d
//!                  | kv_seq|kv_dsc|kv_pipe|kv_phase]
//!           [--grid RxC] [--n N] [--ab AB]
//!           [--seeds COUNT] [--root-seed SEED] [--budget-secs S]
//!           [--out DIR] [--threads] [--replay FILE]
//! ```
//!
//! `--workload kv` fuzzes the key-value workload instead: `--stage`
//! names a kv journey step (default `kv_pipe`), `--n` is total
//! operations, `--ab` is batches, and the grid's columns give the PE
//! count (kv meshes are 1-D lines).
//!
//! Exit status: 0 = clean (or replay no longer violates), 1 = parity
//! violations found (repros written), 2 = usage error.
//!
//! The flight recorder runs throughout: when violations are found and
//! `--out` is set, the recorder is dumped as a `postmortem-*.navpobs`
//! black box next to the `repro-*.navpfault` files (readable with
//! `navp-submit postmortem`), and a panic or `SIGQUIT` mid-sweep
//! leaves one behind too.

use navp_kv::{fuzz_kv_stage, replay_kv_repro, KvConfig, KvStage};
use navp_matrix::Grid2D;
use navp_mm::{fuzz_stage, replay_repro, FuzzExecutor, FuzzOpts, MmConfig, NavpStage};
use std::path::PathBuf;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Gemm,
    Kv,
}

struct Args {
    workload: Workload,
    stage: String,
    grid: Option<Grid2D>,
    n: usize,
    ab: usize,
    seeds: usize,
    root_seed: u64,
    budget: Option<Duration>,
    out: Option<PathBuf>,
    executor: FuzzExecutor,
    replay: Option<PathBuf>,
}

fn parse_gemm_stage(s: &str) -> Result<NavpStage, String> {
    Ok(match s {
        "dsc1d" => NavpStage::Dsc1D,
        "pipe1d" => NavpStage::Pipe1D,
        "phase1d" => NavpStage::Phase1D,
        "dsc2d" => NavpStage::Dsc2D,
        "pipe2d" => NavpStage::Pipe2D,
        "dpc2d" => NavpStage::Dpc2D,
        other => return Err(format!("unknown GEMM stage `{other}`")),
    })
}

fn parse_grid(s: &str) -> Result<Grid2D, String> {
    let (r, c) = s
        .split_once('x')
        .ok_or_else(|| format!("grid must be RxC, got `{s}`"))?;
    let rows: usize = r.parse().map_err(|_| format!("bad grid rows `{r}`"))?;
    let cols: usize = c.parse().map_err(|_| format!("bad grid cols `{c}`"))?;
    Grid2D::new(rows, cols).map_err(|e| format!("bad grid: {e}"))
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::Gemm,
        stage: String::new(),
        grid: None,
        n: 12,
        ab: 2,
        seeds: 1000,
        root_seed: 0xFA_57_F0_0D,
        budget: None,
        out: None,
        executor: FuzzExecutor::Sim,
        replay: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--workload" => {
                args.workload = match value()?.as_str() {
                    "gemm" => Workload::Gemm,
                    "kv" => Workload::Kv,
                    other => return Err(format!("unknown workload `{other}`")),
                }
            }
            "--stage" => args.stage = value()?,
            "--grid" => args.grid = Some(parse_grid(&value()?)?),
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--ab" => args.ab = value()?.parse().map_err(|e| format!("--ab: {e}"))?,
            "--seeds" => args.seeds = value()?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--root-seed" => {
                let v = value()?;
                let v = v.trim();
                args.root_seed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                }
                .map_err(|e| format!("--root-seed: {e}"))?;
            }
            "--budget-secs" => {
                args.budget = Some(Duration::from_secs(
                    value()?.parse().map_err(|e| format!("--budget-secs: {e}"))?,
                ))
            }
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--threads" => args.executor = FuzzExecutor::Threads,
            "--replay" => args.replay = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.stage.is_empty() {
        args.stage = match args.workload {
            Workload::Gemm => "dsc1d".into(),
            Workload::Kv => "kv_pipe".into(),
        };
    }
    match args.workload {
        Workload::Gemm => {
            if !args.n.is_multiple_of(args.ab) {
                return Err(format!("--ab {} must divide --n {}", args.ab, args.n));
            }
        }
        Workload::Kv => {
            if args.n == 0 || args.ab == 0 || args.ab > args.n {
                return Err(format!(
                    "kv shape needs 0 < --ab <= --n, got --n {} --ab {}",
                    args.n, args.ab
                ));
            }
        }
    }
    Ok(args)
}

/// Leave a flight-recorder black box next to the repro files: when a
/// sweep found violations and `--out` is set, the postmortem lands in
/// the same directory the `repro-*.navpfault` files went to.
fn dump_black_box(out: &Option<PathBuf>, stage: &str, violations: usize) {
    if violations == 0 {
        return;
    }
    if let Some(dir) = out {
        let reason = format!("fuzz {stage}: {violations} parity violation(s)");
        match navp_obs::dump_postmortem(dir, &reason) {
            Ok(path) => println!("  flight recorder -> {}", path.display()),
            Err(e) => eprintln!("navp-fuzz: flight dump failed: {e}"),
        }
    }
}

/// Run the kv side of main: replay or explore, mirroring the GEMM
/// path but over [`KvStage`] and ops/batches instead of a grid.
fn kv_main(args: &Args, pes: usize, opts: &FuzzOpts) -> ! {
    let stage = match KvStage::parse(&args.stage) {
        Some(s) => s,
        None => {
            eprintln!("navp-fuzz: unknown kv stage `{}`", args.stage);
            std::process::exit(2);
        }
    };
    let cfg = KvConfig::new(args.n, args.ab);
    if let Some(path) = &args.replay {
        match replay_kv_repro(path, stage, &cfg, pes, opts.executor) {
            Ok(outcome) => {
                println!("{}: {outcome:?}", path.display());
                let still_violates = matches!(outcome, navp::explore::Outcome::Violation(_));
                std::process::exit(if still_violates { 1 } else { 0 });
            }
            Err(e) => {
                eprintln!("navp-fuzz: replay failed: {e}");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();
    let report = match fuzz_kv_stage(stage, &cfg, pes, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("navp-fuzz: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "fuzzed {} ({} PEs, ops={}, batches={}): {} schedules in {:.1}s — \
         {} matched, {} expected failures, {} violations",
        stage.name(),
        stage.effective_pes(pes),
        args.n,
        args.ab,
        report.explored,
        start.elapsed().as_secs_f64(),
        report.matches,
        report.expected_failures,
        report.violations.len(),
    );
    for v in &report.violations {
        match &v.path {
            Some(p) => println!("  seed {:#018x}: {} -> {}", v.seed, v.detail, p.display()),
            None => println!("  seed {:#018x}: {}", v.seed, v.detail),
        }
    }
    dump_black_box(&args.out, stage.name(), report.violations.len());
    std::process::exit(if report.violations.is_empty() { 0 } else { 1 });
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("navp-fuzz: {e}");
            eprintln!(
                "usage: navp-fuzz [--workload gemm|kv] [--stage NAME] [--grid RxC] \
                 [--n N] [--ab AB] [--seeds COUNT] [--root-seed SEED] \
                 [--budget-secs S] [--out DIR] [--threads] [--replay FILE]"
            );
            std::process::exit(2);
        }
    };
    // Black box: panics and SIGQUIT mid-sweep dump the flight
    // recorder; with --out it lands next to the repro files.
    navp_obs::install_panic_hook();
    navp_obs::install_sigquit_dump();
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("navp-fuzz: creating {}: {e}", dir.display());
            std::process::exit(2);
        }
        navp_obs::set_dump_dir(dir);
    }
    let opts = FuzzOpts {
        root_seed: args.root_seed,
        schedules: args.seeds,
        budget: args.budget,
        out_dir: args.out.clone(),
        executor: args.executor,
    };

    if args.workload == Workload::Kv {
        let pes = args.grid.map(|g| g.rows * g.cols).unwrap_or(3);
        kv_main(&args, pes, &opts);
    }

    let stage = match parse_gemm_stage(&args.stage) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("navp-fuzz: {e}");
            std::process::exit(2);
        }
    };
    let grid = args.grid.unwrap_or_else(|| {
        if stage.is_1d() {
            Grid2D::line(3).expect("line(3)")
        } else {
            Grid2D::new(2, 2).expect("2x2")
        }
    });
    let cfg = MmConfig::real(args.n, args.ab);

    if let Some(path) = &args.replay {
        match replay_repro(path, stage, &cfg, grid, args.executor) {
            Ok(outcome) => {
                println!("{}: {outcome:?}", path.display());
                let still_violates =
                    matches!(outcome, navp::explore::Outcome::Violation(_));
                std::process::exit(if still_violates { 1 } else { 0 });
            }
            Err(e) => {
                eprintln!("navp-fuzz: replay failed: {e}");
                std::process::exit(2);
            }
        }
    }

    let start = std::time::Instant::now();
    let report = match fuzz_stage(stage, &cfg, grid, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("navp-fuzz: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "fuzzed {} ({}x{} PEs, N={}, AB={}): {} schedules in {:.1}s — \
         {} matched, {} expected failures, {} violations",
        stage.name(),
        grid.rows,
        grid.cols,
        args.n,
        args.ab,
        report.explored,
        start.elapsed().as_secs_f64(),
        report.matches,
        report.expected_failures,
        report.violations.len(),
    );
    for v in &report.violations {
        match &v.path {
            Some(p) => println!(
                "  seed {:#018x}: {} ({} -> {} rules) -> {}",
                v.seed,
                v.detail,
                v.original_rules,
                v.plan.crashes.len() + v.plan.hop_faults.len() + v.plan.lost_signals.len(),
                p.display()
            ),
            None => println!("  seed {:#018x}: {}", v.seed, v.detail),
        }
    }
    dump_black_box(&args.out, stage.name(), report.violations.len());
    std::process::exit(if report.violations.is_empty() { 0 } else { 1 });
}
