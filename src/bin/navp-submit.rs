//! CLI client for `navp-serve`.
//!
//! ```text
//! navp-submit submit --to <addr> [--kind gemm|kv]
//!                    [--stage dsc1d] [--n 48] [--ab 12]
//!                    [--rows 1] [--cols 4] [--seed-a x] [--seed-b y]
//!                    [--priority p] [--timeout-ms t] [--fault spec]
//!                    [--trace] [--wait]
//! navp-submit status --to <addr> --id <n> [--watch]
//! navp-submit result --to <addr> --id <n>
//! navp-submit cancel --to <addr> --id <n>
//! navp-submit list   --to <addr>
//! navp-submit trace  --to <addr> --id <n> [--out file]
//! navp-submit postmortem <file.navpobs>
//! navp-submit perf   --to <addr> [--jobs-per-client k] [--out file]
//!                    [--check] [job flags as for submit]
//! ```
//!
//! `--kind kv` submits a key-value job (stages `kv_seq`, `kv_dsc`,
//! `kv_pipe`, `kv_phase`): the other flags are re-read as `--n` =
//! operations, `--ab` = batches, `--cols` = PEs (`--rows` must stay
//! 1), `--seed-a` = workload seed and `--seed-b` = value length in
//! bytes (0 = default). Unset flags default to the kv example spec,
//! regardless of flag order.
//!
//! `submit --trace` asks the service to retain the finished run's
//! per-PE execution trace; `trace --id <n>` then fetches it as Chrome
//! trace-event JSON (open in Perfetto / `chrome://tracing`), scoped to
//! exactly that job even on a mesh running many tenants. `status
//! --watch` polls the job twice a second, redrawing one status line
//! until the job reaches a terminal state. `postmortem` reads a
//! flight-recorder black box (`postmortem-*.navpobs`, written by any
//! navp daemon on panic/SIGQUIT/run error), verifies its checksum,
//! and renders the merged event timeline.
//!
//! `perf` measures service throughput (runs/s) and submit-to-result
//! latency (p50/p99) at 1, 4 and 16 concurrent clients, writes the
//! figures as `BENCH_service.json`, and with `--check` gates a fresh
//! run against the committed baseline at the same >15% tolerance as
//! `perf --check` (exit 1 on regression).

use navp_bench::check::{compare, parse_baseline, render_table};
use navp_bench::timing::{write_groups_json, Entry, Group, Metric};
use navp_serve::proto::{JobKind, JobSpec, JobState, Request, Response};
use navp_serve::{client, RejectReason};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const USAGE: &str =
    "usage: navp-submit <submit|status|result|cancel|list|trace|postmortem|perf> --to <addr> [...]
  submit: [--kind gemm|kv] [--stage s] [--n n] [--ab ab] [--rows r] [--cols c]
          [--seed-a x] [--seed-b y] [--priority p] [--timeout-ms t] [--fault spec]
          [--trace] [--wait]
  status: --id <n> [--watch]
  result|cancel: --id <n>
  trace:  --id <n> [--out file]   (fetch a retained per-job Perfetto trace)
  postmortem: <file.navpobs>      (render a flight-recorder black box)
  perf:   [--jobs-per-client k] [--out file] [--check] plus submit's job flags";

fn die(msg: &str) -> ! {
    eprintln!("navp-submit: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct Args {
    cmd: String,
    to: String,
    id: u64,
    spec: JobSpec,
    wait: bool,
    watch: bool,
    file: Option<PathBuf>,
    jobs_per_client: usize,
    out: Option<PathBuf>,
    check: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv
        .first()
        .cloned()
        .unwrap_or_else(|| die("missing subcommand"));
    // Resolve --kind first so the other flags overlay the right
    // example spec whatever order they come in.
    let kind = argv
        .iter()
        .position(|a| a == "--kind")
        .map(|i| {
            let v = argv
                .get(i + 1)
                .unwrap_or_else(|| die("--kind needs a value"));
            JobKind::parse(v).unwrap_or_else(|| die(&format!("--kind wants gemm|kv, got {v:?}")))
        })
        .unwrap_or(JobKind::Gemm);
    let mut args = Args {
        cmd,
        to: String::new(),
        id: 0,
        spec: match kind {
            JobKind::Gemm => JobSpec::example(),
            JobKind::Kv => JobSpec::example_kv(),
        },
        wait: false,
        watch: false,
        file: None,
        jobs_per_client: 4,
        out: None,
        check: false,
    };
    let mut it = argv.into_iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        let parse_u64 = |flag: &str, v: String| {
            v.parse::<u64>()
                .unwrap_or_else(|_| die(&format!("{flag} wants a number, got {v:?}")))
        };
        match flag.as_str() {
            "--to" => args.to = value(),
            "--kind" => {
                value(); // consumed in the pre-scan above
            }
            "--id" => args.id = parse_u64("--id", value()),
            "--stage" => args.spec.stage = value(),
            "--n" => args.spec.n = parse_u64("--n", value()) as u32,
            "--ab" => args.spec.ab = parse_u64("--ab", value()) as u32,
            "--rows" => args.spec.rows = parse_u64("--rows", value()) as u32,
            "--cols" => args.spec.cols = parse_u64("--cols", value()) as u32,
            "--seed-a" => args.spec.seed_a = parse_u64("--seed-a", value()),
            "--seed-b" => args.spec.seed_b = parse_u64("--seed-b", value()),
            "--priority" => args.spec.priority = parse_u64("--priority", value()) as u8,
            "--timeout-ms" => args.spec.timeout_ms = parse_u64("--timeout-ms", value()),
            "--fault" => args.spec.fault_spec = value(),
            "--trace" => args.spec.trace = true,
            "--wait" => args.wait = true,
            "--watch" => args.watch = true,
            "--jobs-per-client" => {
                args.jobs_per_client = parse_u64("--jobs-per-client", value()) as usize
            }
            "--out" => args.out = Some(value().into()),
            "--check" => args.check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if args.cmd == "postmortem" && !other.starts_with('-') && args.file.is_none() => {
                args.file = Some(PathBuf::from(other))
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if args.to.is_empty() && args.cmd != "postmortem" {
        die("--to <addr> is required");
    }
    args
}

fn print_info(info: &navp_serve::JobInfo) {
    println!(
        "job {}: {} (priority {}, queued@{}ms started@{}ms finished@{}ms){}{}",
        info.id,
        info.state.name(),
        info.priority,
        info.queued_ms,
        info.started_ms,
        info.finished_ms,
        if info.detail.is_empty() { "" } else { " — " },
        info.detail,
    );
}

fn expect_io<T>(r: std::io::Result<T>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("navp-submit: {e}");
        std::process::exit(1);
    })
}

/// One submit-and-wait round trip; returns the client-observed
/// latency. Exits nonzero on rejection or a failed job.
fn run_one(addr: &str, spec: &JobSpec) -> Duration {
    let t = Instant::now();
    let id = match expect_io(client::submit(addr, spec.clone())) {
        Ok(id) => id,
        Err(reason) => {
            eprintln!("navp-submit: rejected: {reason}");
            std::process::exit(1);
        }
    };
    let (info, outcome) = expect_io(client::wait_terminal(addr, id, Duration::from_secs(600)));
    if info.state != JobState::Done || !outcome.as_ref().is_some_and(|o| o.verified) {
        eprintln!(
            "navp-submit: job {id} ended {}: {}",
            info.state.name(),
            info.detail
        );
        std::process::exit(1);
    }
    t.elapsed()
}

/// One timed batch at concurrency `c`: `c` clients each running
/// `jobs_per_client` sequential submit-and-wait round trips. Returns
/// (batch wall time, every client-observed latency).
fn perf_batch(args: &Args, c: usize) -> (u64, Vec<u64>) {
    let t = Instant::now();
    let lats: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..c)
            .map(|_| {
                s.spawn(|| {
                    (0..args.jobs_per_client)
                        .map(|_| run_one(&args.to, &args.spec))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t.elapsed().as_nanos() as u64;
    let mut sorted: Vec<u64> = lats.iter().map(|d| d.as_nanos() as u64).collect();
    sorted.sort_unstable();
    (elapsed, sorted)
}

/// (min, median, p90) of per-batch values — the shape `Entry` stores,
/// so the regression gate compares medians over batches, not a single
/// noisy measurement.
fn batch_stats(mut vals: Vec<u64>) -> (u64, u64, u64) {
    vals.sort_unstable();
    let at = |p: f64| vals[((vals.len() - 1) as f64 * p).round() as usize];
    (vals[0], at(0.5), at(0.9))
}

const PERF_BATCHES: usize = 5;

fn cmd_perf(args: &Args) {
    let concurrencies: &[usize] = &[1, 4, 16];
    let mut throughput = Group::new("service_throughput").sample_size(PERF_BATCHES);
    let mut latency = Group::new("service_latency").sample_size(PERF_BATCHES);
    for &c in concurrencies {
        let total = c * args.jobs_per_client;
        // One untimed warm-up batch soaks connection setup, thread
        // spawn and page-cache effects out of the gated figures.
        let _ = perf_batch(args, c);
        let mut elapsed = Vec::new();
        let mut p50s = Vec::new();
        let mut p99s = Vec::new();
        for _ in 0..PERF_BATCHES {
            let (wall, sorted) = perf_batch(args, c);
            let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
            elapsed.push(wall);
            p50s.push(q(0.50));
            p99s.push(q(0.99));
        }
        let (min_ns, median_ns, p90_ns) = batch_stats(elapsed);
        throughput.record(Entry {
            label: format!("c{c}"),
            samples: total,
            min_ns,
            median_ns,
            p90_ns,
            metric: Some(Metric::Runs(total as u64)),
        });
        for (name, vals) in [("p50", p50s), ("p99", p99s)] {
            let (min_ns, median_ns, p90_ns) = batch_stats(vals);
            latency.record(Entry {
                label: format!("{name}_c{c}"),
                samples: total,
                min_ns,
                median_ns,
                p90_ns,
                metric: None,
            });
        }
    }
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_service.json"));
    let groups = [throughput, latency];
    if args.check {
        let text = std::fs::read_to_string(&out).unwrap_or_else(|e| {
            eprintln!(
                "navp-submit: cannot read baseline {}: {e}\n\
                 run `navp-submit perf` without --check first to write it",
                out.display()
            );
            std::process::exit(2);
        });
        let old = parse_baseline(&text).unwrap_or_else(|e| {
            eprintln!("navp-submit: {}: {e}", out.display());
            std::process::exit(2);
        });
        let mut buf = Vec::new();
        use std::io::Write as _;
        write!(buf, "{{\"groups\":[").unwrap();
        for (i, g) in groups.iter().enumerate() {
            if i > 0 {
                write!(buf, ",").unwrap();
            }
            g.write_json(&mut buf).unwrap();
        }
        write!(buf, "]}}").unwrap();
        let new = parse_baseline(&String::from_utf8(buf).unwrap()).expect("own JSON parses");
        let deltas = compare(&old, &new, 0.15);
        println!("\n{}", render_table(&deltas));
        if deltas.iter().any(|d| d.fail) {
            eprintln!("navp-submit: service perf regression past 15%");
            std::process::exit(1);
        }
        println!("service perf within tolerance of {}", out.display());
    } else {
        expect_io(write_groups_json(&out, &groups));
        println!("wrote {}", out.display());
    }
}

/// Fetch the retained per-job trace, validate it really is a Chrome
/// trace-event document, and write it to `--out` (or stdout).
fn cmd_trace(args: &Args) {
    let json = client::fetch_trace(&args.to, args.id).unwrap_or_else(|e| {
        eprintln!("navp-submit: trace {}: {e}", args.id);
        std::process::exit(1);
    });
    let sum = navp_trace::validate_chrome_json(&json).unwrap_or_else(|e| {
        eprintln!("navp-submit: job {} returned an invalid trace: {e}", args.id);
        std::process::exit(1);
    });
    match &args.out {
        Some(path) => {
            expect_io(std::fs::write(path, &json));
            println!(
                "job {}: trace with {} event(s) over {} PE(s) -> {} (open in Perfetto)",
                args.id,
                sum.events,
                sum.pids.len(),
                path.display()
            );
        }
        None => println!("{json}"),
    }
}

/// Render a flight-recorder black box: per-lane inventory, then the
/// merged timeline (all lanes interleaved by timestamp).
fn cmd_postmortem(path: &Path) {
    use navp_obs::{EventKind, Record};
    let records = navp_obs::read_postmortem(path).unwrap_or_else(|e| {
        eprintln!("navp-submit: {}: {e:?}", path.display());
        std::process::exit(1);
    });
    let mut lanes: Vec<(String, u64, usize)> = Vec::new();
    let mut timeline: Vec<(String, navp_obs::FlightEvent)> = Vec::new();
    for rec in &records {
        match rec {
            Record::Meta { reason, pid } => {
                println!("{}: pid {pid}, reason: {reason}", path.display());
            }
            Record::Lane { name, dropped } => lanes.push((name.clone(), *dropped, 0)),
            Record::Event(ev) => {
                let lane = lanes.last_mut().unwrap_or_else(|| {
                    eprintln!("navp-submit: event before any lane record");
                    std::process::exit(1);
                });
                lane.2 += 1;
                timeline.push((lane.0.clone(), *ev));
            }
        }
    }
    for (name, dropped, kept) in &lanes {
        println!("  lane {name:<10} {kept} event(s), {dropped} dropped to wraparound");
    }
    // Stable sort: events within one lane are already oldest-first,
    // so equal timestamps keep their lane order.
    timeline.sort_by_key(|(_, ev)| ev.t_ns);
    println!("  timeline ({} event(s), merged oldest-first):", timeline.len());
    for (lane, ev) in &timeline {
        let kind = EventKind::from_u8(ev.kind).map(EventKind::name).unwrap_or("?");
        println!(
            "    [{:>12.3}ms] {:<10} pe {:<3} run {:<4} {:<15} a={} b={}",
            ev.t_ns as f64 / 1e6,
            lane,
            ev.pe,
            ev.run,
            kind,
            ev.a,
            ev.b,
        );
    }
}

/// `status --watch`: redraw one status line twice a second until the
/// job goes terminal; exit 0 for Done, 1 otherwise.
fn cmd_status_watch(args: &Args) {
    use std::io::Write as _;
    loop {
        let info = match expect_io(client::rpc(&args.to, &Request::Status { id: args.id })) {
            Response::Job { info } => info,
            Response::Error { detail } => {
                eprintln!("navp-submit: {detail}");
                std::process::exit(1);
            }
            other => die(&format!("unexpected response {other:?}")),
        };
        let line = format!(
            "job {}: {} (priority {}, queued@{}ms started@{}ms finished@{}ms){}{}",
            info.id,
            info.state.name(),
            info.priority,
            info.queued_ms,
            info.started_ms,
            info.finished_ms,
            if info.detail.is_empty() { "" } else { " — " },
            info.detail,
        );
        if info.state.is_terminal() {
            println!("\r\x1b[2K{line}");
            std::process::exit(if info.state == JobState::Done { 0 } else { 1 });
        }
        print!("\r\x1b[2K{line}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(500));
    }
}

fn main() {
    let args = parse_args();
    match args.cmd.as_str() {
        "submit" => {
            match expect_io(client::submit(&args.to, args.spec.clone())) {
                Ok(id) => {
                    println!("submitted job {id}");
                    if args.wait {
                        let (info, outcome) = expect_io(client::wait_terminal(
                            &args.to,
                            id,
                            Duration::from_secs(600),
                        ));
                        print_info(&info);
                        if let Some(o) = outcome {
                            println!(
                                "checksum {:#018x} verified {} wall {} ms",
                                o.checksum, o.verified, o.wall_ms
                            );
                        }
                        if info.state != JobState::Done {
                            std::process::exit(1);
                        }
                    }
                }
                Err(RejectReason::QueueFull { cap }) => {
                    eprintln!("navp-submit: rejected, queue full (capacity {cap})");
                    std::process::exit(3);
                }
                Err(RejectReason::Draining) => {
                    eprintln!("navp-submit: rejected, server draining");
                    std::process::exit(3);
                }
            }
        }
        "status" if args.watch => cmd_status_watch(&args),
        "status" => match expect_io(client::rpc(&args.to, &Request::Status { id: args.id })) {
            Response::Job { info } => print_info(&info),
            Response::Error { detail } => {
                eprintln!("navp-submit: {detail}");
                std::process::exit(1);
            }
            other => die(&format!("unexpected response {other:?}")),
        },
        "result" => match expect_io(client::rpc(&args.to, &Request::Result { id: args.id })) {
            Response::Outcome { info, outcome } => {
                print_info(&info);
                match outcome {
                    Some(o) => println!(
                        "checksum {:#018x} verified {} wall {} ms",
                        o.checksum, o.verified, o.wall_ms
                    ),
                    None => println!("no outcome (job not done)"),
                }
            }
            Response::Error { detail } => {
                eprintln!("navp-submit: {detail}");
                std::process::exit(1);
            }
            other => die(&format!("unexpected response {other:?}")),
        },
        "cancel" => match expect_io(client::rpc(&args.to, &Request::Cancel { id: args.id })) {
            Response::Cancelled { id, ok } => {
                println!("cancel {id}: {}", if ok { "cancelled" } else { "too late" });
                if !ok {
                    std::process::exit(1);
                }
            }
            Response::Error { detail } => {
                eprintln!("navp-submit: {detail}");
                std::process::exit(1);
            }
            other => die(&format!("unexpected response {other:?}")),
        },
        "list" => match expect_io(client::rpc(&args.to, &Request::List)) {
            Response::Jobs { jobs } => {
                println!("{} job(s)", jobs.len());
                for info in &jobs {
                    print_info(info);
                }
            }
            other => die(&format!("unexpected response {other:?}")),
        },
        "trace" => cmd_trace(&args),
        "postmortem" => match &args.file {
            Some(path) => cmd_postmortem(path),
            None => die("postmortem needs a file argument"),
        },
        "perf" => cmd_perf(&args),
        other => die(&format!("unknown subcommand {other:?}")),
    }
}
