//! Umbrella crate for the NavP reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! `use navp_repro::...` uniformly. See the individual crates for the
//! substance:
//!
//! * [`navp`] — the Navigational Programming runtime (the paper's
//!   contribution): self-migrating computations, `hop`, events, injection.
//! * [`navp_sim`] — the virtual cluster and cost model standing in for the
//!   paper's SUN workstation network.
//! * [`navp_matrix`] — dense/blocked matrices, distributions, staggering.
//! * [`navp_net`] — the TCP-distributed executor: PEs as OS processes,
//!   a length-prefixed binary wire protocol, and the `navp-pe` daemon
//!   binary this crate ships.
//! * [`navp_mp`] — the MPI-like message-passing substrate for the
//!   Gentleman/Cannon/SUMMA baselines.
//! * [`navp_mm`] — the case study: six incremental NavP matrix-multiply
//!   stages plus the baselines.
//! * [`navp_trace`] — wall-clock tracing for the real executors:
//!   per-PE ring recorders, clock-offset merge, Chrome/Perfetto export,
//!   and derived [`TraceReport`](navp_trace::TraceReport) metrics.
//! * [`navp_metrics`] — live metrics: lock-free counters/gauges/
//!   histograms, Prometheus text exposition, cluster-wide snapshots,
//!   and the `/metrics` + `/healthz` HTTP responder `navp-pe` serves.
//! * [`navp_obs`] — the always-on flight recorder: lock-free per-lane
//!   event rings, the checksummed postmortem container
//!   (`postmortem-*.navpobs`), and the panic/SIGQUIT dump triggers.
//! * [`navp_kv`] — the second workload: a log-structured, hash-partitioned
//!   key-value store driven through the same four-step NavP journey,
//!   proving the methodology beyond the regular GEMM kernel.
//! * [`navp_serve`] — the multi-tenant job service: the `navp-serve`
//!   daemon multiplexes concurrent client submissions onto one
//!   persistent PE mesh, each run in its own namespace; `navp-submit`
//!   is its CLI client.
//! * [`navp_bench`] — the timing harness and the perf-regression gate
//!   behind the `BENCH_*.json` baselines.

pub use navp;
pub use navp_bench;
pub use navp_kv;
pub use navp_matrix;
pub use navp_metrics;
pub use navp_mm;
pub use navp_mp;
pub use navp_net;
pub use navp_obs;
pub use navp_serve;
pub use navp_sim;
pub use navp_trace;
