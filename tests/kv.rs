//! navp-kv end-to-end acceptance: the four journey steps —
//! sequential, DSC, pipelined, phase-shifted — produce *bitwise
//! identical* products across the sim, thread, and networked
//! executors; parity survives seeded transport faults; and kv jobs
//! run through `navp-serve` next to GEMM jobs on one live mesh of
//! real `navp-pe` processes.
//!
//! Bitwise (not approximate) equality is the bar for the same reason
//! as GEMM: batches own disjoint key regions and compaction is
//! observation-neutral, so any difference at all means an executor
//! reordered, dropped, or corrupted an operation.

use navp_repro::navp::FaultPlan;
use navp_repro::navp_kv::{
    run_kv_net, run_kv_net_faulted, run_kv_sim, run_kv_threads, KvConfig, KvStage,
};
use navp_repro::navp_mm::runner::NetOpts;
use navp_repro::navp_serve::{
    client, job_runner, serve, JobSpec, JobState, MeshOpts, SchedConfig, ServeMetrics,
    ServerConfig,
};
use navp_repro::navp_sim::CostModel;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const T: Duration = Duration::from_secs(120);

/// The `navp-pe` daemon this crate ships, resolved by Cargo.
fn opts() -> NetOpts {
    NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    }
}

fn cfg(ops: usize, batches: usize) -> KvConfig {
    // Generous watchdog: CI machines can be slow to spawn 4 processes.
    KvConfig::new(ops, batches).with_watchdog(Duration::from_secs(60))
}

const STAGES: [KvStage; 4] = [KvStage::Seq, KvStage::Dsc, KvStage::Pipe, KvStage::Phase];

#[test]
fn all_four_journey_steps_agree_bitwise_across_all_three_executors() {
    let cfg = cfg(160, 8);
    let pes = 4;
    // The sequential step on the thread executor anchors the journey:
    // every other (step, executor) pair must reproduce it bit for bit.
    let reference = run_kv_threads(KvStage::Seq, &cfg, pes)
        .expect("seq threads")
        .product;
    for stage in STAGES {
        let sim = run_kv_sim(stage, &cfg, pes, &CostModel::paper_cluster(), false)
            .unwrap_or_else(|e| panic!("{stage} sim: {e}"));
        let threads = run_kv_threads(stage, &cfg, pes)
            .unwrap_or_else(|e| panic!("{stage} threads: {e}"));
        let net = run_kv_net(stage, &cfg, pes, &opts())
            .unwrap_or_else(|e| panic!("{stage} net: {e}"));
        for (exec, out) in [("sim", &sim), ("threads", &threads), ("net", &net)] {
            assert_eq!(
                out.verified,
                Some(true),
                "{stage}/{exec} failed the reference model"
            );
            assert_eq!(
                out.product, reference,
                "{stage}/{exec} product differs from the sequential anchor"
            );
        }
    }
}

#[test]
fn net_kv_parity_survives_a_seeded_hop_delay_plan() {
    // Delay-only faults stress the transport (retries, reordering
    // windows) without touching data-path semantics, so the product
    // must stay bitwise intact.
    let cfg = cfg(120, 6);
    let plan = FaultPlan::new()
        .delay_hop(0, 1, 0.05)
        .delay_hop(1, 2, 0.08)
        .delay_hop(2, 1, 0.05)
        .delay_hop(3, 1, 0.03);
    for stage in [KvStage::Pipe, KvStage::Phase] {
        let want = run_kv_threads(stage, &cfg, 4)
            .unwrap_or_else(|e| panic!("{stage} threads: {e}"));
        let got = run_kv_net_faulted(stage, &cfg, 4, &opts(), plan.clone())
            .unwrap_or_else(|e| panic!("{stage} net faulted: {e}"));
        assert_eq!(got.verified, Some(true), "{stage} faulted net product wrong");
        assert_eq!(
            got.product, want.product,
            "{stage}: faulted net product differs from clean threads"
        );
    }
}

struct Mesh {
    addrs: Vec<String>,
    children: Vec<Child>,
}

impl Drop for Mesh {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind :0");
    l.local_addr().expect("local addr").to_string()
}

fn spawn_mesh(pes: usize) -> Mesh {
    let bin = env!("CARGO_BIN_EXE_navp-pe");
    let addrs: Vec<String> = (0..pes).map(|_| free_addr()).collect();
    let children = addrs
        .iter()
        .map(|a| {
            let mut cmd = Command::new(bin);
            cmd.args(["--listen", a]).stdin(Stdio::null());
            cmd.spawn().expect("spawn navp-pe")
        })
        .collect();
    // Give the listeners a beat to bind; the driver also retries.
    std::thread::sleep(Duration::from_millis(300));
    Mesh { addrs, children }
}

#[test]
fn mixed_gemm_and_kv_jobs_share_one_live_mesh() {
    let mesh = spawn_mesh(4);
    let runner = job_runner(
        MeshOpts {
            join: mesh.addrs.clone(),
            watchdog: Some(Duration::from_secs(60)),
            ..MeshOpts::default()
        },
        None,
    );
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            sched: SchedConfig {
                queue_cap: 16,
                max_inflight: 2,
            },
            ..ServerConfig::default()
        },
        ServeMetrics::new(),
        runner,
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // One GEMM job and two kv jobs (different stages and seeds), all
    // admitted up front so the workers interleave them on the mesh.
    let kv_a = JobSpec {
        stage: "kv_pipe".into(),
        seed_a: 0x0DDB_A115,
        ..JobSpec::example_kv()
    };
    let kv_b = JobSpec {
        stage: "kv_phase".into(),
        n: 120,
        ab: 6,
        ..JobSpec::example_kv()
    };
    let specs = [JobSpec::example(), kv_a.clone(), kv_b.clone()];
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| {
            client::submit(&addr, s.clone())
                .expect("io")
                .expect("admitted")
        })
        .collect();
    let mut checksums = Vec::new();
    for (&id, spec) in ids.iter().zip(&specs) {
        let (info, outcome) = client::wait_terminal(&addr, id, T).expect("terminal");
        assert_eq!(
            info.state,
            JobState::Done,
            "job {id} ({}): {}",
            spec.stage,
            info.detail
        );
        let outcome = outcome.expect("outcome");
        assert!(outcome.verified, "job {id} unverified");
        checksums.push(outcome.checksum);
    }

    // The service's kv checksums must equal what a local in-process
    // run of the same spec computes — the mesh added nothing and lost
    // nothing.
    for (i, spec) in specs.iter().enumerate().skip(1) {
        let stage = KvStage::parse(&spec.stage).expect("kv stage");
        let cfg = KvConfig::new(spec.n as usize, spec.ab as usize).with_seed(spec.seed_a);
        let want = run_kv_threads(stage, &cfg, spec.cols as usize)
            .expect("local reference run")
            .product
            .checksum();
        assert_eq!(checksums[i], want, "job {} checksum mismatch", ids[i]);
    }

    server.drain();
    assert!(server.wait_idle(T));
    server.shutdown();
}
