//! The virtual-time executors must be bit-deterministic: identical
//! configurations produce identical makespans and identical traces
//! (compared by fingerprint), on every run. This is what makes the
//! regenerated tables reproducible artifacts rather than measurements.

use navp_repro::navp::SimExecutor;
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::gentleman::GentlemanOpts;
use navp_repro::navp_mm::runner::{run_mp_sim, run_navp_sim, MpAlg, NavpStage};
use navp_repro::navp_mm::{dpc2d, util::Topo2D};
use navp_repro::navp_sim::CostModel;

#[test]
fn navp_sim_runs_are_bit_identical() {
    let cfg = MmConfig::phantom(256, 32);
    for stage in NavpStage::ALL {
        let grid = if stage.is_1d() {
            Grid2D::line(2).expect("grid")
        } else {
            Grid2D::new(2, 2).expect("grid")
        };
        let run = || {
            run_navp_sim(stage, &cfg, grid, &CostModel::paper_cluster(), true)
                .expect("runs")
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.virt_seconds, b.virt_seconds,
            "{} nondeterministic makespan",
            stage.name()
        );
        assert_eq!(
            a.trace.expect("trace").fingerprint(),
            b.trace.expect("trace").fingerprint(),
            "{} nondeterministic trace",
            stage.name()
        );
    }
}

#[test]
fn mp_sim_runs_are_bit_identical() {
    let cfg = MmConfig::phantom(256, 32);
    let grid = Grid2D::new(2, 2).expect("grid");
    for alg in [MpAlg::Gentleman(GentlemanOpts::default()), MpAlg::Summa] {
        let run = || run_mp_sim(alg, &cfg, grid, &CostModel::paper_cluster()).expect("runs");
        let (a, b) = (run(), run());
        assert_eq!(a.virt_seconds, b.virt_seconds, "{}", alg.name());
        assert_eq!(a.transfers, b.transfers, "{}", alg.name());
        assert_eq!(a.bytes, b.bytes, "{}", alg.name());
    }
}

#[test]
fn different_configurations_give_different_fingerprints() {
    let grid = Grid2D::new(2, 2).expect("grid");
    let cost = CostModel::paper_cluster();
    let f = |n: usize, ab: usize| {
        let cfg = MmConfig::phantom(n, ab);
        let topo = Topo2D::new(cfg.nb(), grid).expect("topo");
        let (a, b) = cfg.operands().expect("operands");
        let cl = dpc2d::cluster(&cfg, &topo, &a, &b).expect("cluster");
        SimExecutor::new(cost)
            .with_trace()
            .run(cl)
            .expect("runs")
            .trace
            .fingerprint()
    };
    let a = f(256, 32);
    let b = f(256, 64);
    let c = f(512, 32);
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_ne!(b, c);
}

#[test]
fn real_and_phantom_payloads_cost_the_same() {
    // The phantom substitution is only valid if it charges exactly the
    // costs a real run would.
    let grid = Grid2D::new(2, 2).expect("grid");
    for stage in [NavpStage::Dpc2D, NavpStage::Pipe2D, NavpStage::Dsc2D] {
        let real = run_navp_sim(
            stage,
            &MmConfig::real(64, 16),
            grid,
            &CostModel::paper_cluster(),
            false,
        )
        .expect("runs");
        let phantom = run_navp_sim(
            stage,
            &MmConfig::phantom(64, 16),
            grid,
            &CostModel::paper_cluster(),
            false,
        )
        .expect("runs");
        assert_eq!(
            real.virt_seconds,
            phantom.virt_seconds,
            "{} phantom run must cost exactly what the real run costs",
            stage.name()
        );
        assert_eq!(real.transfers, phantom.transfers, "{}", stage.name());
        assert_eq!(real.bytes, phantom.bytes, "{}", stage.name());
    }
}
