//! Paper-shape regression tests: the qualitative results of Section 5,
//! pinned as assertions over the calibrated model. If a change to the
//! runtime or the cost model breaks the reproduction, these fail.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::gentleman::GentlemanOpts;
use navp_repro::navp_mm::runner::{run_mp_sim, run_navp_sim, run_seq_sim, MpAlg, NavpStage};
use navp_repro::navp_sim::CostModel;

fn t_navp(stage: NavpStage, cfg: &MmConfig, grid: Grid2D) -> f64 {
    run_navp_sim(stage, cfg, grid, &CostModel::paper_cluster(), false)
        .expect("runs")
        .virt_seconds
        .expect("sim")
}

fn t_mp(alg: MpAlg, cfg: &MmConfig, grid: Grid2D) -> f64 {
    run_mp_sim(alg, cfg, grid, &CostModel::paper_cluster())
        .expect("runs")
        .virt_seconds
        .expect("sim")
}

/// Table 1's story on 3 PEs: DSC ≈ sequential; pipelining ~2.4x;
/// phase shifting beats pipelining.
#[test]
fn table1_shape() {
    let cfg = MmConfig::phantom(1536, 128);
    let line = Grid2D::line(3).expect("grid");
    let seq = run_seq_sim(&cfg, &CostModel::paper_cluster())
        .expect("seq")
        .virt_seconds
        .expect("sim");
    let dsc = t_navp(NavpStage::Dsc1D, &cfg, line);
    let pipe = t_navp(NavpStage::Pipe1D, &cfg, line);
    let phase = t_navp(NavpStage::Phase1D, &cfg, line);

    assert!(dsc > seq, "DSC adds communication: {dsc} vs {seq}");
    assert!(dsc < 1.15 * seq, "but only marginally: {dsc} vs {seq}");
    assert!(
        (2.0..3.0).contains(&(seq / pipe)),
        "pipeline speedup {} vs paper 2.36",
        seq / pipe
    );
    assert!(phase <= pipe, "phase {phase} must not lose to pipeline {pipe}");
}

/// Table 3/4's story: on a 2-D grid, NavP full DPC beats the pipelined
/// stage, which beats 2-D DSC; full DPC also beats the MPI baseline and
/// the ScaLAPACK stand-in at the large sizes.
#[test]
fn table4_shape() {
    let cfg = MmConfig::phantom(3072, 128);
    let grid = Grid2D::new(3, 3).expect("grid");
    let dsc = t_navp(NavpStage::Dsc2D, &cfg, grid);
    let pipe = t_navp(NavpStage::Pipe2D, &cfg, grid);
    let phase = t_navp(NavpStage::Dpc2D, &cfg, grid);
    let mpi = t_mp(MpAlg::Gentleman(GentlemanOpts::default()), &cfg, grid);
    let sca = t_mp(MpAlg::Summa, &cfg, grid);

    assert!(phase <= pipe, "phase {phase} vs pipe {pipe}");
    assert!(pipe < dsc, "pipe {pipe} vs dsc {dsc}");
    assert!(phase < mpi, "NavP full DPC {phase} must beat MPI {mpi}");
    assert!(phase < sca, "NavP full DPC {phase} must beat ScaLAPACK* {sca}");
    // And the speedups land in the paper's ballpark on 9 PEs.
    let seq = run_seq_sim(&cfg, &CostModel::paper_cluster())
        .expect("seq")
        .virt_seconds
        .expect("sim");
    let su = seq / phase;
    assert!((7.0..9.0).contains(&su), "full DPC speedup {su}, paper 8.34");
}

/// Section 5 item 2: removing the MPI cache penalty helps Gentleman by
/// roughly the 4% the paper measured — and not more.
#[test]
fn cache_ablation_shape() {
    use navp_repro::navp_mm::gentleman::CacheCharge;
    let cfg = MmConfig::phantom(2048, 128);
    let grid = Grid2D::new(2, 2).expect("grid");
    let with = t_mp(MpAlg::Gentleman(GentlemanOpts::default()), &cfg, grid);
    let without = t_mp(
        MpAlg::Gentleman(GentlemanOpts {
            cache: CacheCharge::LikeNavP,
            ..Default::default()
        }),
        &cfg,
        grid,
    );
    let gain = with / without;
    assert!(
        (1.005..1.05).contains(&gain),
        "cache ablation gain {gain}, paper ~1.04"
    );
}

/// Section 5 item 3: Cannon's stepwise staggering costs more than the
/// single-step staggering of the paper's modified Gentleman.
#[test]
fn stagger_ablation_shape() {
    use navp_repro::navp_mm::gentleman::Stagger;
    let cfg = MmConfig::phantom(1024, 128);
    let grid = Grid2D::new(2, 2).expect("grid");
    let single = t_mp(MpAlg::Gentleman(GentlemanOpts::default()), &cfg, grid);
    let stepwise = t_mp(
        MpAlg::Gentleman(GentlemanOpts {
            stagger: Stagger::Stepwise,
            ..Default::default()
        }),
        &cfg,
        grid,
    );
    assert!(
        single <= stepwise,
        "single-step {single} must not exceed stepwise {stepwise}"
    );
}

/// Table 2's story: the sequential run thrashes well beyond 2x once the
/// problem is ~8x physical memory; 1-D DSC on 8 PEs stays within 10% of
/// the clean sequential time.
#[test]
fn table2_shape() {
    let cfg = MmConfig::phantom(9216, 128);
    let cost = CostModel::paper_cluster();
    let mut clean = cost;
    clean.mem_capacity = u64::MAX;
    let t_clean = run_seq_sim(&cfg, &clean).expect("seq").virt_seconds.expect("sim");
    let t_thrash = run_seq_sim(&cfg, &cost).expect("seq").virt_seconds.expect("sim");
    let t_dsc = run_navp_sim(
        NavpStage::Dsc1D,
        &cfg,
        Grid2D::line(8).expect("grid"),
        &cost,
        false,
    )
    .expect("dsc")
    .virt_seconds
    .expect("sim");

    let thrash_factor = t_thrash / t_clean;
    assert!(
        (2.0..3.0).contains(&thrash_factor),
        "thrash {thrash_factor}, paper 2.62"
    );
    let dsc_su = t_clean / t_dsc;
    assert!((0.85..1.0).contains(&dsc_su), "DSC speedup {dsc_su}, paper 0.93");
}
