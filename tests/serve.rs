//! Service acceptance: concurrent jobs multiplexed onto ONE persistent
//! 4-PE mesh must (a) overlap in wall-clock time — the mesh is shared,
//! not serialized — (b) each produce the bitwise product of its own
//! inputs (run namespacing keeps tenants apart), (c) keep their
//! per-run durable checkpoint directories apart, (d) survive one
//! tenant being crash-faulted mid-run without perturbing the others,
//! and (e) be observable on `/metrics` while in flight. The
//! `navp-serve` binary itself must drain gracefully on SIGTERM.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::Payload;
use navp_repro::navp_mm::runner::run_navp_threads;
use navp_repro::navp_mm::MmConfig;
use navp_repro::navp_serve::{
    client, gemm_runner, product_checksum, serve, JobSpec, JobState, MeshOpts, SchedConfig,
    ServeMetrics, ServerConfig,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("addr").to_string();
    drop(l);
    addr
}

/// Kills its children on drop so a panicking test never leaks daemons.
struct Mesh {
    addrs: Vec<String>,
    children: Vec<Child>,
}

impl Drop for Mesh {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn spawn_mesh(pes: usize, durable_dir: Option<&std::path::Path>) -> Mesh {
    let bin = env!("CARGO_BIN_EXE_navp-pe");
    let addrs: Vec<String> = (0..pes).map(|_| free_addr()).collect();
    let children = addrs
        .iter()
        .map(|a| {
            let mut cmd = Command::new(bin);
            cmd.args(["--listen", a]).stdin(Stdio::null());
            if let Some(dir) = durable_dir {
                cmd.arg("--durable-dir").arg(dir);
            }
            cmd.spawn().expect("spawn navp-pe")
        })
        .collect();
    // Give the listeners a beat to bind; the driver also retries.
    std::thread::sleep(Duration::from_millis(300));
    Mesh { addrs, children }
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("navp-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn job(seed_a: u64, seed_b: u64) -> JobSpec {
    JobSpec {
        seed_a,
        seed_b,
        ..JobSpec::example() // dsc1d, n=48, ab=12, 1x4
    }
}

/// The bitwise reference for a spec: the same stage on the in-process
/// thread executor (net-vs-threads parity is already a tested
/// invariant, so this is the product every tenant must reproduce).
fn reference_checksum(spec: &JobSpec) -> u64 {
    let stage = navp_repro::navp_serve::parse_stage(&spec.stage).expect("stage");
    let mut cfg = MmConfig::real(spec.n as usize, spec.ab as usize);
    cfg.payload = Payload::Real {
        seed_a: spec.seed_a,
        seed_b: spec.seed_b,
    };
    let grid = Grid2D::new(spec.rows as usize, spec.cols as usize).expect("grid");
    let out = run_navp_threads(stage, &cfg, grid).expect("reference run");
    assert_eq!(out.verified, Some(true));
    product_checksum(&out.c.expect("reference product"))
}

fn http_get(addr: &str, path: &str) -> std::io::Result<(String, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: navp\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[test]
fn concurrent_jobs_overlap_with_bitwise_products_and_namespaced_checkpoints() {
    let durable = temp_dir("overlap");
    let mesh = spawn_mesh(4, Some(&durable));

    let metrics = ServeMetrics::new();
    let metrics_addr = navp_repro::navp_metrics::serve_http(
        "127.0.0.1:0",
        std::sync::Arc::clone(&metrics.registry),
        std::sync::Arc::new(|| String::from("{}")),
    )
    .expect("metrics endpoint")
    .to_string();

    let runner = gemm_runner(MeshOpts {
        join: mesh.addrs.clone(),
        durable_dir: Some(durable.clone()),
        watchdog: Some(Duration::from_secs(60)),
        ..MeshOpts::default()
    });
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            sched: SchedConfig {
                queue_cap: 16,
                max_inflight: 3,
            },
            ..ServerConfig::default()
        },
        std::sync::Arc::clone(&metrics),
        runner,
    )
    .expect("bind server");
    let addr = server.local_addr().to_string();

    // Three tenants with three distinct input pairs, submitted
    // back-to-back onto the same 4 daemons.
    let specs = [job(11, 12), job(21, 22), job(31, 32)];
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| {
            client::submit(&addr, s.clone())
                .expect("io")
                .expect("admitted")
        })
        .collect();

    // Scrape the service metrics while the runs are in flight: the
    // acceptance criterion is that queue depth and the in-flight gauge
    // are live on /metrics *during* the run.
    let mut saw_inflight = false;
    let scrape_deadline = Instant::now() + WAIT;
    while Instant::now() < scrape_deadline {
        let (status, body) = http_get(&metrics_addr, "/metrics").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("navp_serve_queue_depth"), "{body}");
        assert!(body.contains("navp_serve_jobs_inflight"), "{body}");
        if body
            .lines()
            .any(|l| l.starts_with("navp_serve_jobs_inflight") && !l.ends_with(" 0"))
        {
            saw_inflight = true;
            break;
        }
        // Don't spin the full deadline if the runs already finished.
        let all_done = ids.iter().all(|&id| {
            matches!(
                client::rpc(&addr, &navp_repro::navp_serve::Request::Status { id }),
                Ok(navp_repro::navp_serve::Response::Job { info }) if info.state.is_terminal()
            )
        });
        if all_done {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_inflight, "never observed navp_serve_jobs_inflight > 0 mid-run");

    let mut infos = Vec::new();
    for (spec, &id) in specs.iter().zip(&ids) {
        let (info, outcome) = client::wait_terminal(&addr, id, WAIT).expect("terminal");
        assert_eq!(info.state, JobState::Done, "job {id}: {}", info.detail);
        let outcome = outcome.expect("outcome");
        assert!(outcome.verified, "job {id} product failed verification");
        assert_eq!(
            outcome.checksum,
            reference_checksum(spec),
            "job {id} product is not bitwise-identical to its reference"
        );
        infos.push(info);
    }

    // Distinct inputs must give distinct products — if run namespacing
    // leaked blocks between tenants, these would collide or corrupt.
    assert_ne!(infos.len(), 0);
    let sums: std::collections::HashSet<u64> = specs.iter().map(reference_checksum).collect();
    assert_eq!(sums.len(), 3, "test needs three distinct expected products");

    // NOT serialized: some pair of runs overlapped in wall-clock time.
    let overlapping = infos.iter().enumerate().any(|(i, a)| {
        infos.iter().skip(i + 1).any(|b| {
            a.started_ms < b.finished_ms && b.started_ms < a.finished_ms
        })
    });
    assert!(
        overlapping,
        "runs were serialized: {:?}",
        infos
            .iter()
            .map(|i| (i.id, i.started_ms, i.finished_ms))
            .collect::<Vec<_>>()
    );

    // Each tenant checkpointed under its own run-<id>/ subdirectory.
    let runs = navp_repro::navp::durable::list_run_dirs(&durable);
    assert_eq!(runs, ids, "per-run durable namespacing");

    server.shutdown();
    drop(mesh);
    std::fs::remove_dir_all(&durable).ok();
}

#[test]
fn crash_faulted_tenant_recovers_without_perturbing_the_other() {
    let mesh = spawn_mesh(4, None);
    let runner = gemm_runner(MeshOpts {
        join: mesh.addrs.clone(),
        watchdog: Some(Duration::from_secs(60)),
        ..MeshOpts::default()
    });
    let server = serve(
        "127.0.0.1:0",
        ServerConfig {
            sched: SchedConfig {
                queue_cap: 8,
                max_inflight: 2,
            },
            ..ServerConfig::default()
        },
        ServeMetrics::new(),
        runner,
    )
    .expect("bind server");
    let addr = server.local_addr().to_string();

    // Tenant A is crash-faulted mid-run (checkpointing crash: PE 1
    // restarts in place); tenant B runs clean alongside it.
    let faulted = JobSpec {
        fault_spec: navp_repro::navp::FaultPlan::new().crash_pe(1, 1).to_spec(),
        ..job(41, 42)
    };
    let clean = job(51, 52);
    let id_a = client::submit(&addr, faulted.clone())
        .expect("io")
        .expect("admitted");
    let id_b = client::submit(&addr, clean.clone())
        .expect("io")
        .expect("admitted");

    let (info_a, out_a) = client::wait_terminal(&addr, id_a, WAIT).expect("terminal A");
    let (info_b, out_b) = client::wait_terminal(&addr, id_b, WAIT).expect("terminal B");
    assert_eq!(info_a.state, JobState::Done, "faulted job: {}", info_a.detail);
    assert_eq!(info_b.state, JobState::Done, "clean job: {}", info_b.detail);
    let (out_a, out_b) = (out_a.expect("A outcome"), out_b.expect("B outcome"));
    assert!(out_a.verified && out_b.verified);
    assert_eq!(
        out_a.checksum,
        reference_checksum(&faulted),
        "crash-recovered product must still be bitwise-identical"
    );
    assert_eq!(
        out_b.checksum,
        reference_checksum(&clean),
        "the clean tenant must be untouched by its neighbour's crash"
    );

    server.shutdown();
}

#[test]
fn per_job_deadline_times_out_end_to_end() {
    let mesh = spawn_mesh(2, None);
    let runner = gemm_runner(MeshOpts {
        join: mesh.addrs.clone(),
        watchdog: Some(Duration::from_secs(60)),
        ..MeshOpts::default()
    });
    let server = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        ServeMetrics::new(),
        runner,
    )
    .expect("bind server");
    let addr = server.local_addr().to_string();
    let spec = JobSpec {
        cols: 2,
        timeout_ms: 1, // a real mesh cannot finish a run in 1 ms
        ..JobSpec::example()
    };
    let id = client::submit(&addr, spec).expect("io").expect("admitted");
    let (info, outcome) = client::wait_terminal(&addr, id, WAIT).expect("terminal");
    assert_eq!(info.state, JobState::TimedOut, "{}", info.detail);
    assert!(info.detail.contains("deadline"), "{}", info.detail);
    assert!(outcome.is_none());
    server.shutdown();
}

#[test]
fn navp_serve_binary_drains_gracefully_on_sigterm() {
    let serve_bin = env!("CARGO_BIN_EXE_navp-serve");
    let pe_bin = env!("CARGO_BIN_EXE_navp-pe");
    let mut child = Command::new(serve_bin)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--spawn",
            "4",
            "--pe-bin",
            pe_bin,
            "--max-inflight",
            "2",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn navp-serve");
    // The daemon prints its bound address once it is connectable.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("a first line")
        .expect("readable stdout");
    let addr = first
        .rsplit(' ')
        .next()
        .expect("address on the listen line")
        .to_string();
    assert!(
        first.contains("listening on"),
        "unexpected banner: {first}"
    );

    // Two jobs whose first delivery to PE 1 is fault-delayed by 3 s:
    // they stay in flight deterministically, so the SIGTERM lands with
    // the mesh genuinely busy (a recoverable delay leaves the product
    // intact, so drain still has real work to finish).
    let slow = navp_repro::navp::FaultPlan::new()
        .delay_hop(1, 1, 3.0)
        .to_spec();
    for seed in 0..2u64 {
        let spec = JobSpec {
            fault_spec: slow.clone(),
            ..job(61 + seed, 62 + seed)
        };
        client::submit(&addr, spec).expect("io").expect("admitted");
    }
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill -TERM");
    assert!(kill.success());

    // Admission closes with a clean Draining rejection (the stop flag
    // is polled at 100 ms, so allow it a moment to take effect).
    let deadline = Instant::now() + WAIT;
    loop {
        match client::submit(&addr, job(81, 82)).expect("io") {
            Err(navp_repro::navp_serve::RejectReason::Draining) => break,
            Ok(_) | Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50))
            }
            other => panic!("draining rejection never arrived, last: {other:?}"),
        }
    }

    // The process finishes the queued and in-flight jobs, then exits 0
    // (the drain-timeout failure path exits 1).
    let deadline = Instant::now() + WAIT;
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => {
                let _ = child.kill();
                panic!("navp-serve never exited after drain");
            }
        }
    };
    assert!(status.success(), "drain must exit 0, got {status}");
}
