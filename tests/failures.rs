//! Failure injection: broken programs must fail loudly and
//! informatively, on both executors, rather than hang or corrupt.

use navp_repro::navp::script::Script;
use navp_repro::navp::{Cluster, Effect, FaultPlan, Key, RunError, SimExecutor, ThreadExecutor};
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{
    run_navp_sim, run_navp_threads_faulted, NavpStage, RunnerError,
};
use navp_repro::navp_mp::{MpCluster, MpEffect, MpError, MpSimExecutor, Process, RankScript};
use navp_repro::navp_sim::CostModel;
use std::time::Duration;

/// A pipe2d cluster *without* its initial EC events deadlocks: the first
/// BCarrier can never deposit. The sim executor must say exactly that.
#[test]
fn missing_initial_events_deadlock_with_diagnosis() {
    let cfg = MmConfig::phantom(8, 2);
    let topo = navp_repro::navp_mm::pipe2d::topo(&cfg, 2, 2).expect("topo");
    let (a, b) = cfg.operands().expect("operands");
    // Build the proper cluster, then rebuild it by hand minus the
    // initial signals: easiest is to build a fresh cluster from the same
    // stores with the same injections — instead we simulate the bug by
    // waiting on an event nobody signals in an otherwise-fine cluster.
    let mut cl = navp_repro::navp_mm::pipe2d::cluster(&cfg, &topo, &a, &b).expect("cluster");
    cl.inject(
        0,
        Script::new("saboteur").then(|_| Effect::WaitEvent(Key::plain("never-signalled"))),
    );
    match SimExecutor::new(CostModel::paper_cluster()).run(cl) {
        Err(RunError::Deadlock { blocked }) => {
            assert!(blocked
                .iter()
                .any(|(who, what)| who == "saboteur" && what.contains("never-signalled")));
        }
        other => panic!("expected deadlock, got ok={}", other.is_ok()),
    }
}

#[test]
fn sim_reports_every_blocked_messenger() {
    let mut cl = Cluster::new(2).expect("cluster");
    for i in 0..3 {
        cl.inject(
            i % 2,
            Script::new("stuck").then(move |_| Effect::WaitEvent(Key::at("gone", i))),
        );
    }
    match SimExecutor::new(CostModel::paper_cluster()).run(cl) {
        Err(RunError::Deadlock { blocked }) => assert_eq!(blocked.len(), 3),
        other => panic!("expected deadlock, got ok={}", other.is_ok()),
    }
}

#[test]
fn thread_executor_watchdog_fires_on_partial_deadlock() {
    // One messenger finishes fine; another waits forever.
    let mut cl = Cluster::new(2).expect("cluster");
    cl.inject(0, Script::new("fine").then(|_| Effect::Hop(1)));
    cl.inject(1, Script::new("stuck").then(|_| Effect::WaitEvent(Key::plain("no"))));
    let err = ThreadExecutor::new()
        .with_watchdog(Duration::from_millis(300))
        .run(cl)
        .unwrap_err();
    assert!(matches!(err, RunError::Stalled { live: 1 }));
}

#[test]
fn hop_out_of_range_is_caught_by_both_executors() {
    let build = || {
        let mut cl = Cluster::new(2).expect("cluster");
        cl.inject(0, Script::new("wild").then(|_| Effect::Hop(99)));
        cl
    };
    assert!(matches!(
        SimExecutor::new(CostModel::paper_cluster()).run(build()),
        Err(RunError::BadHop { dst: 99, pes: 2, .. })
    ));
    assert!(matches!(
        ThreadExecutor::new().run(build()),
        Err(RunError::BadHop { dst: 99, pes: 2, .. })
    ));
}

#[test]
fn runner_surfaces_topology_errors() {
    // 1-D stage on a 2-D grid.
    let cfg = MmConfig::real(8, 2);
    let grid = navp_repro::navp_matrix::Grid2D::new(2, 2).expect("grid");
    assert!(matches!(
        run_navp_sim(NavpStage::Pipe1D, &cfg, grid, &CostModel::paper_cluster(), false),
        Err(RunnerError::Topology(_))
    ));
    // Indivisible block count.
    let cfg = MmConfig::real(10, 2); // nb = 5, grid 2x2
    assert!(matches!(
        run_navp_sim(NavpStage::Dpc2D, &cfg, grid, &CostModel::paper_cluster(), false),
        Err(RunnerError::Matrix(_))
    ));
}

#[test]
fn mp_cross_rank_deadlock_is_diagnosed() {
    // Rank 0 waits for rank 1, rank 1 waits in a barrier.
    let r0 = RankScript::new("r0").then(|_| MpEffect::Recv {
        from: Some(1),
        tag: 42,
    });
    let r1 = RankScript::new("r1").then(|_| MpEffect::Barrier);
    let cl = MpCluster::new(vec![
        Box::new(r0) as Box<dyn Process>,
        Box::new(r1),
    ])
    .expect("cluster");
    match MpSimExecutor::new(CostModel::paper_cluster()).run(cl) {
        Err(MpError::Deadlock { blocked }) => {
            assert_eq!(blocked.len(), 2);
            let msg = format!("{blocked:?}");
            assert!(msg.contains("recv from 1 tag 42") && msg.contains("barrier"), "{msg}");
        }
        other => panic!("expected deadlock, got ok={}", other.is_ok()),
    }
}

/// The watchdog's `Stalled` diagnosis reaches through the whole stack:
/// a lost event signal injected into a real paper stage leaves some
/// carrier parked forever, and the stage-level runner — with the
/// watchdog configured through [`MmConfig`] — reports the stall rather
/// than hanging.
#[test]
fn lost_signal_in_stage_is_reported_as_stall() {
    let cfg = MmConfig::real(12, 2).with_watchdog(Duration::from_millis(400));
    let grid = navp_repro::navp_matrix::Grid2D::new(2, 2).expect("grid");
    let plan = FaultPlan::new().lose_signal(0, 1);
    match run_navp_threads_faulted(NavpStage::Pipe2D, &cfg, grid, plan) {
        Err(RunnerError::Navp(RunError::Stalled { live })) => {
            assert!(live > 0, "a carrier must still be parked");
        }
        other => panic!("expected Stalled, got ok={}", other.is_ok()),
    }
}

/// WorkerPanic must also surface through a faulted stage run: a crash of
/// a messenger that cannot snapshot is a structured RecoveryFailed, and
/// a panic inside a worker is a structured WorkerPanic — never a hang.
#[test]
fn worker_panic_preempts_generous_watchdog() {
    let mut cl = Cluster::new(2).expect("cluster");
    cl.inject(0, Script::new("ok").then(|_| Effect::Hop(1)));
    cl.inject(1, Script::new("boom2").then(|_| panic!("late failure")));
    let start = std::time::Instant::now();
    match ThreadExecutor::new()
        .with_watchdog(Duration::from_secs(30))
        .run(cl)
    {
        Err(RunError::WorkerPanic(msg)) => assert!(msg.contains("late failure")),
        other => panic!("expected worker panic, got ok={}", other.is_ok()),
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "panic must preempt the watchdog, not wait for it"
    );
}

#[test]
fn panicking_messenger_does_not_hang_thread_executor() {
    let mut cl = Cluster::new(3).expect("cluster");
    cl.inject(1, Script::new("boom").then(|_| panic!("injected failure")));
    match ThreadExecutor::new()
        .with_watchdog(Duration::from_secs(2))
        .run(cl)
    {
        Err(RunError::WorkerPanic(msg)) => assert!(msg.contains("injected failure")),
        other => panic!("expected worker panic, got ok={}", other.is_ok()),
    }
}
