//! `NAVP_FAULT_SPEC` environment injection, end to end: a spec string
//! in the environment faults a run whose cluster carries no explicit
//! plan — the mechanism repro files ride in on.
//!
//! One `#[test]` only: the test mutates process-global environment
//! state, so it gets a binary of its own (Rust runs tests of one
//! binary concurrently; siblings here would race the variable).

use navp_repro::navp::{FaultPlan, RunError, FAULT_SPEC_ENV};
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::runner::{run_navp_sim, NavpStage};
use navp_repro::navp_mm::MmConfig;
use navp_sim::CostModel;

#[test]
fn env_spec_faults_a_planless_run() {
    let cfg = MmConfig::real(12, 2);
    let grid = Grid2D::line(3).expect("grid");
    let cost = CostModel::paper_cluster();

    // Unset: the run is clean.
    std::env::remove_var(FAULT_SPEC_ENV);
    let clean = run_navp_sim(NavpStage::Dsc1D, &cfg, grid, &cost, false).expect("clean run");
    assert_eq!(clean.verified, Some(true));
    assert_eq!(clean.faults.expect("stats").crashes, 0);

    // A recoverable crash spec: injected, recovered, product intact.
    let plan = FaultPlan::new().crash_pe(1, 2);
    std::env::set_var(FAULT_SPEC_ENV, plan.to_spec());
    let faulted = run_navp_sim(NavpStage::Dsc1D, &cfg, grid, &cost, false).expect("faulted run");
    assert_eq!(faulted.verified, Some(true), "recoverable crash keeps the product");
    assert_eq!(faulted.faults.expect("stats").crashes, 1, "the env plan was injected");

    // Spec round-trip sanity while we hold the variable: what the env
    // carried parses back to the plan we serialized.
    let parsed = FaultPlan::parse_spec(&std::env::var(FAULT_SPEC_ENV).unwrap()).unwrap();
    assert_eq!(parsed, plan);

    // An unrecoverable spec surfaces its structured error.
    std::env::set_var(
        FAULT_SPEC_ENV,
        FaultPlan::new().crash_pe(1, 2).without_checkpointing().to_spec(),
    );
    match run_navp_sim(NavpStage::Dsc1D, &cfg, grid, &cost, false) {
        Err(e) => assert!(
            matches!(
                e,
                navp_repro::navp_mm::RunnerError::Navp(RunError::PeCrashed { pe: 1, .. })
            ),
            "expected PeCrashed, got {e}"
        ),
        Ok(_) => panic!("checkpointing-off crash must abort the run"),
    }

    // A malformed spec is a loud, descriptive error — never silently a
    // clean run.
    std::env::set_var(FAULT_SPEC_ENV, "explode pe=0");
    match run_navp_sim(NavpStage::Dsc1D, &cfg, grid, &cost, false) {
        Err(e) => assert!(e.to_string().contains("unknown fault verb"), "{e}"),
        Ok(_) => panic!("malformed spec accepted"),
    }

    std::env::remove_var(FAULT_SPEC_ENV);
}
