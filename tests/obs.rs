//! The flight recorder must be an *observer*: with recording on
//! (the default) or forced off, every executor's product is bitwise
//! identical and the sim executor's virtual clock does not move. This
//! is the contract that lets the recorder stay always-on in
//! production — instrumentation that perturbed products or modeled
//! time would invalidate the paper's reproduced tables.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_sim, run_navp_threads, NavpStage, NetOpts,
};
use navp_repro::navp_mm::MmConfig;
use navp_repro::navp_obs;
use navp_repro::navp_sim::CostModel;
use std::sync::Mutex;

/// The recorder's enabled flag is process-global; serialize the tests
/// that flip it so the parallel test harness cannot interleave them.
static FLIGHT_FLAG: Mutex<()> = Mutex::new(());

/// Run `f` with the recorder forced to `on`, restoring the previous
/// state afterwards (also on panic, via the returned guard's drop).
fn with_flight<T>(on: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            navp_obs::flight().set_enabled(self.0);
        }
    }
    let _restore = Restore(navp_obs::flight().enabled());
    navp_obs::flight().set_enabled(on);
    f()
}

fn grid_for(stage: NavpStage) -> Grid2D {
    if stage.is_1d() {
        Grid2D::line(2).expect("grid")
    } else {
        Grid2D::new(2, 2).expect("grid")
    }
}

const STAGES: [NavpStage; 3] = [NavpStage::Dsc1D, NavpStage::Pipe2D, NavpStage::Phase1D];

#[test]
fn recorder_is_bitwise_neutral_on_the_sim_executor() {
    let _serial = FLIGHT_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = MmConfig::real(16, 2);
    let cost = CostModel::paper_cluster();
    for stage in STAGES {
        let grid = grid_for(stage);
        let on = with_flight(true, || {
            run_navp_sim(stage, &cfg, grid, &cost, true).expect("sim on")
        });
        let off = with_flight(false, || {
            run_navp_sim(stage, &cfg, grid, &cost, true).expect("sim off")
        });
        assert_eq!(
            on.virt_seconds,
            off.virt_seconds,
            "{}: recorder moved the virtual clock",
            stage.name()
        );
        assert_eq!(
            on.trace.expect("trace").fingerprint(),
            off.trace.expect("trace").fingerprint(),
            "{}: recorder changed the execution trace",
            stage.name()
        );
        let (c_on, c_off) = (on.c.expect("c on"), off.c.expect("c off"));
        assert_eq!(
            c_on.max_abs_diff(&c_off),
            0.0,
            "{}: recorder changed the sim product",
            stage.name()
        );
    }
}

#[test]
fn recorder_is_bitwise_neutral_on_the_thread_executor() {
    let _serial = FLIGHT_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = MmConfig::real(16, 2);
    for stage in STAGES {
        let grid = grid_for(stage);
        let on = with_flight(true, || run_navp_threads(stage, &cfg, grid).expect("threads on"));
        let off =
            with_flight(false, || run_navp_threads(stage, &cfg, grid).expect("threads off"));
        assert_eq!(on.verified, Some(true), "{}", stage.name());
        assert_eq!(off.verified, Some(true), "{}", stage.name());
        let (c_on, c_off) = (on.c.expect("c on"), off.c.expect("c off"));
        assert_eq!(
            c_on.max_abs_diff(&c_off),
            0.0,
            "{}: recorder changed the thread product",
            stage.name()
        );
    }
}

#[test]
fn recorder_is_bitwise_neutral_on_the_net_executor() {
    let _serial = FLIGHT_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = MmConfig::real(16, 2).with_watchdog(std::time::Duration::from_secs(60));
    let opts = NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    };
    let stage = NavpStage::Dsc1D;
    let grid = Grid2D::line(4).expect("grid");
    let on = with_flight(true, || {
        run_navp_net(stage, &cfg, grid, &opts).expect("net on")
    });
    let off = with_flight(false, || {
        run_navp_net(stage, &cfg, grid, &opts).expect("net off")
    });
    assert_eq!(on.verified, Some(true));
    assert_eq!(off.verified, Some(true));
    let (c_on, c_off) = (on.c.expect("c on"), off.c.expect("c off"));
    assert_eq!(
        c_on.max_abs_diff(&c_off),
        0.0,
        "recorder changed the networked product"
    );
}

#[test]
fn recorder_actually_records_during_an_instrumented_run() {
    let _serial = FLIGHT_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = MmConfig::real(16, 2);
    let before: u64 = navp_obs::flight()
        .snapshot_all()
        .iter()
        .map(|s| s.events.len() as u64 + s.dropped)
        .sum();
    with_flight(true, || {
        run_navp_threads(NavpStage::Dsc1D, &cfg, Grid2D::line(2).expect("grid")).expect("run")
    });
    let after: u64 = navp_obs::flight()
        .snapshot_all()
        .iter()
        .map(|s| s.events.len() as u64 + s.dropped)
        .sum();
    assert!(
        after > before,
        "an enabled recorder saw no events during a thread run ({before} -> {after})"
    );
}
