//! Networked-executor parity: a 4-PE loopback cluster of real OS
//! processes must produce the *bitwise identical* product to the
//! in-process thread executor.
//!
//! Bitwise (not epsilon) equality is the acceptance bar because the
//! block-kernel summation order is fixed by the algorithm, and the
//! wire protocol moves every `f64` as its exact bit pattern — any
//! difference at all means the wire layer corrupted or reordered a
//! contribution.

use navp_repro::navp::FaultPlan;
use navp_repro::navp_kv::{run_kv_net, run_kv_threads, KvConfig, KvStage};
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_net_faulted, run_navp_threads, NavpStage, NetOpts,
};
use navp_repro::navp_mm::MmConfig;
use std::time::Duration;

/// The `navp-pe` daemon this crate ships, resolved by Cargo.
fn opts() -> NetOpts {
    NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    }
}

fn cfg(n: usize, ab: usize) -> MmConfig {
    // Generous watchdog: CI machines can be slow to spawn 4 processes.
    MmConfig::real(n, ab).with_watchdog(Duration::from_secs(60))
}

fn grid_for(stage: NavpStage) -> Grid2D {
    if stage.is_1d() {
        Grid2D::line(4).expect("grid")
    } else {
        Grid2D::new(2, 2).expect("grid")
    }
}

/// The ISSUE acceptance triple: one 1-D DSC stage, one 2-D pipelined
/// stage, one phase-shifted stage, each on 4 PEs with real payloads.
const STAGES: [NavpStage; 3] = [NavpStage::Dsc1D, NavpStage::Pipe2D, NavpStage::Phase1D];

#[test]
fn net_product_is_bitwise_identical_to_threads() {
    let cfg = cfg(16, 2);
    for stage in STAGES {
        let grid = grid_for(stage);
        let want = run_navp_threads(stage, &cfg, grid)
            .unwrap_or_else(|e| panic!("{} threads: {e}", stage.name()));
        let got = run_navp_net(stage, &cfg, grid, &opts())
            .unwrap_or_else(|e| panic!("{} net: {e}", stage.name()));
        assert_eq!(got.verified, Some(true), "{} net product wrong", stage.name());
        let (want_c, got_c) = (want.c.expect("threads c"), got.c.expect("net c"));
        assert_eq!(
            want_c.max_abs_diff(&got_c),
            0.0,
            "{}: net product differs from threads",
            stage.name()
        );
    }
}

#[test]
fn net_parity_survives_a_seeded_hop_delay_plan() {
    // Delay-only plan: `FaultPlan::seeded` always includes a crash, and
    // a crash intentionally perturbs timing stats — for *parity* we
    // want faults that stress the transport without touching the data
    // path semantics. Deterministic (seed-derived) delays on three PEs.
    let cfg = cfg(16, 2);
    for stage in STAGES {
        let grid = grid_for(stage);
        let plan = FaultPlan::new()
            .delay_hop(0, 1, 0.05)
            .delay_hop(1, 2, 0.08)
            .delay_hop(2, 1, 0.05)
            .delay_hop(3, 1, 0.03);
        let want = run_navp_threads(stage, &cfg, grid)
            .unwrap_or_else(|e| panic!("{} threads: {e}", stage.name()));
        let got = run_navp_net_faulted(stage, &cfg, grid, &opts(), plan)
            .unwrap_or_else(|e| panic!("{} net+delays: {e}", stage.name()));
        assert_eq!(got.verified, Some(true), "{} under delays", stage.name());
        let faults = got.faults.expect("fault stats");
        assert!(
            faults.hops_delayed > 0,
            "{}: the delay plan never fired",
            stage.name()
        );
        assert_eq!(
            want.c.expect("threads c").max_abs_diff(&got.c.expect("net c")),
            0.0,
            "{}: delayed net product differs from threads",
            stage.name()
        );
    }
}

#[test]
fn net_recovers_a_crashed_pe_process_with_full_parity() {
    // crash = the PE *process* exits mid-run and is restarted from the
    // hop-delivery checkpoint; the product must still match bitwise.
    let cfg = cfg(16, 2);
    let grid = Grid2D::line(4).expect("grid");
    let plan = FaultPlan::new()
        .crash_pe(2, 1)
        .with_retry(4, Duration::from_millis(50));
    let want = run_navp_threads(NavpStage::Dsc1D, &cfg, grid).expect("threads");
    let got = run_navp_net_faulted(NavpStage::Dsc1D, &cfg, grid, &opts(), plan)
        .expect("net crash recovery");
    assert_eq!(got.verified, Some(true));
    let faults = got.faults.expect("fault stats");
    assert!(faults.crashes >= 1, "the crash never fired: {faults:?}");
    assert_eq!(
        want.c.expect("threads c").max_abs_diff(&got.c.expect("net c")),
        0.0,
        "recovered net product differs from threads"
    );
}

#[test]
fn net_reports_consistent_per_pe_stats() {
    let cfg = cfg(16, 2);
    let grid = Grid2D::line(4).expect("grid");
    let out = run_navp_net(NavpStage::Dsc1D, &cfg, grid, &opts()).expect("net");
    let per_pe = out.per_pe_net.expect("networked runs report per-PE stats");
    assert_eq!(per_pe.len(), 4);
    let hops: u64 = per_pe.iter().map(|s| s.hops).sum();
    assert_eq!(hops, out.transfers, "per-PE hop sum disagrees with total");
    assert!(
        per_pe.iter().all(|s| s.steps > 0),
        "every PE should run at least one messenger step: {per_pe:?}"
    );
    assert!(
        out.bytes >= per_pe.iter().map(|s| s.hop_payload_bytes).sum::<u64>(),
        "wire bytes include framing and must dominate raw payload bytes"
    );
    assert!(out.wall.is_some(), "networked runs are wall-clock timed");
}

/// The event loop's mid-scale regime: a 16-PE line mesh — four times
/// the paper's cluster — must keep bitwise parity with the thread
/// executor. This runs in the regular suite; the 64-PE variant below
/// is `#[ignore]`d and exercised by the CI high-PE job.
#[test]
fn net_parity_holds_on_a_16_pe_line() {
    // nb = 16 block rows: exactly one per PE, so every hop crosses a
    // real socket.
    let cfg = cfg(32, 2);
    let grid = Grid2D::line(16).expect("grid");
    let want = run_navp_threads(NavpStage::Phase1D, &cfg, grid).expect("threads");
    let got = run_navp_net(NavpStage::Phase1D, &cfg, grid, &opts()).expect("net 16 PEs");
    assert_eq!(got.verified, Some(true));
    assert_eq!(
        want.c.expect("threads c").max_abs_diff(&got.c.expect("net c")),
        0.0,
        "16-PE net product differs from threads"
    );
}

/// High-PE acceptance: 64 real `navp-pe` processes on loopback produce
/// the bitwise-identical product, and the merged metrics snapshot
/// carries the event loop's `navp_net_io_*` series with sane
/// relationships (coalesced ≤ frames, flushed bytes > 0, pending
/// drained back to zero).
#[test]
#[ignore = "spawns 64 OS processes; the CI high-PE job runs it via -- --ignored"]
fn net_64_pe_mesh_keeps_bitwise_parity_and_reports_io_metrics() {
    // nb = 64 block rows, one per PE; generous watchdog for the big
    // spawn + full-mesh handshake.
    let cfg = MmConfig::real(128, 2)
        .with_watchdog(Duration::from_secs(180))
        .with_metrics(true);
    let grid = Grid2D::line(64).expect("grid");
    let want = run_navp_threads(NavpStage::Phase1D, &cfg, grid).expect("threads");
    let got = run_navp_net(NavpStage::Phase1D, &cfg, grid, &opts()).expect("net 64 PEs");
    assert_eq!(got.verified, Some(true));
    assert_eq!(
        want.c.expect("threads c").max_abs_diff(&got.c.expect("net c")),
        0.0,
        "64-PE net product differs from threads"
    );
    let snap = got.metrics.expect("merged metrics snapshot");
    let frames = snap.total("navp_net_io_frames_total");
    let coalesced = snap.total("navp_net_io_coalesced_frames_total");
    let flushed = snap.total("navp_net_io_flushed_bytes_total");
    let writev = snap.total("navp_net_io_writev_total");
    assert!(frames > 0.0, "event loop sent no frames?");
    assert!(writev > 0.0, "event loop never flushed?");
    assert!(flushed > 0.0, "event loop flushed no bytes?");
    assert!(
        coalesced <= frames,
        "coalesced frames ({coalesced}) cannot exceed total frames ({frames})"
    );
    assert_eq!(
        snap.total("navp_net_io_pending_bytes"),
        0.0,
        "send queues must drain to zero by run end"
    );
}

/// The kv journey on a 16-PE mesh of real processes: the distributed
/// product must verify against the sequential reference, proving the
/// event loop handles the kv workload's many tiny frames at scale.
#[test]
#[ignore = "spawns 16 OS processes; the CI high-PE job runs it via -- --ignored"]
fn kv_journey_verifies_on_a_16_pe_net_mesh() {
    let cfg = KvConfig::new(2_000, 8).with_seed(0xFEED_5EED);
    for stage in [KvStage::Dsc, KvStage::Pipe, KvStage::Phase] {
        let reference = run_kv_threads(stage, &cfg, 16).expect("threads");
        assert_eq!(reference.verified, Some(true));
        let got = run_kv_net(stage, &cfg, 16, &opts()).expect("kv net 16 PEs");
        assert_eq!(
            got.verified,
            Some(true),
            "{} kv journey failed to verify on 16 net PEs",
            stage.name()
        );
        assert_eq!(
            got.stats.scanned, reference.stats.scanned,
            "{}: scan volume diverged between executors",
            stage.name()
        );
    }
}
