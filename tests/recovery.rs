//! Fault injection + checkpoint/restart, end to end: a paper stage run
//! under an injected PE crash must produce the *bitwise identical*
//! result matrix of the fault-free run, on both executors — recovery
//! re-delivers checkpointed messengers and replays journaled writes,
//! it never re-executes committed work.

use navp_repro::navp::{FaultPlan, RunError};
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::runner::{
    run_navp_sim, run_navp_sim_faulted, run_navp_threads, run_navp_threads_faulted, NavpStage,
    RunnerError,
};
use navp_repro::navp_sim::CostModel;
use std::time::Duration;

fn grid_for(stage: NavpStage) -> Grid2D {
    if stage.is_1d() {
        Grid2D::line(3).expect("line")
    } else {
        Grid2D::new(2, 2).expect("grid")
    }
}

/// Crash one PE mid-run and demand the exact fault-free product back.
fn crash_recovers_bitwise(stage: NavpStage, crash_pe: usize, at_run: u64) {
    let cfg = MmConfig::real(12, 2).with_watchdog(Duration::from_secs(30));
    let grid = grid_for(stage);
    let cost = CostModel::paper_cluster();
    let plan = FaultPlan::new().crash_pe(crash_pe, at_run);

    let clean = run_navp_sim(stage, &cfg, grid, &cost, false).expect("clean sim");
    let faulted =
        run_navp_sim_faulted(stage, &cfg, grid, &cost, plan.clone()).expect("faulted sim");
    assert_eq!(faulted.verified, Some(true), "{}: sim result wrong", stage.name());
    let fs = faulted.faults.expect("NavP run reports fault stats");
    assert_eq!(fs.crashes, 1, "{}: sim crash not injected", stage.name());
    assert!(fs.redelivered >= 1, "{}: nothing re-delivered", stage.name());
    assert_eq!(
        clean.c.as_ref().expect("real payload"),
        faulted.c.as_ref().expect("real payload"),
        "{}: sim product not bitwise identical",
        stage.name()
    );

    let clean = run_navp_threads(stage, &cfg, grid).expect("clean threads");
    let faulted =
        run_navp_threads_faulted(stage, &cfg, grid, plan).expect("faulted threads");
    assert_eq!(faulted.verified, Some(true), "{}: thread result wrong", stage.name());
    let fs = faulted.faults.expect("NavP run reports fault stats");
    assert_eq!(fs.crashes, 1, "{}: thread crash not injected", stage.name());
    assert!(fs.redelivered >= 1, "{}: nothing re-delivered", stage.name());
    assert_eq!(
        clean.c.as_ref().expect("real payload"),
        faulted.c.as_ref().expect("real payload"),
        "{}: thread product not bitwise identical",
        stage.name()
    );
}

#[test]
fn dsc1d_single_pe_crash_recovers_bitwise() {
    // PE 1's first delivery (the DSC carrier arriving with its A row) is
    // destroyed by the crash and re-delivered from its hop checkpoint.
    crash_recovers_bitwise(NavpStage::Dsc1D, 1, 1);
}

#[test]
fn pipe2d_single_pe_crash_recovers_bitwise() {
    // Crash mid-pipeline: PE 1 holds parked event-waiters, deposited B
    // slots (journaled writes) and in-flight block carriers.
    crash_recovers_bitwise(NavpStage::Pipe2D, 1, 3);
}

#[test]
fn phase1d_crash_on_home_pe_recovers_bitwise() {
    // The phase-shifted stage crashes the PE that also hosts launcher
    // stops, exercising the launcher's structural snapshot.
    crash_recovers_bitwise(NavpStage::Phase1D, 0, 2);
}

#[test]
fn crash_without_checkpointing_is_structured_on_both_executors() {
    let cfg = MmConfig::real(12, 2).with_watchdog(Duration::from_secs(30));
    let grid = Grid2D::line(3).expect("line");
    let plan = FaultPlan::new().crash_pe(1, 1).without_checkpointing();

    match run_navp_sim_faulted(
        NavpStage::Dsc1D,
        &cfg,
        grid,
        &CostModel::paper_cluster(),
        plan.clone(),
    ) {
        Err(RunnerError::Navp(RunError::PeCrashed { pe: 1, .. })) => {}
        other => panic!("sim: expected PeCrashed, got ok={}", other.is_ok()),
    }
    // The generous watchdog proves the structured error preempts any
    // stall: an unrecoverable crash must not present as a hang.
    match run_navp_threads_faulted(NavpStage::Dsc1D, &cfg, grid, plan) {
        Err(RunnerError::Navp(RunError::PeCrashed { pe: 1, .. })) => {}
        other => panic!("threads: expected PeCrashed, got ok={}", other.is_ok()),
    }
}

#[test]
fn seeded_fault_plans_are_deterministic() {
    let cfg = MmConfig::real(12, 2);
    let grid = Grid2D::line(3).expect("line");
    let cost = CostModel::paper_cluster();
    let plan = FaultPlan::seeded(0xFEED, 3);

    let one = run_navp_sim_faulted(NavpStage::Dsc1D, &cfg, grid, &cost, plan.clone())
        .expect("first seeded run");
    let two = run_navp_sim_faulted(NavpStage::Dsc1D, &cfg, grid, &cost, plan)
        .expect("second seeded run");
    assert_eq!(one.verified, Some(true));
    assert_eq!(one.virt_seconds, two.virt_seconds, "virtual time must repeat");
    assert_eq!(one.faults, two.faults, "fault counters must repeat");
    assert_eq!(one.c, two.c, "product must repeat bitwise");
}

#[test]
fn recovery_makespan_accounts_for_the_outage() {
    // The simulated crash costs recovery_seconds of virtual time, so the
    // faulted makespan strictly exceeds the clean one.
    let cfg = MmConfig::real(12, 2);
    let grid = Grid2D::line(3).expect("line");
    let cost = CostModel::paper_cluster();
    let clean = run_navp_sim(NavpStage::Dsc1D, &cfg, grid, &cost, false).expect("clean");
    let plan = FaultPlan::new().crash_pe(1, 1).with_recovery_seconds(2.0);
    let faulted =
        run_navp_sim_faulted(NavpStage::Dsc1D, &cfg, grid, &cost, plan).expect("faulted");
    assert!(
        faulted.virt_seconds.unwrap() >= clean.virt_seconds.unwrap() + 1.999,
        "faulted {:?} vs clean {:?}",
        faulted.virt_seconds,
        clean.virt_seconds
    );
    assert_eq!(faulted.verified, Some(true));
}
