//! Durable-checkpoint integration: every executor's run can be killed
//! mid-computation and restored *from disk* to the bitwise-identical
//! product.
//!
//! Bitwise (not epsilon) equality is the acceptance bar: the cuts
//! record committed `f64` blocks as exact bit patterns and the resumed
//! run replays the identical schedule, so any difference at all means
//! the durable layer lost or corrupted state.

use navp_repro::navp::{FaultPlan, RunError};
use navp_repro::navp_matrix::{Grid2D, Matrix};
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_sim, run_navp_sim_durable, run_navp_threads,
    run_navp_threads_durable, run_restored_net, run_restored_sim, run_restored_threads,
    NavpStage, NetOpts, RunnerError,
};
use navp_repro::navp_mm::MmConfig;
use navp_sim::CostModel;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The ISSUE acceptance triple: a DSC stage, a phase-shifted stage,
/// and a 2-D pipelined stage (the latter exercises events + waiters in
/// the cuts, not just residents).
const STAGES: [NavpStage; 3] = [NavpStage::Dsc1D, NavpStage::Phase1D, NavpStage::Pipe2D];

fn grid_for(stage: NavpStage) -> Grid2D {
    if stage.is_1d() {
        Grid2D::line(3).expect("grid")
    } else {
        Grid2D::new(2, 2).expect("grid")
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("navp-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A fault plan that kills the whole in-process run midway: the crash
/// is *not* recovered in place (checkpointing off), so the executor
/// dies with [`RunError::PeCrashed`] — the closest in-process analogue
/// of `kill -9` — leaving only the durable cuts behind.
fn killer_plan() -> FaultPlan {
    FaultPlan::new().without_checkpointing().crash_pe(1, 2)
}

fn assert_died_mid_run(result: Result<navp_repro::navp_mm::RunOutput, RunnerError>) {
    match result {
        Err(RunnerError::Navp(RunError::PeCrashed { pe: 1, .. })) => {}
        Err(e) => panic!("expected the planted PeCrashed, got: {e}"),
        Ok(_) => panic!("the killer plan must abort the run"),
    }
}

#[test]
fn sim_killed_runs_restore_bitwise_from_disk() {
    let cfg = MmConfig::real(12, 2);
    let cost = CostModel::paper_cluster();
    for stage in STAGES {
        let grid = grid_for(stage);
        let want = run_navp_sim(stage, &cfg, grid, &cost, false)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", stage.name()))
            .c
            .expect("real payload");
        let dir = tmp(&format!("sim-{}", stage.name().replace([' ', '(', ')'], "")));
        assert_died_mid_run(run_navp_sim_durable(
            stage,
            &cfg,
            grid,
            &cost,
            &dir,
            Some(killer_plan()),
        ));
        let out = run_restored_sim(stage, &cfg, grid, &cost, &dir)
            .unwrap_or_else(|e| panic!("{} restore: {e}", stage.name()));
        assert_eq!(out.verified, Some(true), "{} must verify", stage.name());
        let got = out.c.expect("real payload");
        assert_eq!(bits(&got), bits(&want), "{} bitwise parity", stage.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn threads_killed_runs_restore_bitwise_from_disk() {
    let cfg = MmConfig::real(12, 2).with_watchdog(Duration::from_secs(60));
    for stage in STAGES {
        let grid = grid_for(stage);
        let want = run_navp_threads(stage, &cfg, grid)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", stage.name()))
            .c
            .expect("real payload");
        let dir = tmp(&format!("thr-{}", stage.name().replace([' ', '(', ')'], "")));
        assert_died_mid_run(run_navp_threads_durable(
            stage,
            &cfg,
            grid,
            &dir,
            Some(killer_plan()),
        ));
        let out = run_restored_threads(stage, &cfg, grid, &dir)
            .unwrap_or_else(|e| panic!("{} restore: {e}", stage.name()));
        assert_eq!(out.verified, Some(true), "{} must verify", stage.name());
        let got = out.c.expect("real payload");
        assert_eq!(bits(&got), bits(&want), "{} bitwise parity", stage.name());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A sim run interrupted mid-flight restores and finishes on *threads*
/// (and vice versa): the cut format is executor-agnostic.
#[test]
fn cuts_restore_across_executors() {
    let cfg = MmConfig::real(12, 2).with_watchdog(Duration::from_secs(60));
    let cost = CostModel::paper_cluster();
    let stage = NavpStage::Phase1D;
    let grid = grid_for(stage);
    let want = run_navp_sim(stage, &cfg, grid, &cost, false)
        .expect("baseline")
        .c
        .expect("real payload");

    let dir = tmp("sim-to-threads");
    assert_died_mid_run(run_navp_sim_durable(
        stage,
        &cfg,
        grid,
        &cost,
        &dir,
        Some(killer_plan()),
    ));
    let got = run_restored_threads(stage, &cfg, grid, &dir)
        .expect("sim cuts on threads")
        .c
        .expect("real payload");
    assert_eq!(bits(&got), bits(&want), "sim cuts finish on threads bitwise");
    std::fs::remove_dir_all(&dir).ok();

    let dir = tmp("threads-to-sim");
    assert_died_mid_run(run_navp_threads_durable(
        stage,
        &cfg,
        grid,
        &dir,
        Some(killer_plan()),
    ));
    let got = run_restored_sim(stage, &cfg, grid, &cost, &dir)
        .expect("thread cuts on sim")
        .c
        .expect("real payload");
    assert_eq!(bits(&got), bits(&want), "thread cuts finish on sim bitwise");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_and_truncated_checkpoints_are_rejected() {
    let cfg = MmConfig::real(12, 2);
    let cost = CostModel::paper_cluster();
    let stage = NavpStage::Dsc1D;
    let grid = grid_for(stage);
    let dir = tmp("corrupt");
    assert_died_mid_run(run_navp_sim_durable(
        stage,
        &cfg,
        grid,
        &cost,
        &dir,
        Some(killer_plan()),
    ));

    // Pristine cuts restore fine…
    run_restored_sim(stage, &cfg, grid, &cost, &dir).expect("pristine cuts restore");

    // …a flipped byte is caught by the container checksum…
    let cut = dir.join("pe-1.ckpt");
    let pristine = std::fs::read(&cut).unwrap();
    let mut bad = pristine.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    std::fs::write(&cut, &bad).unwrap();
    let err = match run_restored_sim(stage, &cfg, grid, &cost, &dir) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("corrupted cut accepted"),
    };
    assert!(err.contains("checksum"), "{err}");

    // …and a torn (truncated) file is named as such.
    std::fs::write(&cut, &pristine[..mid]).unwrap();
    let err = match run_restored_sim(stage, &cfg, grid, &cost, &dir) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("truncated cut accepted"),
    };
    assert!(err.contains("truncated"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Networked executor: real `kill -9` of every OS process.
// ---------------------------------------------------------------------

fn net_opts(dir: &Path) -> NetOpts {
    NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    }
    .with_durable_dir(dir)
}

/// SIGKILL — no signal handler, no flush, nothing: only what already
/// reached disk survives.
fn sigkill(pid: u32) {
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status();
}

/// PIDs of every live `navp-pe --listen` daemon we spawned.
struct Daemons(Vec<std::process::Child>);

impl Daemons {
    fn spawn(dir: &Path, ports: &[u16]) -> Daemons {
        let bin = env!("CARGO_BIN_EXE_navp-pe");
        Daemons(
            ports
                .iter()
                .map(|p| {
                    std::process::Command::new(bin)
                        .arg("--listen")
                        .arg(format!("127.0.0.1:{p}"))
                        .arg("--durable-dir")
                        .arg(dir)
                        .stdin(std::process::Stdio::null())
                        .spawn()
                        .expect("spawn navp-pe")
                })
                .collect(),
        )
    }
}

impl Drop for Daemons {
    fn drop(&mut self) {
        for d in &mut self.0 {
            let _ = d.kill();
            let _ = d.wait();
        }
    }
}

/// Kill **every** PE process of a live networked durable run with
/// `kill -9`, then restore the whole cluster from the checkpoint
/// directory and finish it — bitwise-identical to the uninterrupted
/// product. (The resumed half runs on driver-spawned PEs; the killed
/// half runs on `--listen` daemons so the test owns their PIDs.)
#[test]
fn net_survives_kill_dash_nine_of_every_process() {
    let cfg = MmConfig::real(16, 2).with_watchdog(Duration::from_secs(60));
    let stage = NavpStage::Dsc1D;
    let grid = Grid2D::line(4).expect("grid");
    let want = run_navp_threads(stage, &cfg, grid)
        .expect("thread baseline")
        .c
        .expect("real payload");

    let dir = tmp("net-kill-all");
    let ports = [7461u16, 7462, 7463, 7464];
    let daemons = Daemons::spawn(&dir, &ports);
    std::thread::sleep(Duration::from_millis(300)); // listeners bind
    let mut opts = net_opts(&dir);
    opts.join = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();

    let (cfg2, opts2) = (cfg, opts);
    let driver =
        std::thread::spawn(move || run_navp_net(stage, &cfg2, grid, &opts2));

    // Let every PE commit at least its boundary-0 cut for the current
    // session, plus some real progress somewhere, then massacre.
    let manifest_nonce = |dir: &Path| {
        navp_repro::navp::durable::read_manifest(dir)
            .map(|m| m.nonce)
            .ok()
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        assert!(std::time::Instant::now() < deadline, "no durable progress");
        if driver.is_finished() {
            break; // tiny run won the race; cuts are still complete
        }
        let nonce = manifest_nonce(&dir);
        let cuts: Vec<_> = (0..4)
            .filter_map(|pe| navp_repro::navp::durable::read_cut(&dir, pe).ok())
            .filter(|c| Some(c.nonce) == nonce)
            .collect();
        if cuts.len() == 4 && cuts.iter().any(|c| c.boundary >= 2) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let raced_to_completion = driver.is_finished();
    for d in &daemons.0 {
        sigkill(d.id());
    }
    let result = driver.join().expect("driver thread");
    if !raced_to_completion {
        assert!(
            result.is_err(),
            "killing every PE must abort the run (got a product?)"
        );
    }
    drop(daemons);

    // Restore from disk onto freshly spawned PEs and finish.
    let opts = net_opts(&dir);
    let out = run_restored_net(stage, &cfg, grid, &opts, &dir).expect("restored net run");
    assert_eq!(out.verified, Some(true));
    let got = out.c.expect("real payload");
    assert_eq!(bits(&got), bits(&want), "kill -9 all + restore is bitwise");
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGTERM on a PE daemon is a *graceful* stop: the daemon flushes its
/// durable state, exits with the distinct graceful status, and the
/// driver reports [`RunError::PeStopped`] — not a crash, not a generic
/// disconnect. The stopped run then restores from disk bitwise.
#[test]
fn sigterm_is_graceful_and_reported_as_pe_stopped() {
    let cfg = MmConfig::real(16, 2).with_watchdog(Duration::from_secs(60));
    let stage = NavpStage::Dsc1D;
    let grid = Grid2D::line(4).expect("grid");
    let want = run_navp_threads(stage, &cfg, grid)
        .expect("thread baseline")
        .c
        .expect("real payload");

    let dir = tmp("net-sigterm");
    let ports = [7471u16, 7472, 7473, 7474];
    let daemons = Daemons::spawn(&dir, &ports);
    std::thread::sleep(Duration::from_millis(300));
    let mut opts = net_opts(&dir);
    opts.join = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();

    let (cfg2, opts2) = (cfg, opts);
    let driver =
        std::thread::spawn(move || run_navp_net(stage, &cfg2, grid, &opts2));
    // Stop PE 0 once it has committed progress in this session.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut stopped = false;
    while !driver.is_finished() {
        assert!(std::time::Instant::now() < deadline, "no durable progress");
        let nonce = navp_repro::navp::durable::read_manifest(&dir)
            .map(|m| m.nonce)
            .ok();
        let ready = navp_repro::navp::durable::read_cut(&dir, 0)
            .ok()
            .is_some_and(|c| Some(c.nonce) == nonce && c.boundary >= 2);
        if ready {
            let _ = std::process::Command::new("kill")
                .arg(daemons.0[0].id().to_string())
                .status();
            stopped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let result = driver.join().expect("driver thread");
    if stopped {
        match result {
            Err(RunnerError::Navp(RunError::PeStopped { pe: 0 })) => {}
            Err(e) => panic!("expected PeStopped for PE 0, got: {e}"),
            Ok(_) => panic!("run completed although PE 0 was stopped mid-run"),
        }
        drop(daemons);
        let opts = net_opts(&dir);
        let out = run_restored_net(stage, &cfg, grid, &opts, &dir).expect("restored net run");
        assert_eq!(out.verified, Some(true));
        let got = out.c.expect("real payload");
        assert_eq!(bits(&got), bits(&want), "graceful stop + restore is bitwise");
    }
    // else: the run finished before PE 0 made visible progress — the
    // deadline assert above guarantees we never pass vacuously on a
    // hang, and the race is legitimate on a fast machine.
    std::fs::remove_dir_all(&dir).ok();
}
