//! Property-style tests over the whole stack, run as deterministic
//! sweeps (no external property-testing crate): random legal problem
//! shapes must always verify; staggering algebra must always align; the
//! runtime's counting events must never lose a token.

use navp_repro::navp::script::Script;
use navp_repro::navp::{Cluster, Effect, Key, SimExecutor};
use navp_repro::navp_matrix::{stagger, Grid2D};
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::gentleman::GentlemanOpts;
use navp_repro::navp_mm::runner::{run_mp_sim, run_navp_sim, MpAlg, NavpStage};
use navp_repro::navp_sim::CostModel;

/// Legal (nb, ab, p) with p | nb: matrix order n = nb * ab. A fixed
/// case set covering the corner (all-ones) and mixed shapes.
fn mm_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = Vec::new();
    for per_pe in 1..=4usize {
        for ab in [1usize, 3, 4] {
            for p in 1..=3usize {
                shapes.push((per_pe * p, ab, p));
            }
        }
    }
    shapes
}

#[test]
fn any_legal_shape_verifies_on_dpc2d() {
    for (nb, ab, p) in mm_shapes().into_iter().take(12) {
        let cfg = MmConfig::real(nb * ab, ab);
        let grid = Grid2D::new(p, p).expect("grid");
        let out = run_navp_sim(NavpStage::Dpc2D, &cfg, grid, &CostModel::paper_cluster(), false)
            .expect("runs");
        assert_eq!(out.verified, Some(true), "shape ({nb},{ab},{p})");
    }
}

#[test]
fn any_legal_shape_verifies_on_phase1d() {
    for (nb, ab, p) in mm_shapes().into_iter().take(12) {
        let cfg = MmConfig::real(nb * ab, ab);
        let grid = Grid2D::line(p).expect("grid");
        let out = run_navp_sim(NavpStage::Phase1D, &cfg, grid, &CostModel::paper_cluster(), false)
            .expect("runs");
        assert_eq!(out.verified, Some(true), "shape ({nb},{ab},{p})");
    }
}

#[test]
fn any_legal_shape_verifies_on_gentleman() {
    for (nb, ab, p) in mm_shapes().into_iter().take(12) {
        let cfg = MmConfig::real(nb * ab, ab);
        let grid = Grid2D::new(p, p).expect("grid");
        let out = run_mp_sim(
            MpAlg::Gentleman(GentlemanOpts::default()),
            &cfg,
            grid,
            &CostModel::paper_cluster(),
        )
        .expect("runs");
        assert_eq!(out.verified, Some(true), "shape ({nb},{ab},{p})");
    }
}

#[test]
fn staggering_alignment_holds_for_any_torus() {
    // Forward and reverse staggering both put matching inner indices
    // on every node (the invariant behind Gentleman and full DPC).
    for p in 1..=12usize {
        for r in 0..p {
            for c in 0..p {
                // The A block at node (r, c) after forward staggering is
                // A(r, (c + r) % p); the B block is B((r + c) % p, c).
                assert_eq!(stagger::forward_a(r, (c + r) % p, p), (r, c));
                assert_eq!(stagger::forward_b((r + c) % p, c, p), (r, c));
                // Reverse staggering: A(r, k) with k = (p-1-r-c) % p.
                let k = (2 * p - 1 - r - c) % p;
                assert_eq!(stagger::reverse_a(r, k, p), (r, c));
                assert_eq!(stagger::reverse_b(k, c, p), (r, c));
            }
        }
    }
}

#[test]
fn stagger_phase_schedule_is_within_bounds() {
    for p in 2..=10usize {
        for transfers in [
            stagger::forward_transfers(p).expect("transfers"),
            stagger::reverse_transfers(p).expect("transfers"),
        ] {
            let lower = stagger::phase_lower_bound(&transfers, p);
            let (_, phases) = stagger::schedule_phases(&transfers, p);
            assert!(phases >= lower);
            // Greedy one-port schedules never exceed 2*maxdeg - 1.
            assert!(phases <= 2 * lower.max(1));
        }
    }
}

#[test]
fn counting_events_never_lose_tokens() {
    for (producers, tokens) in [(1usize, 1usize), (1, 8), (5, 1), (3, 4), (5, 8)] {
        // `producers` messengers each signal `tokens` times; one consumer
        // waits for every token. The run must terminate (no lost wakeup).
        let mut cl = Cluster::new(1).expect("cluster");
        for _ in 0..producers {
            cl.inject(
                0,
                Script::new("producer").then_each(tokens, |_, ctx| {
                    ctx.signal(Key::plain("tok"));
                    Effect::Hop(0)
                }),
            );
        }
        let total = producers * tokens;
        cl.inject(
            0,
            Script::new("consumer")
                .then_each(total, |_, _| Effect::WaitEvent(Key::plain("tok")))
                .then(|ctx| {
                    ctx.store().insert(Key::plain("done"), true, 1);
                    Effect::Done
                }),
        );
        let rep = SimExecutor::new(CostModel::paper_cluster())
            .run(cl)
            .expect("no deadlock");
        assert_eq!(rep.stores[0].get::<bool>(Key::plain("done")), Some(&true));
    }
}

#[test]
fn hop_sequences_terminate() {
    // Arbitrary hop itineraries must always run to completion.
    for seed in [0u64, 17, 411, 999] {
        for pes in 1..=5usize {
            let agents = 1 + (seed as usize + pes) % 10;
            let mut cl = Cluster::new(pes).expect("cluster");
            for a in 0..agents {
                let mut state = seed.wrapping_add(a as u64).wrapping_mul(0x9E3779B97F4A7C15);
                cl.inject(
                    a % pes,
                    Script::new("tourist").then_each(12, move |_, _| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        Effect::Hop((state >> 33) as usize % pes)
                    }),
                );
            }
            let rep = SimExecutor::new(CostModel::paper_cluster())
                .run(cl)
                .expect("terminates");
            assert_eq!(rep.steps, (agents * 13) as u64);
        }
    }
}
