//! Property-based tests (proptest) over the whole stack: random legal
//! problem shapes must always verify; staggering algebra must always
//! align; the runtime's counting events must never lose a token.

use navp_repro::navp::script::Script;
use navp_repro::navp::{Cluster, Effect, Key, SimExecutor};
use navp_repro::navp_matrix::{stagger, Grid2D};
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::gentleman::GentlemanOpts;
use navp_repro::navp_mm::runner::{run_mp_sim, run_navp_sim, MpAlg, NavpStage};
use navp_repro::navp_sim::CostModel;
use proptest::prelude::*;

/// Legal (nb, ab, p) with p | nb: matrix order n = nb * ab.
fn mm_shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=4, 1usize..=4, 1usize..=3)
        .prop_map(|(per_pe, ab, p)| (per_pe * p, ab, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_legal_shape_verifies_on_dpc2d((nb, ab, p) in mm_shape()) {
        let cfg = MmConfig::real(nb * ab, ab);
        let grid = Grid2D::new(p, p).expect("grid");
        let out = run_navp_sim(NavpStage::Dpc2D, &cfg, grid, &CostModel::paper_cluster(), false)
            .expect("runs");
        prop_assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn any_legal_shape_verifies_on_phase1d((nb, ab, p) in mm_shape()) {
        let cfg = MmConfig::real(nb * ab, ab);
        let grid = Grid2D::line(p).expect("grid");
        let out = run_navp_sim(NavpStage::Phase1D, &cfg, grid, &CostModel::paper_cluster(), false)
            .expect("runs");
        prop_assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn any_legal_shape_verifies_on_gentleman((nb, ab, p) in mm_shape()) {
        let cfg = MmConfig::real(nb * ab, ab);
        let grid = Grid2D::new(p, p).expect("grid");
        let out = run_mp_sim(
            MpAlg::Gentleman(GentlemanOpts::default()),
            &cfg,
            grid,
            &CostModel::paper_cluster(),
        )
        .expect("runs");
        prop_assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn staggering_alignment_holds_for_any_torus(p in 1usize..=12) {
        // Forward and reverse staggering both put matching inner indices
        // on every node (the invariant behind Gentleman and full DPC).
        for r in 0..p {
            for c in 0..p {
                // The A block at node (r, c) after forward staggering is
                // A(r, (c + r) % p); the B block is B((r + c) % p, c).
                prop_assert_eq!(stagger::forward_a(r, (c + r) % p, p), (r, c));
                prop_assert_eq!(stagger::forward_b((r + c) % p, c, p), (r, c));
                // Reverse staggering: A(r, k) with k = (p-1-r-c) % p.
                let k = (2 * p - 1 - r - c) % p;
                prop_assert_eq!(stagger::reverse_a(r, k, p), (r, c));
                prop_assert_eq!(stagger::reverse_b(k, c, p), (r, c));
            }
        }
    }

    #[test]
    fn stagger_phase_schedule_is_within_bounds(p in 2usize..=10) {
        for transfers in [
            stagger::forward_transfers(p).expect("transfers"),
            stagger::reverse_transfers(p).expect("transfers"),
        ] {
            let lower = stagger::phase_lower_bound(&transfers, p);
            let (_, phases) = stagger::schedule_phases(&transfers, p);
            prop_assert!(phases >= lower);
            // Greedy one-port schedules never exceed 2*maxdeg - 1.
            prop_assert!(phases <= 2 * lower.max(1));
        }
    }

    #[test]
    fn counting_events_never_lose_tokens(producers in 1usize..=5, tokens in 1usize..=8) {
        // `producers` messengers each signal `tokens` times; one consumer
        // waits for every token. The run must terminate (no lost wakeup).
        let mut cl = Cluster::new(1).expect("cluster");
        for _ in 0..producers {
            cl.inject(
                0,
                Script::new("producer").then_each(tokens, |_, ctx| {
                    ctx.signal(Key::plain("tok"));
                    Effect::Hop(0)
                }),
            );
        }
        let total = producers * tokens;
        cl.inject(
            0,
            Script::new("consumer")
                .then_each(total, |_, _| Effect::WaitEvent(Key::plain("tok")))
                .then(|ctx| {
                    ctx.store().insert(Key::plain("done"), true, 1);
                    Effect::Done
                }),
        );
        let rep = SimExecutor::new(CostModel::paper_cluster()).run(cl).expect("no deadlock");
        prop_assert_eq!(rep.stores[0].get::<bool>(Key::plain("done")), Some(&true));
    }

    #[test]
    fn hop_sequences_terminate(seed in 0u64..1000, pes in 1usize..=5, agents in 1usize..=10) {
        // Arbitrary hop itineraries must always run to completion.
        let mut cl = Cluster::new(pes).expect("cluster");
        for a in 0..agents {
            let mut state = seed.wrapping_add(a as u64).wrapping_mul(0x9E3779B97F4A7C15);
            cl.inject(
                a % pes,
                Script::new("tourist").then_each(12, move |_, _| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Effect::Hop((state >> 33) as usize % pes)
                }),
            );
        }
        let rep = SimExecutor::new(CostModel::paper_cluster()).run(cl).expect("terminates");
        prop_assert_eq!(rep.steps, (agents * 13) as u64);
    }
}
