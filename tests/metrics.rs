//! Metrics acceptance: metering must not perturb the computation
//! (metrics-off runs stay bitwise identical), metered counters must
//! reconcile with the executors' own accounting and the trace's span
//! counts, the Prometheus exposition must round-trip through the
//! line-format validator, and a running `navp-pe --metrics-addr`
//! daemon must serve live `/metrics` and `/healthz` mid-run.

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_metrics::{validate_prometheus, MetricsSnapshot, RunMetrics};
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_threads, run_navp_threads_metered, NavpStage, NetOpts,
};
use navp_repro::navp_mm::MmConfig;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn cfg(n: usize, ab: usize) -> MmConfig {
    // Generous watchdog: CI machines can be slow to spawn 4 processes.
    MmConfig::real(n, ab).with_watchdog(Duration::from_secs(60))
}

/// The `navp-pe` daemon this crate ships, resolved by Cargo.
fn net_opts() -> NetOpts {
    NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    }
}

/// Total of a counter family across all label sets, as u64.
fn total(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.total(name) as u64
}

#[test]
fn metrics_off_runs_carry_no_snapshot_and_identical_product() {
    let grid = Grid2D::new(2, 2).expect("grid");
    let plain = run_navp_threads(NavpStage::Pipe2D, &cfg(16, 2), grid).expect("plain");
    assert!(plain.metrics.is_none(), "metrics must be off by default");
    let metered = run_navp_threads(
        NavpStage::Pipe2D,
        &cfg(16, 2).with_metrics(true),
        grid,
    )
    .expect("metered");
    let snap = metered.metrics.expect("metered run returns a snapshot");
    assert!(!snap.samples.is_empty());
    // Metering must not perturb the computation.
    let (a, b) = (plain.c.expect("plain c"), metered.c.expect("metered c"));
    assert_eq!(
        a.max_abs_diff(&b),
        0.0,
        "metered product must be bitwise identical"
    );
    assert_eq!(metered.verified, Some(true));
}

#[test]
fn thread_counters_reconcile_with_run_accounting() {
    // Pipelined 2-D: consumers genuinely park on events, so the wait
    // counters are exercised (phase-shifted stages never park — that
    // is their whole point).
    let grid = Grid2D::new(2, 2).expect("grid");
    let out = run_navp_threads(NavpStage::Pipe2D, &cfg(16, 2).with_metrics(true), grid)
        .expect("metered run");
    let snap = out.metrics.expect("snapshot");
    assert_eq!(
        total(&snap, "navp_hops_total"),
        out.transfers,
        "hop counter disagrees with WallReport.hops"
    );
    assert_eq!(
        total(&snap, "navp_hop_bytes_total"),
        out.bytes,
        "hop-byte counter disagrees with WallReport.hop_bytes"
    );
    // The payload histogram saw exactly one observation per hop.
    assert_eq!(total(&snap, "navp_hop_payload_bytes_count"), out.transfers);
    // Every PE executed steps; messengers were injected somewhere
    // (which PEs inject is the stage's business — hops spread the work).
    for pe in 0..4 {
        let l = format!("{pe}");
        let labels: &[(&str, &str)] = &[("pe", l.as_str())];
        assert!(
            snap.value("navp_steps_total", labels).unwrap_or(0.0) > 0.0,
            "PE {pe} recorded no steps"
        );
    }
    assert!(total(&snap, "navp_injections_total") > 0);
    // Waits park, signals wake: a phase-shifted pipeline has both.
    assert!(total(&snap, "navp_events_waited_total") > 0);
    assert!(total(&snap, "navp_events_signaled_total") > 0);
}

#[test]
fn metered_traced_net_run_reconciles_counters_with_trace_spans() {
    let grid = Grid2D::new(2, 2).expect("grid");
    let out = run_navp_net(
        NavpStage::Pipe2D,
        &cfg(16, 2).with_trace(true).with_metrics(true),
        grid,
        &net_opts(),
    )
    .expect("metered traced net run");
    assert_eq!(out.verified, Some(true));
    let snap = out.metrics.expect("cluster snapshot merged over the mesh");

    // The merged hop counter agrees with the driver's own tally and
    // with the number of transfer spans in the trace.
    assert_eq!(total(&snap, "navp_hops_total"), out.transfers);
    let trace = out.trace.expect("trace shipped back");
    let transfer_spans = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, navp_repro::navp_trace::TraceKind::Transfer { .. }))
        .count() as u64;
    assert_eq!(
        total(&snap, "navp_hops_total"),
        transfer_spans,
        "hop counter disagrees with trace transfer spans"
    );
    // Tracing was on and nothing was dropped on this tiny run.
    assert_eq!(total(&snap, "navp_trace_dropped_events_total"), 0);
    assert_eq!(out.trace_report.expect("report").dropped, 0);

    // Real wire traffic was metered on both directions; four daemons
    // plus the driver mean decode can exceed the driver-visible bytes,
    // but neither side can be zero.
    assert!(total(&snap, "navp_frame_encode_bytes_total") > 0);
    assert!(total(&snap, "navp_frame_decode_bytes_total") > 0);
    // All four PEs contributed per-PE series to the merged snapshot.
    for pe in 0..4 {
        let l = format!("{pe}");
        let labels: &[(&str, &str)] = &[("pe", l.as_str())];
        assert!(
            snap.value("navp_steps_total", labels).unwrap_or(0.0) > 0.0,
            "PE {pe} missing from merged snapshot"
        );
    }
}

#[test]
fn registry_exposition_round_trips_through_the_validator() {
    let grid = Grid2D::line(4).expect("grid");
    let metrics = RunMetrics::new(4);
    let out = run_navp_threads_metered(
        NavpStage::Dsc1D,
        &cfg(16, 2),
        grid,
        std::sync::Arc::clone(&metrics),
    )
    .expect("metered run");
    assert_eq!(out.verified, Some(true));
    let text = metrics.registry.render();
    let sum = validate_prometheus(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    assert!(sum.families >= 10, "expected the full metric set: {sum:?}");
    assert!(sum.samples > sum.families);
    // The rendered text and the snapshot agree on a spot value.
    let snap = out.metrics.expect("snapshot");
    let hops = total(&snap, "navp_hops_total");
    assert!(hops > 0);
    assert!(
        text.contains("# TYPE navp_hops_total counter"),
        "missing counter header:\n{text}"
    );
    assert!(
        text.contains("# TYPE navp_park_wait_ns histogram"),
        "missing histogram header:\n{text}"
    );
}

/// Minimal HTTP/1.1 GET against a local endpoint; returns
/// (status-line, body).
fn http_get(addr: &str, path: &str) -> std::io::Result<(String, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: navp\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Reserve a distinct localhost port per slot. Binding port 0 and
/// releasing leaves a tiny race, but the kernel cycles ephemeral ports
/// so an immediate rebind collision is vanishingly unlikely.
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = l.local_addr().expect("addr").to_string();
    drop(l);
    addr
}

#[test]
fn pe_daemon_serves_live_metrics_and_health_endpoints() {
    let pe_bin = env!("CARGO_BIN_EXE_navp-pe");
    // Two externally-managed daemons, each with its own /metrics.
    let listen: Vec<String> = (0..2).map(|_| free_addr()).collect();
    let metrics: Vec<String> = (0..2).map(|_| free_addr()).collect();
    let mut children: Vec<std::process::Child> = Vec::new();
    for (l, m) in listen.iter().zip(&metrics) {
        children.push(
            std::process::Command::new(pe_bin)
                .args(["--listen", l, "--metrics-addr", m])
                .stdin(std::process::Stdio::null())
                .spawn()
                .expect("spawn navp-pe"),
        );
    }
    let kill_all = |mut children: Vec<std::process::Child>| {
        for c in &mut children {
            let _ = c.kill();
            let _ = c.wait();
        }
    };

    // Both health endpoints are up before any run is assigned (the
    // observability server starts at process birth, not at Assign).
    let deadline = Instant::now() + Duration::from_secs(20);
    for m in &metrics {
        let health = loop {
            match http_get(m, "/healthz") {
                Ok((status, body)) if status.contains("200") => break body,
                _ if Instant::now() > deadline => {
                    kill_all(children);
                    panic!("healthz never came up on {m}");
                }
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        assert!(health.contains("\"pe\""), "not health JSON: {health}");
    }

    // Poll /metrics concurrently so at least some scrapes land while
    // the run is in flight.
    let scrape_addr = metrics[0].clone();
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let poller = std::thread::spawn(move || {
        let mut ok = 0usize;
        while stop_rx.try_recv().is_err() {
            if let Ok((status, body)) = http_get(&scrape_addr, "/metrics") {
                if status.contains("200") && validate_prometheus(&body).is_ok() {
                    ok += 1;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        ok
    });

    // Join the daemons and run a 2-PE stage. The daemons meter because
    // --metrics-addr is set, whatever the driver-side config says.
    let opts = NetOpts {
        join: listen.clone(),
        ..NetOpts::default()
    };
    // The driver sockets bind moments after /healthz comes up; retry a
    // few times to close that window.
    let mut out = Err(navp_repro::navp_mm::runner::RunnerError::Topology(
        "never ran".into(),
    ));
    for attempt in 0..5 {
        out = run_navp_net(
            NavpStage::Dsc1D,
            &cfg(16, 2),
            Grid2D::line(2).expect("grid"),
            &opts,
        );
        if out.is_ok() {
            break;
        }
        eprintln!("join attempt {attempt} failed, retrying");
        std::thread::sleep(Duration::from_millis(200));
    }
    let _ = stop_tx.send(());
    let scrapes_ok = poller.join().expect("poller");
    let out = match out {
        Ok(out) => out,
        Err(e) => {
            kill_all(children);
            panic!("joined net run failed: {e}");
        }
    };
    assert_eq!(out.verified, Some(true));
    assert!(scrapes_ok > 0, "no successful live /metrics scrape");

    // After the run the daemon is still alive and its counters show
    // the work: non-zero hops on at least one PE's registry.
    let mut hops = 0u64;
    let mut healths = Vec::new();
    for m in &metrics {
        let (status, body) = match http_get(m, "/metrics") {
            Ok(r) => r,
            Err(e) => {
                kill_all(children);
                panic!("post-run scrape of {m} failed: {e}");
            }
        };
        assert!(status.contains("200"), "{status}");
        let sum = validate_prometheus(&body)
            .unwrap_or_else(|e| panic!("daemon serves invalid exposition: {e}"));
        assert!(sum.samples > 0);
        for line in body.lines() {
            if line.starts_with("navp_hops_total") {
                if let Some(v) = line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()) {
                    hops += v as u64;
                }
            }
        }
        let (hstatus, hbody) = http_get(m, "/healthz").expect("healthz");
        assert!(hstatus.contains("200"), "{hstatus}");
        healths.push(hbody);
    }
    assert!(hops > 0, "daemons served zero navp_hops_total after a run");
    for h in &healths {
        assert!(
            h.contains("\"peers_connected\"") && h.contains("\"last_frame_age_s\""),
            "health JSON missing fields: {h}"
        );
    }
    // Unknown paths 404, wrong methods 405.
    let (status, _) = http_get(&metrics[0], "/nope").expect("404 path");
    assert!(status.contains("404"), "{status}");
    kill_all(children);
}
