//! Wall-clock tracing acceptance: traced runs of the *real* executors
//! (threads, net) must record a well-formed span timeline, derive a
//! sane [`TraceReport`], export valid Chrome/Perfetto JSON — and must
//! not perturb the computation (products stay bitwise identical, and
//! an untraced run carries no trace at all).

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::runner::{
    run_navp_net, run_navp_sim, run_navp_threads, NavpStage, NetOpts, RunOutput,
};
use navp_repro::navp_mm::MmConfig;
use navp_repro::navp_sim::CostModel;
use navp_repro::navp_trace::{validate_chrome_json, ChromeTrace, Trace, TraceKind};
use std::time::Duration;

fn cfg(n: usize, ab: usize) -> MmConfig {
    // Generous watchdog: CI machines can be slow to spawn 4 processes.
    MmConfig::real(n, ab).with_watchdog(Duration::from_secs(60))
}

/// The `navp-pe` daemon this crate ships, resolved by Cargo.
fn net_opts() -> NetOpts {
    NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    }
}

fn traced_threads(stage: NavpStage, grid: Grid2D) -> RunOutput {
    run_navp_threads(stage, &cfg(16, 2).with_trace(true), grid)
        .unwrap_or_else(|e| panic!("{} traced threads: {e}", stage.name()))
}

/// Inter-PE transfer spans (self-hops excluded).
fn inter_pe_transfers(trace: &Trace) -> usize {
    trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Transfer { from, to, .. } if from != to))
        .count()
}

#[test]
fn untraced_runs_carry_no_trace() {
    let grid = Grid2D::line(4).expect("grid");
    let out = run_navp_threads(NavpStage::Dsc1D, &cfg(16, 2), grid).expect("untraced run");
    assert!(out.trace.is_none(), "tracing must be off by default");
    assert!(out.trace_report.is_none());
    assert_eq!(out.verified, Some(true));
}

#[test]
fn tracing_does_not_perturb_the_product() {
    let grid = Grid2D::new(2, 2).expect("grid");
    let plain = run_navp_threads(NavpStage::Pipe2D, &cfg(16, 2), grid).expect("untraced");
    let traced = traced_threads(NavpStage::Pipe2D, grid);
    let (a, b) = (plain.c.expect("untraced c"), traced.c.expect("traced c"));
    assert_eq!(
        a.max_abs_diff(&b),
        0.0,
        "traced product must be bitwise identical"
    );
    assert_eq!(traced.verified, Some(true));
}

#[test]
fn threads_exec_spans_are_monotone_and_cover_every_pe() {
    let out = traced_threads(NavpStage::Phase1D, Grid2D::line(4).expect("grid"));
    let trace = out.trace.expect("trace requested");
    // Every span is well-formed (merged timeline starts at 0, ends
    // never precede starts).
    for e in trace.events() {
        assert!(e.end >= e.start, "span ends before it starts: {e:?}");
    }
    // Exec spans on one PE come from one worker thread: in merged
    // (start-sorted) order they must not overlap.
    let mut last_end = [0u64; 4];
    let mut execs = [0usize; 4];
    for e in trace.events() {
        if let TraceKind::Exec { pe } = e.kind {
            assert!(pe < 4, "exec on unknown PE {pe}");
            assert!(
                e.start.0 >= last_end[pe],
                "overlapping exec spans on PE {pe}: start {} < previous end {}",
                e.start.0,
                last_end[pe]
            );
            last_end[pe] = e.end.0;
            execs[pe] += 1;
        }
    }
    assert!(
        execs.iter().all(|&n| n > 0),
        "every PE must execute: {execs:?}"
    );
    assert!(inter_pe_transfers(&trace) > 0, "no hops recorded");

    let report = out.trace_report.expect("report derived");
    assert_eq!(report.pes, 4);
    assert_eq!(report.dropped, 0, "16x16 run must fit the ring buffers");
    assert!(report.makespan > 0.0);
    assert!(
        report.pipeline_fill.is_some(),
        "all PEs ran, so fill time is defined"
    );
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    assert!(report.hop_latency.count > 0);
    assert!(report.hop_latency.p50 <= report.hop_latency.max);
    assert!(!report.itineraries.is_empty());
}

#[test]
fn sim_and_threads_trace_shapes_agree_on_dsc1d() {
    let grid = Grid2D::line(4).expect("grid");
    let config = cfg(16, 2);
    let sim = run_navp_sim(
        NavpStage::Dsc1D,
        &config,
        grid,
        &CostModel::paper_cluster(),
        true,
    )
    .expect("sim run");
    let thr = traced_threads(NavpStage::Dsc1D, grid);
    let (st, tt) = (sim.trace.expect("sim trace"), thr.trace.expect("thr trace"));
    // Same algorithm, same grid: identical hop structure and bytes on
    // the wire, whichever executor ran it.
    assert_eq!(
        inter_pe_transfers(&st),
        inter_pe_transfers(&tt),
        "sim and threads disagree on inter-PE hop count"
    );
    assert_eq!(
        st.bytes_transferred(),
        tt.bytes_transferred(),
        "sim and threads disagree on bytes moved"
    );
    // Both cover the same PEs with compute.
    let pes_with_exec = |t: &Trace| {
        let mut seen = [false; 4];
        for e in t.events() {
            if let TraceKind::Exec { pe } = e.kind {
                seen[pe] = true;
            }
        }
        seen
    };
    assert_eq!(pes_with_exec(&st), pes_with_exec(&tt));
}

#[test]
fn chrome_export_roundtrips_through_the_validator() {
    let out = traced_threads(NavpStage::Pipe1D, Grid2D::line(4).expect("grid"));
    let trace = out.trace.expect("trace requested");
    let doc = trace.to_chrome_json();
    let sum = validate_chrome_json(&doc).unwrap_or_else(|e| panic!("invalid export: {e}"));
    assert_eq!(sum.events, trace.events().len());
    assert_eq!(sum.pids, vec![0, 1, 2, 3], "every PE appears in the export");
    assert!(sum.execs > 0, "no exec spans exported");
    assert!(sum.transfers > 0, "no transfer spans exported");
}

#[test]
fn traced_net_run_covers_every_pe() {
    let grid = Grid2D::new(2, 2).expect("grid");
    let out = run_navp_net(
        NavpStage::Pipe2D,
        &cfg(16, 2).with_trace(true),
        grid,
        &net_opts(),
    )
    .expect("traced net run");
    assert_eq!(out.verified, Some(true), "tracing must not corrupt the product");
    let trace = out.trace.expect("net trace shipped back");

    // The merged timeline covers all four processes with compute and
    // real wire transfers, and blocking waits were observed somewhere.
    let mut exec_on = [false; 4];
    let (mut transfers, mut blocks) = (0usize, 0usize);
    for e in trace.events() {
        match e.kind {
            TraceKind::Exec { pe } => exec_on[pe] = true,
            TraceKind::Transfer { from, to, .. } if from != to => transfers += 1,
            TraceKind::Block { .. } => blocks += 1,
            _ => {}
        }
    }
    assert_eq!(exec_on, [true; 4], "some PE recorded no exec spans");
    assert!(transfers > 0, "no inter-PE transfers recorded");
    assert!(blocks > 0, "pipelined 2-D run must record event waits");

    // Clock-offset correction kept the merged timeline sane.
    for e in trace.events() {
        assert!(e.end >= e.start, "span ends before it starts: {e:?}");
    }

    let report = out.trace_report.expect("report derived");
    assert_eq!(report.pes, 4);
    assert!(report.hop_latency.count > 0);
    assert!(report.pipeline_fill.is_some());

    // And the export is Perfetto-openable, covering all four PEs.
    let sum = validate_chrome_json(&trace.to_chrome_json())
        .unwrap_or_else(|e| panic!("invalid export: {e}"));
    assert_eq!(sum.pids, vec![0, 1, 2, 3]);
    assert!(sum.execs > 0 && sum.transfers > 0 && sum.blocks > 0);

    // The spacetime renderer accepts a wall-clock trace unchanged.
    let art = trace.render_spacetime(4, 12);
    assert!(art.lines().count() >= 12, "spacetime diagram too short:\n{art}");
}
