//! Cross-crate correctness: every implementation, on both executors,
//! over a range of problem shapes, must reproduce the sequential
//! product exactly (same block-kernel summation order ⇒ bitwise-close
//! results; we allow 1e-9 absolute slack).

use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::config::MmConfig;
use navp_repro::navp_mm::gentleman::{GentlemanOpts, Scheduling, Stagger};
use navp_repro::navp_mm::runner::{
    run_mp_sim, run_mp_threads, run_navp_sim, run_navp_threads, run_seq_sim, MpAlg, NavpStage,
};
use navp_repro::navp_sim::CostModel;

fn grids_for(stage: NavpStage) -> Vec<Grid2D> {
    if stage.is_1d() {
        vec![
            Grid2D::line(1).expect("grid"),
            Grid2D::line(2).expect("grid"),
            Grid2D::line(3).expect("grid"),
            Grid2D::line(6).expect("grid"),
        ]
    } else {
        vec![
            Grid2D::new(1, 1).expect("grid"),
            Grid2D::new(2, 2).expect("grid"),
            Grid2D::new(3, 3).expect("grid"),
            Grid2D::new(2, 3).expect("grid"),
            Grid2D::new(3, 2).expect("grid"),
        ]
    }
}

#[test]
fn every_navp_stage_on_sim_executor() {
    for (n, ab) in [(12, 2), (24, 4), (18, 3)] {
        let cfg = MmConfig::real(n, ab);
        for stage in NavpStage::ALL {
            for grid in grids_for(stage) {
                let out =
                    run_navp_sim(stage, &cfg, grid, &CostModel::paper_cluster(), false)
                        .unwrap_or_else(|e| {
                            panic!("{} n={n} ab={ab} {grid:?}: {e}", stage.name())
                        });
                assert_eq!(
                    out.verified,
                    Some(true),
                    "{} wrong product at n={n} ab={ab} grid={grid:?}",
                    stage.name()
                );
            }
        }
    }
}

#[test]
fn every_navp_stage_on_thread_executor() {
    let cfg = MmConfig::real(24, 4);
    for stage in NavpStage::ALL {
        for grid in grids_for(stage) {
            let out = run_navp_threads(stage, &cfg, grid)
                .unwrap_or_else(|e| panic!("{} {grid:?}: {e}", stage.name()));
            assert_eq!(
                out.verified,
                Some(true),
                "{} wrong product on threads, grid={grid:?}",
                stage.name()
            );
        }
    }
}

#[test]
fn gentleman_all_variants_both_executors() {
    let cfg = MmConfig::real(24, 4);
    let grid = Grid2D::new(2, 2).expect("grid");
    for stagger in [Stagger::SingleStep, Stagger::Stepwise] {
        for scheduling in [Scheduling::Strict, Scheduling::Overlapped] {
            let opts = GentlemanOpts {
                stagger,
                scheduling,
                ..Default::default()
            };
            let alg = MpAlg::Gentleman(opts);
            let sim = run_mp_sim(alg, &cfg, grid, &CostModel::paper_cluster())
                .unwrap_or_else(|e| panic!("{stagger:?}/{scheduling:?}: {e}"));
            assert_eq!(sim.verified, Some(true), "{stagger:?}/{scheduling:?} sim");
            let wall = run_mp_threads(alg, &cfg, grid)
                .unwrap_or_else(|e| panic!("{stagger:?}/{scheduling:?} threads: {e}"));
            assert_eq!(wall.verified, Some(true), "{stagger:?}/{scheduling:?} threads");
        }
    }
}

#[test]
fn gentleman_on_3x3_and_single_rank() {
    for (n, ab, p) in [(18, 3, 3), (12, 2, 1)] {
        let cfg = MmConfig::real(n, ab);
        let grid = Grid2D::new(p, p).expect("grid");
        let out = run_mp_sim(
            MpAlg::Gentleman(GentlemanOpts::default()),
            &cfg,
            grid,
            &CostModel::paper_cluster(),
        )
        .unwrap_or_else(|e| panic!("{p}x{p}: {e}"));
        assert_eq!(out.verified, Some(true), "{p}x{p}");
    }
}

#[test]
fn summa_rectangular_grids() {
    let cfg = MmConfig::real(24, 4); // nb = 6
    for (r, c) in [(1, 2), (2, 1), (1, 3), (2, 3), (3, 2), (6, 1)] {
        let grid = Grid2D::new(r, c).expect("grid");
        let out = run_mp_sim(MpAlg::Summa, &cfg, grid, &CostModel::paper_cluster())
            .unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
        assert_eq!(out.verified, Some(true), "{r}x{c}");
    }
}

#[test]
fn sequential_oracle_is_self_consistent() {
    let cfg = MmConfig::real(24, 4);
    let out = run_seq_sim(&cfg, &CostModel::paper_cluster()).expect("seq");
    assert_eq!(out.verified, Some(true));
    // And against the dense (non-blocked) kernel.
    let (a, b) = cfg.operands().expect("operands");
    let dense = a
        .to_matrix()
        .expect("real")
        .multiply(&b.to_matrix().expect("real"))
        .expect("shapes");
    assert!(dense.max_abs_diff(&out.c.expect("real")) < 1e-9);
}

#[test]
fn block_order_one_works() {
    // The paper's fine-grain description: every "block" is one entry.
    let cfg = MmConfig::real(6, 1);
    let grid = Grid2D::new(2, 2).expect("grid");
    for stage in [NavpStage::Pipe2D, NavpStage::Dpc2D] {
        let out = run_navp_sim(stage, &cfg, grid, &CostModel::paper_cluster(), false)
            .unwrap_or_else(|e| panic!("{}: {e}", stage.name()));
        assert_eq!(out.verified, Some(true), "{}", stage.name());
    }
}
