//! Transfer accounting: the simulator's trace, its aggregate report,
//! and the networked executor's per-PE counters must all agree on how
//! many bytes the messengers carried.
//!
//! On the simulator every inter-PE hop appends one
//! `TraceKind::Transfer` record of `payload_bytes() + HOP_STATE_BYTES`
//! bytes, so for each stage:
//!
//! * Σ Transfer bytes  == the report's `bytes`,
//! * Transfer count    == the report's `transfers`,
//! * Σ Transfer bytes − count · HOP_STATE_BYTES == Σ payload at hop.
//!
//! The last quantity is re-measured *independently* by the TCP
//! executor (each PE sums `payload_bytes()` as it serializes a hop),
//! so comparing the two catches any executor that double-counts,
//! drops, or mis-sizes a hop.

use navp_repro::navp::sim_exec::HOP_STATE_BYTES;
use navp_repro::navp_matrix::Grid2D;
use navp_repro::navp_mm::runner::{run_navp_net, run_navp_sim, NavpStage, NetOpts};
use navp_repro::navp_mm::MmConfig;
use navp_repro::navp_sim::{CostModel, TraceKind};
use std::time::Duration;

fn grid_for(stage: NavpStage) -> Grid2D {
    if stage.is_1d() {
        Grid2D::line(4).expect("grid")
    } else {
        Grid2D::new(2, 2).expect("grid")
    }
}

#[test]
fn trace_transfer_totals_match_the_report_for_all_six_stages() {
    let cfg = MmConfig::real(16, 2);
    for stage in NavpStage::ALL {
        let grid = grid_for(stage);
        let out = run_navp_sim(stage, &cfg, grid, &CostModel::paper_cluster(), true)
            .unwrap_or_else(|e| panic!("{}: {e}", stage.name()));
        let trace = out.trace.expect("trace requested");

        let mut sum = 0u64;
        let mut count = 0u64;
        for ev in trace.events() {
            if let TraceKind::Transfer { from, to, bytes } = ev.kind {
                if from != to {
                    sum += bytes;
                    count += 1;
                    assert!(
                        bytes >= HOP_STATE_BYTES,
                        "{}: a hop smaller than its own control state ({bytes} B)",
                        stage.name()
                    );
                }
            }
        }
        assert_eq!(
            sum,
            out.bytes,
            "{}: trace byte total disagrees with the report",
            stage.name()
        );
        assert_eq!(
            count,
            out.transfers,
            "{}: trace transfer count disagrees with the report",
            stage.name()
        );
        assert_eq!(sum, trace.bytes_transferred(), "{}", stage.name());
        assert_eq!(count as usize, trace.transfer_count(), "{}", stage.name());
        assert!(count > 0, "{}: a 4-PE run must hop", stage.name());
    }
}

#[test]
fn sim_trace_payloads_equal_net_executor_payload_counters() {
    // Same stage, same data, two executors with completely separate
    // accounting code: the trace-derived payload sum (Transfer bytes
    // minus the per-hop control-state constant) must equal what the
    // PE processes measured with `Messenger::payload_bytes()` at each
    // serialization point.
    let cfg = MmConfig::real(16, 2).with_watchdog(Duration::from_secs(60));
    let opts = NetOpts {
        pe_bin: Some(env!("CARGO_BIN_EXE_navp-pe").into()),
        ..NetOpts::default()
    };
    for stage in [NavpStage::Dsc1D, NavpStage::Phase1D, NavpStage::Pipe2D] {
        let grid = grid_for(stage);
        let sim = run_navp_sim(stage, &cfg, grid, &CostModel::paper_cluster(), true)
            .unwrap_or_else(|e| panic!("{} sim: {e}", stage.name()));
        let net = run_navp_net(stage, &cfg, grid, &opts)
            .unwrap_or_else(|e| panic!("{} net: {e}", stage.name()));
        let trace = sim.trace.expect("trace requested");
        let sim_payload = trace.bytes_transferred() - HOP_STATE_BYTES * sim.transfers;
        let net_payload: u64 = net
            .per_pe_net
            .expect("per-PE stats")
            .iter()
            .map(|s| s.hop_payload_bytes)
            .sum();
        assert_eq!(
            sim.transfers,
            net.transfers,
            "{}: executors disagree on hop count",
            stage.name()
        );
        assert_eq!(
            sim_payload,
            net_payload,
            "{}: trace payload accounting disagrees with the wire",
            stage.name()
        );
    }
}
