/root/repo/target/release/examples/spacetime-9d7b0bbfc019cdc9.d: examples/spacetime.rs

/root/repo/target/release/examples/spacetime-9d7b0bbfc019cdc9: examples/spacetime.rs

examples/spacetime.rs:
