/root/repo/target/release/examples/modern_cluster-05d27c92fa33b7ed.d: examples/modern_cluster.rs

/root/repo/target/release/examples/modern_cluster-05d27c92fa33b7ed: examples/modern_cluster.rs

examples/modern_cluster.rs:
