/root/repo/target/release/examples/crash_recovery-0ca9ae8efa980006.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-0ca9ae8efa980006: examples/crash_recovery.rs

examples/crash_recovery.rs:
