/root/repo/target/release/examples/crash_recovery-884599a663e73bbb.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-884599a663e73bbb: examples/crash_recovery.rs

examples/crash_recovery.rs:
