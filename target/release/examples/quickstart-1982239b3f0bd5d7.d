/root/repo/target/release/examples/quickstart-1982239b3f0bd5d7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1982239b3f0bd5d7: examples/quickstart.rs

examples/quickstart.rs:
