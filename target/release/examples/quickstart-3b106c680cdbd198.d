/root/repo/target/release/examples/quickstart-3b106c680cdbd198.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3b106c680cdbd198: examples/quickstart.rs

examples/quickstart.rs:
