/root/repo/target/release/examples/incremental_journey-aaa612a080a8a0b4.d: examples/incremental_journey.rs

/root/repo/target/release/examples/incremental_journey-aaa612a080a8a0b4: examples/incremental_journey.rs

examples/incremental_journey.rs:
