/root/repo/target/release/examples/out_of_core-c7bd9a1487331e48.d: examples/out_of_core.rs

/root/repo/target/release/examples/out_of_core-c7bd9a1487331e48: examples/out_of_core.rs

examples/out_of_core.rs:
