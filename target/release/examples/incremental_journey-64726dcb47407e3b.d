/root/repo/target/release/examples/incremental_journey-64726dcb47407e3b.d: examples/incremental_journey.rs

/root/repo/target/release/examples/incremental_journey-64726dcb47407e3b: examples/incremental_journey.rs

examples/incremental_journey.rs:
