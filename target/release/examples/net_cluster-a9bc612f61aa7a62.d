/root/repo/target/release/examples/net_cluster-a9bc612f61aa7a62.d: examples/net_cluster.rs

/root/repo/target/release/examples/net_cluster-a9bc612f61aa7a62: examples/net_cluster.rs

examples/net_cluster.rs:
