/root/repo/target/release/examples/transformations-0226d98f80c89234.d: examples/transformations.rs

/root/repo/target/release/examples/transformations-0226d98f80c89234: examples/transformations.rs

examples/transformations.rs:
