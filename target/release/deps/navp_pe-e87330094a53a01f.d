/root/repo/target/release/deps/navp_pe-e87330094a53a01f.d: src/bin/navp-pe.rs

/root/repo/target/release/deps/navp_pe-e87330094a53a01f: src/bin/navp-pe.rs

src/bin/navp-pe.rs:
