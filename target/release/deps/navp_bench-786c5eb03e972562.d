/root/repo/target/release/deps/navp_bench-786c5eb03e972562.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libnavp_bench-786c5eb03e972562.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libnavp_bench-786c5eb03e972562.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/layout.rs:
crates/bench/src/paper.rs:
crates/bench/src/timing.rs:
