/root/repo/target/release/deps/navp_repro-ab4f18d98d5b6e14.d: src/lib.rs

/root/repo/target/release/deps/libnavp_repro-ab4f18d98d5b6e14.rlib: src/lib.rs

/root/repo/target/release/deps/libnavp_repro-ab4f18d98d5b6e14.rmeta: src/lib.rs

src/lib.rs:
