/root/repo/target/release/deps/netloop-f6cda8a6767667fc.d: crates/bench/src/bin/netloop.rs

/root/repo/target/release/deps/netloop-f6cda8a6767667fc: crates/bench/src/bin/netloop.rs

crates/bench/src/bin/netloop.rs:
