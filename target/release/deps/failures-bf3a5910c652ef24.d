/root/repo/target/release/deps/failures-bf3a5910c652ef24.d: tests/failures.rs

/root/repo/target/release/deps/failures-bf3a5910c652ef24: tests/failures.rs

tests/failures.rs:
