/root/repo/target/release/deps/navp_net-53cdd1d9b4e92754.d: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs

/root/repo/target/release/deps/libnavp_net-53cdd1d9b4e92754.rlib: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs

/root/repo/target/release/deps/libnavp_net-53cdd1d9b4e92754.rmeta: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs

crates/net/src/lib.rs:
crates/net/src/cluster.rs:
crates/net/src/codec.rs:
crates/net/src/exec.rs:
crates/net/src/frame.rs:
crates/net/src/pe.rs:
crates/net/src/registry.rs:
crates/net/src/testing.rs:
