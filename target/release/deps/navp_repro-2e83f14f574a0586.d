/root/repo/target/release/deps/navp_repro-2e83f14f574a0586.d: src/lib.rs

/root/repo/target/release/deps/libnavp_repro-2e83f14f574a0586.rlib: src/lib.rs

/root/repo/target/release/deps/libnavp_repro-2e83f14f574a0586.rmeta: src/lib.rs

src/lib.rs:
