/root/repo/target/release/deps/navp_matrix-5b3c3c582bfa3804.d: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

/root/repo/target/release/deps/libnavp_matrix-5b3c3c582bfa3804.rlib: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

/root/repo/target/release/deps/libnavp_matrix-5b3c3c582bfa3804.rmeta: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

crates/matrix/src/lib.rs:
crates/matrix/src/block.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/dist.rs:
crates/matrix/src/error.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/kernel.rs:
crates/matrix/src/stagger.rs:
