/root/repo/target/release/deps/properties-bc7cfba5f8ec9263.d: tests/properties.rs

/root/repo/target/release/deps/properties-bc7cfba5f8ec9263: tests/properties.rs

tests/properties.rs:
