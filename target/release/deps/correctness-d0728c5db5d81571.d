/root/repo/target/release/deps/correctness-d0728c5db5d81571.d: tests/correctness.rs

/root/repo/target/release/deps/correctness-d0728c5db5d81571: tests/correctness.rs

tests/correctness.rs:
