/root/repo/target/release/deps/navp_mp-b77e1bdc32b763b2.d: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

/root/repo/target/release/deps/libnavp_mp-b77e1bdc32b763b2.rlib: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

/root/repo/target/release/deps/libnavp_mp-b77e1bdc32b763b2.rmeta: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

crates/mp/src/lib.rs:
crates/mp/src/data.rs:
crates/mp/src/error.rs:
crates/mp/src/process.rs:
crates/mp/src/sim_exec.rs:
crates/mp/src/thread_exec.rs:
