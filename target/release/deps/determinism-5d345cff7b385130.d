/root/repo/target/release/deps/determinism-5d345cff7b385130.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-5d345cff7b385130: tests/determinism.rs

tests/determinism.rs:
