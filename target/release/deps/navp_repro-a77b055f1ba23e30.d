/root/repo/target/release/deps/navp_repro-a77b055f1ba23e30.d: src/lib.rs

/root/repo/target/release/deps/navp_repro-a77b055f1ba23e30: src/lib.rs

src/lib.rs:
