/root/repo/target/release/deps/navp_sim-2e6289147c0ce3f8.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libnavp_sim-2e6289147c0ce3f8.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libnavp_sim-2e6289147c0ce3f8.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/key.rs:
crates/sim/src/memory.rs:
crates/sim/src/pe.rs:
crates/sim/src/queue.rs:
crates/sim/src/store.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
