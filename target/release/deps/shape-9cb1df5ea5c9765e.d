/root/repo/target/release/deps/shape-9cb1df5ea5c9765e.d: tests/shape.rs

/root/repo/target/release/deps/shape-9cb1df5ea5c9765e: tests/shape.rs

tests/shape.rs:
