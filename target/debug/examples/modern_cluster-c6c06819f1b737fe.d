/root/repo/target/debug/examples/modern_cluster-c6c06819f1b737fe.d: examples/modern_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libmodern_cluster-c6c06819f1b737fe.rmeta: examples/modern_cluster.rs Cargo.toml

examples/modern_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
