/root/repo/target/debug/examples/spacetime-6f5d28c8d379df70.d: examples/spacetime.rs Cargo.toml

/root/repo/target/debug/examples/libspacetime-6f5d28c8d379df70.rmeta: examples/spacetime.rs Cargo.toml

examples/spacetime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
