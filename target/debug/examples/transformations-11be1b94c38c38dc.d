/root/repo/target/debug/examples/transformations-11be1b94c38c38dc.d: examples/transformations.rs Cargo.toml

/root/repo/target/debug/examples/libtransformations-11be1b94c38c38dc.rmeta: examples/transformations.rs Cargo.toml

examples/transformations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
