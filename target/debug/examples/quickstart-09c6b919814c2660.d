/root/repo/target/debug/examples/quickstart-09c6b919814c2660.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-09c6b919814c2660: examples/quickstart.rs

examples/quickstart.rs:
