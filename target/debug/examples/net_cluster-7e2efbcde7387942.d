/root/repo/target/debug/examples/net_cluster-7e2efbcde7387942.d: examples/net_cluster.rs

/root/repo/target/debug/examples/net_cluster-7e2efbcde7387942: examples/net_cluster.rs

examples/net_cluster.rs:
