/root/repo/target/debug/examples/quickstart-98e609adbd316812.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-98e609adbd316812.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
