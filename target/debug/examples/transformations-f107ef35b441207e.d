/root/repo/target/debug/examples/transformations-f107ef35b441207e.d: examples/transformations.rs Cargo.toml

/root/repo/target/debug/examples/libtransformations-f107ef35b441207e.rmeta: examples/transformations.rs Cargo.toml

examples/transformations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
