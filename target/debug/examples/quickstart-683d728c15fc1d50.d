/root/repo/target/debug/examples/quickstart-683d728c15fc1d50.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-683d728c15fc1d50: examples/quickstart.rs

examples/quickstart.rs:
