/root/repo/target/debug/examples/spacetime-87a36642e7aff648.d: examples/spacetime.rs

/root/repo/target/debug/examples/spacetime-87a36642e7aff648: examples/spacetime.rs

examples/spacetime.rs:
