/root/repo/target/debug/examples/incremental_journey-eeeec13a0eff71bb.d: examples/incremental_journey.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_journey-eeeec13a0eff71bb.rmeta: examples/incremental_journey.rs Cargo.toml

examples/incremental_journey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
