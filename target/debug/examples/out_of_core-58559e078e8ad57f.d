/root/repo/target/debug/examples/out_of_core-58559e078e8ad57f.d: examples/out_of_core.rs Cargo.toml

/root/repo/target/debug/examples/libout_of_core-58559e078e8ad57f.rmeta: examples/out_of_core.rs Cargo.toml

examples/out_of_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
