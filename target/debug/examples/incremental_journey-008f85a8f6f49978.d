/root/repo/target/debug/examples/incremental_journey-008f85a8f6f49978.d: examples/incremental_journey.rs

/root/repo/target/debug/examples/incremental_journey-008f85a8f6f49978: examples/incremental_journey.rs

examples/incremental_journey.rs:
