/root/repo/target/debug/examples/incremental_journey-4931094c1766cf0b.d: examples/incremental_journey.rs

/root/repo/target/debug/examples/incremental_journey-4931094c1766cf0b: examples/incremental_journey.rs

examples/incremental_journey.rs:
