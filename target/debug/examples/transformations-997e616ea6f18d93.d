/root/repo/target/debug/examples/transformations-997e616ea6f18d93.d: examples/transformations.rs

/root/repo/target/debug/examples/transformations-997e616ea6f18d93: examples/transformations.rs

examples/transformations.rs:
