/root/repo/target/debug/examples/modern_cluster-4032033f1f8370c3.d: examples/modern_cluster.rs

/root/repo/target/debug/examples/modern_cluster-4032033f1f8370c3: examples/modern_cluster.rs

examples/modern_cluster.rs:
