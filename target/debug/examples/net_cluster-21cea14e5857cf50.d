/root/repo/target/debug/examples/net_cluster-21cea14e5857cf50.d: examples/net_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libnet_cluster-21cea14e5857cf50.rmeta: examples/net_cluster.rs Cargo.toml

examples/net_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
