/root/repo/target/debug/examples/modern_cluster-5cfea3dd94ef0433.d: examples/modern_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libmodern_cluster-5cfea3dd94ef0433.rmeta: examples/modern_cluster.rs Cargo.toml

examples/modern_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
