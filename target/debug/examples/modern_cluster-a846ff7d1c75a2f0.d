/root/repo/target/debug/examples/modern_cluster-a846ff7d1c75a2f0.d: examples/modern_cluster.rs

/root/repo/target/debug/examples/modern_cluster-a846ff7d1c75a2f0: examples/modern_cluster.rs

examples/modern_cluster.rs:
