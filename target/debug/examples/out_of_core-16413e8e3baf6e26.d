/root/repo/target/debug/examples/out_of_core-16413e8e3baf6e26.d: examples/out_of_core.rs

/root/repo/target/debug/examples/out_of_core-16413e8e3baf6e26: examples/out_of_core.rs

examples/out_of_core.rs:
