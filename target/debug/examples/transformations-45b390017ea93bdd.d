/root/repo/target/debug/examples/transformations-45b390017ea93bdd.d: examples/transformations.rs

/root/repo/target/debug/examples/transformations-45b390017ea93bdd: examples/transformations.rs

examples/transformations.rs:
