/root/repo/target/debug/examples/spacetime-ccfde25cce8ceaa3.d: examples/spacetime.rs

/root/repo/target/debug/examples/spacetime-ccfde25cce8ceaa3: examples/spacetime.rs

examples/spacetime.rs:
