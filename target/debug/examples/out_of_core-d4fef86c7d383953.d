/root/repo/target/debug/examples/out_of_core-d4fef86c7d383953.d: examples/out_of_core.rs

/root/repo/target/debug/examples/out_of_core-d4fef86c7d383953: examples/out_of_core.rs

examples/out_of_core.rs:
