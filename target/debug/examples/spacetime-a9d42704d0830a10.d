/root/repo/target/debug/examples/spacetime-a9d42704d0830a10.d: examples/spacetime.rs Cargo.toml

/root/repo/target/debug/examples/libspacetime-a9d42704d0830a10.rmeta: examples/spacetime.rs Cargo.toml

examples/spacetime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
