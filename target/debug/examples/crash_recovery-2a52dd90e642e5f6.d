/root/repo/target/debug/examples/crash_recovery-2a52dd90e642e5f6.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-2a52dd90e642e5f6: examples/crash_recovery.rs

examples/crash_recovery.rs:
