/root/repo/target/debug/examples/crash_recovery-2b9f97e963232dba.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-2b9f97e963232dba: examples/crash_recovery.rs

examples/crash_recovery.rs:
