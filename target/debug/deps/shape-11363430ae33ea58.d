/root/repo/target/debug/deps/shape-11363430ae33ea58.d: tests/shape.rs

/root/repo/target/debug/deps/shape-11363430ae33ea58: tests/shape.rs

tests/shape.rs:
