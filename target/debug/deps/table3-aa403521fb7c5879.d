/root/repo/target/debug/deps/table3-aa403521fb7c5879.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-aa403521fb7c5879: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
