/root/repo/target/debug/deps/all-c460fa0e61f0c522.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-c460fa0e61f0c522: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
