/root/repo/target/debug/deps/navp_repro-21bb24f061c07ffc.d: src/lib.rs

/root/repo/target/debug/deps/libnavp_repro-21bb24f061c07ffc.rlib: src/lib.rs

/root/repo/target/debug/deps/libnavp_repro-21bb24f061c07ffc.rmeta: src/lib.rs

src/lib.rs:
