/root/repo/target/debug/deps/navp_pe-205a1b55be157eb2.d: src/bin/navp-pe.rs

/root/repo/target/debug/deps/navp_pe-205a1b55be157eb2: src/bin/navp-pe.rs

src/bin/navp-pe.rs:
