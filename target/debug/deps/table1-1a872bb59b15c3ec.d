/root/repo/target/debug/deps/table1-1a872bb59b15c3ec.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1a872bb59b15c3ec: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
