/root/repo/target/debug/deps/table4-9b3f4ff2669d2d57.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-9b3f4ff2669d2d57: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
