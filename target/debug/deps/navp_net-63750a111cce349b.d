/root/repo/target/debug/deps/navp_net-63750a111cce349b.d: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_net-63750a111cce349b.rmeta: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/cluster.rs:
crates/net/src/codec.rs:
crates/net/src/exec.rs:
crates/net/src/frame.rs:
crates/net/src/pe.rs:
crates/net/src/registry.rs:
crates/net/src/testing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
