/root/repo/target/debug/deps/properties-3f61f2321ab56ed0.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3f61f2321ab56ed0: tests/properties.rs

tests/properties.rs:
