/root/repo/target/debug/deps/properties-2bd52fa76d0b2b35.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2bd52fa76d0b2b35.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
