/root/repo/target/debug/deps/determinism-e1b8cc582178bd04.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-e1b8cc582178bd04.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
