/root/repo/target/debug/deps/navp_matrix-413644c783841f4b.d: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

/root/repo/target/debug/deps/libnavp_matrix-413644c783841f4b.rlib: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

/root/repo/target/debug/deps/libnavp_matrix-413644c783841f4b.rmeta: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

crates/matrix/src/lib.rs:
crates/matrix/src/block.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/dist.rs:
crates/matrix/src/error.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/kernel.rs:
crates/matrix/src/stagger.rs:
