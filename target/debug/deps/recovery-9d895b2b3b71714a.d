/root/repo/target/debug/deps/recovery-9d895b2b3b71714a.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-9d895b2b3b71714a: tests/recovery.rs

tests/recovery.rs:
