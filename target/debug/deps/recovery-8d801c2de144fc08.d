/root/repo/target/debug/deps/recovery-8d801c2de144fc08.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-8d801c2de144fc08: tests/recovery.rs

tests/recovery.rs:
