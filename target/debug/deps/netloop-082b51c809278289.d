/root/repo/target/debug/deps/netloop-082b51c809278289.d: crates/bench/src/bin/netloop.rs

/root/repo/target/debug/deps/netloop-082b51c809278289: crates/bench/src/bin/netloop.rs

crates/bench/src/bin/netloop.rs:
