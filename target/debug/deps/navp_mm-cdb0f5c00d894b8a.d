/root/repo/target/debug/deps/navp_mm-cdb0f5c00d894b8a.d: crates/mm/src/lib.rs crates/mm/src/carrier1d.rs crates/mm/src/carrier2d.rs crates/mm/src/config.rs crates/mm/src/doall.rs crates/mm/src/dpc2d.rs crates/mm/src/dsc1d.rs crates/mm/src/dsc2d.rs crates/mm/src/gentleman.rs crates/mm/src/launch.rs crates/mm/src/net.rs crates/mm/src/phase1d.rs crates/mm/src/pipe1d.rs crates/mm/src/pipe2d.rs crates/mm/src/runner.rs crates/mm/src/seq.rs crates/mm/src/summa.rs crates/mm/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_mm-cdb0f5c00d894b8a.rmeta: crates/mm/src/lib.rs crates/mm/src/carrier1d.rs crates/mm/src/carrier2d.rs crates/mm/src/config.rs crates/mm/src/doall.rs crates/mm/src/dpc2d.rs crates/mm/src/dsc1d.rs crates/mm/src/dsc2d.rs crates/mm/src/gentleman.rs crates/mm/src/launch.rs crates/mm/src/net.rs crates/mm/src/phase1d.rs crates/mm/src/pipe1d.rs crates/mm/src/pipe2d.rs crates/mm/src/runner.rs crates/mm/src/seq.rs crates/mm/src/summa.rs crates/mm/src/util.rs Cargo.toml

crates/mm/src/lib.rs:
crates/mm/src/carrier1d.rs:
crates/mm/src/carrier2d.rs:
crates/mm/src/config.rs:
crates/mm/src/doall.rs:
crates/mm/src/dpc2d.rs:
crates/mm/src/dsc1d.rs:
crates/mm/src/dsc2d.rs:
crates/mm/src/gentleman.rs:
crates/mm/src/launch.rs:
crates/mm/src/net.rs:
crates/mm/src/phase1d.rs:
crates/mm/src/pipe1d.rs:
crates/mm/src/pipe2d.rs:
crates/mm/src/runner.rs:
crates/mm/src/seq.rs:
crates/mm/src/summa.rs:
crates/mm/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
