/root/repo/target/debug/deps/table2-a2f8f8671d443f8a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a2f8f8671d443f8a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
