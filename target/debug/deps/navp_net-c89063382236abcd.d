/root/repo/target/debug/deps/navp_net-c89063382236abcd.d: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs

/root/repo/target/debug/deps/libnavp_net-c89063382236abcd.rlib: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs

/root/repo/target/debug/deps/libnavp_net-c89063382236abcd.rmeta: crates/net/src/lib.rs crates/net/src/cluster.rs crates/net/src/codec.rs crates/net/src/exec.rs crates/net/src/frame.rs crates/net/src/pe.rs crates/net/src/registry.rs crates/net/src/testing.rs

crates/net/src/lib.rs:
crates/net/src/cluster.rs:
crates/net/src/codec.rs:
crates/net/src/exec.rs:
crates/net/src/frame.rs:
crates/net/src/pe.rs:
crates/net/src/registry.rs:
crates/net/src/testing.rs:
