/root/repo/target/debug/deps/table1-f270d36b3679084e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f270d36b3679084e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
