/root/repo/target/debug/deps/all-205887c2c8e9f637.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-205887c2c8e9f637: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
