/root/repo/target/debug/deps/navp_mp-f1ceb6536d1c629e.d: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

/root/repo/target/debug/deps/libnavp_mp-f1ceb6536d1c629e.rlib: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

/root/repo/target/debug/deps/libnavp_mp-f1ceb6536d1c629e.rmeta: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

crates/mp/src/lib.rs:
crates/mp/src/data.rs:
crates/mp/src/error.rs:
crates/mp/src/process.rs:
crates/mp/src/sim_exec.rs:
crates/mp/src/thread_exec.rs:
