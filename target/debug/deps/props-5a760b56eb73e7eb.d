/root/repo/target/debug/deps/props-5a760b56eb73e7eb.d: crates/matrix/tests/props.rs

/root/repo/target/debug/deps/props-5a760b56eb73e7eb: crates/matrix/tests/props.rs

crates/matrix/tests/props.rs:
