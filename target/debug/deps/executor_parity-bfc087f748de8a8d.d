/root/repo/target/debug/deps/executor_parity-bfc087f748de8a8d.d: crates/core/tests/executor_parity.rs

/root/repo/target/debug/deps/executor_parity-bfc087f748de8a8d: crates/core/tests/executor_parity.rs

crates/core/tests/executor_parity.rs:
