/root/repo/target/debug/deps/navp_net_testpe-fcf1cf1af0d9e784.d: crates/net/src/bin/navp-net-testpe.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_net_testpe-fcf1cf1af0d9e784.rmeta: crates/net/src/bin/navp-net-testpe.rs Cargo.toml

crates/net/src/bin/navp-net-testpe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
