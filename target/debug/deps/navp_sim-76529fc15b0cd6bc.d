/root/repo/target/debug/deps/navp_sim-76529fc15b0cd6bc.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_sim-76529fc15b0cd6bc.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/key.rs:
crates/sim/src/memory.rs:
crates/sim/src/pe.rs:
crates/sim/src/queue.rs:
crates/sim/src/store.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
