/root/repo/target/debug/deps/shape-d8e2bea6e9be2a34.d: tests/shape.rs Cargo.toml

/root/repo/target/debug/deps/libshape-d8e2bea6e9be2a34.rmeta: tests/shape.rs Cargo.toml

tests/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
