/root/repo/target/debug/deps/ablation-e951c74f71a6cc56.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-e951c74f71a6cc56: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
