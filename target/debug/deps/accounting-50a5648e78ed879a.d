/root/repo/target/debug/deps/accounting-50a5648e78ed879a.d: tests/accounting.rs

/root/repo/target/debug/deps/accounting-50a5648e78ed879a: tests/accounting.rs

tests/accounting.rs:

# env-dep:CARGO_BIN_EXE_navp-pe=/root/repo/target/debug/navp-pe
