/root/repo/target/debug/deps/net-46fbdce40d551e07.d: tests/net.rs

/root/repo/target/debug/deps/net-46fbdce40d551e07: tests/net.rs

tests/net.rs:

# env-dep:CARGO_BIN_EXE_navp-pe=/root/repo/target/debug/navp-pe
