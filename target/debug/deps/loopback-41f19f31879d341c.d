/root/repo/target/debug/deps/loopback-41f19f31879d341c.d: crates/net/tests/loopback.rs

/root/repo/target/debug/deps/loopback-41f19f31879d341c: crates/net/tests/loopback.rs

crates/net/tests/loopback.rs:

# env-dep:CARGO_BIN_EXE_navp-net-testpe=/root/repo/target/debug/navp-net-testpe
