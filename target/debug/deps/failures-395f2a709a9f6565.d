/root/repo/target/debug/deps/failures-395f2a709a9f6565.d: tests/failures.rs Cargo.toml

/root/repo/target/debug/deps/libfailures-395f2a709a9f6565.rmeta: tests/failures.rs Cargo.toml

tests/failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
