/root/repo/target/debug/deps/correctness-fb8edb7987b47771.d: tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-fb8edb7987b47771.rmeta: tests/correctness.rs Cargo.toml

tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
