/root/repo/target/debug/deps/codec_props-144fbebc88b63149.d: crates/net/tests/codec_props.rs

/root/repo/target/debug/deps/codec_props-144fbebc88b63149: crates/net/tests/codec_props.rs

crates/net/tests/codec_props.rs:
