/root/repo/target/debug/deps/navp_repro-c0d3c69f9c45236a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_repro-c0d3c69f9c45236a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
