/root/repo/target/debug/deps/navp_repro-e0229835143a2048.d: src/lib.rs

/root/repo/target/debug/deps/navp_repro-e0229835143a2048: src/lib.rs

src/lib.rs:
