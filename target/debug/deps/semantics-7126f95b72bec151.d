/root/repo/target/debug/deps/semantics-7126f95b72bec151.d: crates/mp/tests/semantics.rs

/root/repo/target/debug/deps/semantics-7126f95b72bec151: crates/mp/tests/semantics.rs

crates/mp/tests/semantics.rs:
