/root/repo/target/debug/deps/ablation-195b922b33a0908c.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-195b922b33a0908c: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
