/root/repo/target/debug/deps/navp_pe-c99e91dafc2fe82d.d: src/bin/navp-pe.rs

/root/repo/target/debug/deps/navp_pe-c99e91dafc2fe82d: src/bin/navp-pe.rs

src/bin/navp-pe.rs:
