/root/repo/target/debug/deps/navp_matrix-698e589497ca1219.d: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

/root/repo/target/debug/deps/navp_matrix-698e589497ca1219: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs

crates/matrix/src/lib.rs:
crates/matrix/src/block.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/dist.rs:
crates/matrix/src/error.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/kernel.rs:
crates/matrix/src/stagger.rs:
