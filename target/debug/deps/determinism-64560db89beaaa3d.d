/root/repo/target/debug/deps/determinism-64560db89beaaa3d.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-64560db89beaaa3d: tests/determinism.rs

tests/determinism.rs:
