/root/repo/target/debug/deps/navp_sim-c806ef0c8c97d495.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/navp_sim-c806ef0c8c97d495: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/key.rs:
crates/sim/src/memory.rs:
crates/sim/src/pe.rs:
crates/sim/src/queue.rs:
crates/sim/src/store.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
