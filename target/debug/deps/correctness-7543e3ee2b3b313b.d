/root/repo/target/debug/deps/correctness-7543e3ee2b3b313b.d: tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-7543e3ee2b3b313b.rmeta: tests/correctness.rs Cargo.toml

tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
