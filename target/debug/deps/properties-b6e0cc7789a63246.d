/root/repo/target/debug/deps/properties-b6e0cc7789a63246.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b6e0cc7789a63246: tests/properties.rs

tests/properties.rs:
