/root/repo/target/debug/deps/shape-e45a29ec28763716.d: tests/shape.rs

/root/repo/target/debug/deps/shape-e45a29ec28763716: tests/shape.rs

tests/shape.rs:
