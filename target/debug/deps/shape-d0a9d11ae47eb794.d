/root/repo/target/debug/deps/shape-d0a9d11ae47eb794.d: tests/shape.rs Cargo.toml

/root/repo/target/debug/deps/libshape-d0a9d11ae47eb794.rmeta: tests/shape.rs Cargo.toml

tests/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
