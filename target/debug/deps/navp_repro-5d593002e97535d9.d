/root/repo/target/debug/deps/navp_repro-5d593002e97535d9.d: src/lib.rs

/root/repo/target/debug/deps/libnavp_repro-5d593002e97535d9.rlib: src/lib.rs

/root/repo/target/debug/deps/libnavp_repro-5d593002e97535d9.rmeta: src/lib.rs

src/lib.rs:
