/root/repo/target/debug/deps/navp-6e27c976051a3e0f.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs

/root/repo/target/debug/deps/navp-6e27c976051a3e0f: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/recovery.rs:
crates/core/src/script.rs:
crates/core/src/sim_exec.rs:
crates/core/src/thread_exec.rs:
crates/core/src/transform.rs:
