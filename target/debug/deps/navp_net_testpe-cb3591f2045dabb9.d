/root/repo/target/debug/deps/navp_net_testpe-cb3591f2045dabb9.d: crates/net/src/bin/navp-net-testpe.rs

/root/repo/target/debug/deps/navp_net_testpe-cb3591f2045dabb9: crates/net/src/bin/navp-net-testpe.rs

crates/net/src/bin/navp-net-testpe.rs:
