/root/repo/target/debug/deps/failures-9347fa92ae703f05.d: tests/failures.rs

/root/repo/target/debug/deps/failures-9347fa92ae703f05: tests/failures.rs

tests/failures.rs:
