/root/repo/target/debug/deps/navp_repro-5da12591bc53058e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_repro-5da12591bc53058e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
