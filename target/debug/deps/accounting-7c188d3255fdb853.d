/root/repo/target/debug/deps/accounting-7c188d3255fdb853.d: tests/accounting.rs Cargo.toml

/root/repo/target/debug/deps/libaccounting-7c188d3255fdb853.rmeta: tests/accounting.rs Cargo.toml

tests/accounting.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_navp-pe=placeholder:navp-pe
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
