/root/repo/target/debug/deps/navp-4d30e782ecf8ae37.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libnavp-4d30e782ecf8ae37.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/recovery.rs:
crates/core/src/script.rs:
crates/core/src/sim_exec.rs:
crates/core/src/thread_exec.rs:
crates/core/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
