/root/repo/target/debug/deps/net-7982e60fa96ebe69.d: tests/net.rs Cargo.toml

/root/repo/target/debug/deps/libnet-7982e60fa96ebe69.rmeta: tests/net.rs Cargo.toml

tests/net.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_navp-pe=placeholder:navp-pe
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
