/root/repo/target/debug/deps/navp_repro-de0b04832bd87e9d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_repro-de0b04832bd87e9d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
