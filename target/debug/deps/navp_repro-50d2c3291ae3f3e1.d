/root/repo/target/debug/deps/navp_repro-50d2c3291ae3f3e1.d: src/lib.rs

/root/repo/target/debug/deps/navp_repro-50d2c3291ae3f3e1: src/lib.rs

src/lib.rs:
