/root/repo/target/debug/deps/navp_bench-510fb795775f9157.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libnavp_bench-510fb795775f9157.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libnavp_bench-510fb795775f9157.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/layout.rs:
crates/bench/src/paper.rs:
crates/bench/src/timing.rs:
