/root/repo/target/debug/deps/figures-8d136a95dbef2fdd.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-8d136a95dbef2fdd: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
