/root/repo/target/debug/deps/determinism-1f8844c502d9da70.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-1f8844c502d9da70.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
