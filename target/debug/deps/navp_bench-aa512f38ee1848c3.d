/root/repo/target/debug/deps/navp_bench-aa512f38ee1848c3.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/navp_bench-aa512f38ee1848c3: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/layout.rs:
crates/bench/src/paper.rs:
crates/bench/src/timing.rs:
