/root/repo/target/debug/deps/navp_mm-3e09f3e12a8b7a3a.d: crates/mm/src/lib.rs crates/mm/src/carrier1d.rs crates/mm/src/carrier2d.rs crates/mm/src/config.rs crates/mm/src/doall.rs crates/mm/src/dpc2d.rs crates/mm/src/dsc1d.rs crates/mm/src/dsc2d.rs crates/mm/src/gentleman.rs crates/mm/src/launch.rs crates/mm/src/net.rs crates/mm/src/phase1d.rs crates/mm/src/pipe1d.rs crates/mm/src/pipe2d.rs crates/mm/src/runner.rs crates/mm/src/seq.rs crates/mm/src/summa.rs crates/mm/src/util.rs

/root/repo/target/debug/deps/navp_mm-3e09f3e12a8b7a3a: crates/mm/src/lib.rs crates/mm/src/carrier1d.rs crates/mm/src/carrier2d.rs crates/mm/src/config.rs crates/mm/src/doall.rs crates/mm/src/dpc2d.rs crates/mm/src/dsc1d.rs crates/mm/src/dsc2d.rs crates/mm/src/gentleman.rs crates/mm/src/launch.rs crates/mm/src/net.rs crates/mm/src/phase1d.rs crates/mm/src/pipe1d.rs crates/mm/src/pipe2d.rs crates/mm/src/runner.rs crates/mm/src/seq.rs crates/mm/src/summa.rs crates/mm/src/util.rs

crates/mm/src/lib.rs:
crates/mm/src/carrier1d.rs:
crates/mm/src/carrier2d.rs:
crates/mm/src/config.rs:
crates/mm/src/doall.rs:
crates/mm/src/dpc2d.rs:
crates/mm/src/dsc1d.rs:
crates/mm/src/dsc2d.rs:
crates/mm/src/gentleman.rs:
crates/mm/src/launch.rs:
crates/mm/src/net.rs:
crates/mm/src/phase1d.rs:
crates/mm/src/pipe1d.rs:
crates/mm/src/pipe2d.rs:
crates/mm/src/runner.rs:
crates/mm/src/seq.rs:
crates/mm/src/summa.rs:
crates/mm/src/util.rs:
