/root/repo/target/debug/deps/navp_mp-abc74f42667f4b9a.d: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

/root/repo/target/debug/deps/navp_mp-abc74f42667f4b9a: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs

crates/mp/src/lib.rs:
crates/mp/src/data.rs:
crates/mp/src/error.rs:
crates/mp/src/process.rs:
crates/mp/src/sim_exec.rs:
crates/mp/src/thread_exec.rs:
