/root/repo/target/debug/deps/failures-56495d5a299f1146.d: tests/failures.rs Cargo.toml

/root/repo/target/debug/deps/libfailures-56495d5a299f1146.rmeta: tests/failures.rs Cargo.toml

tests/failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
