/root/repo/target/debug/deps/recovery-68b16e9404cb6e2e.d: tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-68b16e9404cb6e2e.rmeta: tests/recovery.rs Cargo.toml

tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
