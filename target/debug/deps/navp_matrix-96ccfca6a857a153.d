/root/repo/target/debug/deps/navp_matrix-96ccfca6a857a153.d: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_matrix-96ccfca6a857a153.rmeta: crates/matrix/src/lib.rs crates/matrix/src/block.rs crates/matrix/src/dense.rs crates/matrix/src/dist.rs crates/matrix/src/error.rs crates/matrix/src/gen.rs crates/matrix/src/kernel.rs crates/matrix/src/stagger.rs Cargo.toml

crates/matrix/src/lib.rs:
crates/matrix/src/block.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/dist.rs:
crates/matrix/src/error.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/kernel.rs:
crates/matrix/src/stagger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
