/root/repo/target/debug/deps/navp_sim-da6010f6ec035e1f.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libnavp_sim-da6010f6ec035e1f.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libnavp_sim-da6010f6ec035e1f.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/key.rs crates/sim/src/memory.rs crates/sim/src/pe.rs crates/sim/src/queue.rs crates/sim/src/store.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/key.rs:
crates/sim/src/memory.rs:
crates/sim/src/pe.rs:
crates/sim/src/queue.rs:
crates/sim/src/store.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
