/root/repo/target/debug/deps/navp_pe-8d903101c33a0b6e.d: src/bin/navp-pe.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_pe-8d903101c33a0b6e.rmeta: src/bin/navp-pe.rs Cargo.toml

src/bin/navp-pe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
