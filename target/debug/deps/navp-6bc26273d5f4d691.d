/root/repo/target/debug/deps/navp-6bc26273d5f4d691.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs

/root/repo/target/debug/deps/libnavp-6bc26273d5f4d691.rlib: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs

/root/repo/target/debug/deps/libnavp-6bc26273d5f4d691.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/recovery.rs crates/core/src/script.rs crates/core/src/sim_exec.rs crates/core/src/thread_exec.rs crates/core/src/transform.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/recovery.rs:
crates/core/src/script.rs:
crates/core/src/sim_exec.rs:
crates/core/src/thread_exec.rs:
crates/core/src/transform.rs:
