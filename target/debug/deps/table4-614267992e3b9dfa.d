/root/repo/target/debug/deps/table4-614267992e3b9dfa.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-614267992e3b9dfa: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
