/root/repo/target/debug/deps/table2-e438f5b02b89b5f4.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e438f5b02b89b5f4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
