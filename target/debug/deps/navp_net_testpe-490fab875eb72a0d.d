/root/repo/target/debug/deps/navp_net_testpe-490fab875eb72a0d.d: crates/net/src/bin/navp-net-testpe.rs

/root/repo/target/debug/deps/navp_net_testpe-490fab875eb72a0d: crates/net/src/bin/navp-net-testpe.rs

crates/net/src/bin/navp-net-testpe.rs:
