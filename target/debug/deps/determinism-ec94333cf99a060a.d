/root/repo/target/debug/deps/determinism-ec94333cf99a060a.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-ec94333cf99a060a: tests/determinism.rs

tests/determinism.rs:
