/root/repo/target/debug/deps/correctness-4078786e3627b26a.d: tests/correctness.rs

/root/repo/target/debug/deps/correctness-4078786e3627b26a: tests/correctness.rs

tests/correctness.rs:
