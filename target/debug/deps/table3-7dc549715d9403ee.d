/root/repo/target/debug/deps/table3-7dc549715d9403ee.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-7dc549715d9403ee: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
