/root/repo/target/debug/deps/navp_bench-bcbf38bdc06cc0bc.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libnavp_bench-bcbf38bdc06cc0bc.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libnavp_bench-bcbf38bdc06cc0bc.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/layout.rs crates/bench/src/paper.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/layout.rs:
crates/bench/src/paper.rs:
crates/bench/src/timing.rs:
