/root/repo/target/debug/deps/navp_mp-25660cee910da867.d: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_mp-25660cee910da867.rmeta: crates/mp/src/lib.rs crates/mp/src/data.rs crates/mp/src/error.rs crates/mp/src/process.rs crates/mp/src/sim_exec.rs crates/mp/src/thread_exec.rs Cargo.toml

crates/mp/src/lib.rs:
crates/mp/src/data.rs:
crates/mp/src/error.rs:
crates/mp/src/process.rs:
crates/mp/src/sim_exec.rs:
crates/mp/src/thread_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
