/root/repo/target/debug/deps/correctness-4d0bce50bdadbe1b.d: tests/correctness.rs

/root/repo/target/debug/deps/correctness-4d0bce50bdadbe1b: tests/correctness.rs

tests/correctness.rs:
