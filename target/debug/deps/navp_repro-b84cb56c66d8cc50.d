/root/repo/target/debug/deps/navp_repro-b84cb56c66d8cc50.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_repro-b84cb56c66d8cc50.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
