/root/repo/target/debug/deps/figures-2b170f373514d78f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-2b170f373514d78f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
