/root/repo/target/debug/deps/failures-cbe9914a8403125d.d: tests/failures.rs

/root/repo/target/debug/deps/failures-cbe9914a8403125d: tests/failures.rs

tests/failures.rs:
