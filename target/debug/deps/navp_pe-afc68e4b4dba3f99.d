/root/repo/target/debug/deps/navp_pe-afc68e4b4dba3f99.d: src/bin/navp-pe.rs Cargo.toml

/root/repo/target/debug/deps/libnavp_pe-afc68e4b4dba3f99.rmeta: src/bin/navp-pe.rs Cargo.toml

src/bin/navp-pe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
