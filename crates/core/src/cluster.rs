//! A cluster: one [`NodeStore`] per PE, plus the initial injections.

use crate::agent::Messenger;
use crate::error::RunError;
use crate::fault::FaultPlan;
use navp_sim::key::{EventKey, NodeId};
use navp_sim::store::NodeStore;

/// What [`Cluster::into_parts`] hands an executor: per-PE stores,
/// time-zero injections, pre-signalled events, and the fault plan to run
/// under (if any).
pub struct ClusterParts {
    /// One node-variable store per PE.
    pub stores: Vec<NodeStore>,
    /// Messengers injected at time zero, in scheduling order.
    pub injections: Vec<(NodeId, Box<dyn Messenger>)>,
    /// Events pre-signalled before the run starts.
    pub initial_events: Vec<EventKey>,
    /// Fault plan the executor must inject and absorb, if one was set.
    pub fault_plan: Option<FaultPlan>,
}

/// The state handed to an executor: the per-PE node-variable stores and
/// the messengers injected "at the command line" before the run starts.
///
/// The same `Cluster` type feeds both executors, so an experiment's data
/// placement is written once and timed under either.
pub struct Cluster {
    stores: Vec<NodeStore>,
    injections: Vec<(NodeId, Box<dyn Messenger>)>,
    initial_events: Vec<EventKey>,
    fault_plan: Option<FaultPlan>,
}

impl Cluster {
    /// A cluster of `pes` empty PEs.
    pub fn new(pes: usize) -> Result<Cluster, RunError> {
        if pes == 0 {
            return Err(RunError::NoPes);
        }
        Ok(Cluster {
            stores: (0..pes).map(|_| NodeStore::new()).collect(),
            injections: Vec::new(),
            initial_events: Vec::new(),
            fault_plan: None,
        })
    }

    /// Number of PEs.
    pub fn pes(&self) -> usize {
        self.stores.len()
    }

    /// The store of PE `pe`, for pre-run data placement.
    ///
    /// # Panics
    /// Panics when `pe` is out of range. [`Cluster::try_store_mut`] is
    /// the non-panicking equivalent.
    pub fn store_mut(&mut self, pe: NodeId) -> &mut NodeStore {
        self.try_store_mut(pe)
            .expect("store PE out of range")
    }

    /// The store of PE `pe`, or [`RunError::PeOutOfRange`].
    pub fn try_store_mut(&mut self, pe: NodeId) -> Result<&mut NodeStore, RunError> {
        let pes = self.stores.len();
        self.stores
            .get_mut(pe)
            .ok_or(RunError::PeOutOfRange { pe, pes })
    }

    /// Read access to the store of PE `pe`.
    ///
    /// # Panics
    /// Panics when `pe` is out of range.
    pub fn store(&self, pe: NodeId) -> &NodeStore {
        &self.stores[pe]
    }

    /// Inject a messenger on PE `pe` at time zero, like spawning a
    /// MESSENGERS thread from the command line. Injection order is the
    /// time-zero scheduling order.
    ///
    /// # Panics
    /// Panics when `pe` is out of range. [`Cluster::try_inject`] is the
    /// non-panicking equivalent.
    pub fn inject(&mut self, pe: NodeId, m: impl Messenger) {
        assert!(pe < self.stores.len(), "injection PE out of range");
        self.injections.push((pe, Box::new(m)));
    }

    /// Inject a messenger on PE `pe`, or return
    /// [`RunError::PeOutOfRange`] when `pe` names no PE.
    pub fn try_inject(&mut self, pe: NodeId, m: impl Messenger) -> Result<(), RunError> {
        if pe >= self.stores.len() {
            return Err(RunError::PeOutOfRange {
                pe,
                pes: self.stores.len(),
            });
        }
        self.injections.push((pe, Box::new(m)));
        Ok(())
    }

    /// Signal an event before the run starts — the paper's "an event
    /// EC(i, j) is signaled on node(i, j) initially" (Fig. 12/14 setup).
    /// May be called repeatedly to bank several counts.
    pub fn signal_initial(&mut self, e: EventKey) {
        self.initial_events.push(e);
    }

    /// Run this cluster under `plan`: the executor injects the plan's
    /// faults and (with checkpointing on) recovers from them.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Builder-style [`Cluster::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Cluster {
        self.fault_plan = Some(plan);
        self
    }

    /// The fault plan set on this cluster, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Executor-side: decompose into stores, injections, pre-signaled
    /// events and the fault plan.
    pub fn into_parts(self) -> ClusterParts {
        ClusterParts {
            stores: self.stores,
            injections: self.injections,
            initial_events: self.initial_events,
            fault_plan: self.fault_plan,
        }
    }

    /// Reassemble a cluster from post-run stores (results extraction).
    pub fn from_stores(stores: Vec<NodeStore>) -> Cluster {
        Cluster {
            stores,
            injections: Vec::new(),
            initial_events: Vec::new(),
            fault_plan: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Effect, MsgrCtx};
    use navp_sim::key::Key;

    struct Nop;
    impl Messenger for Nop {
        fn step(&mut self, _: &mut MsgrCtx<'_>) -> Effect {
            Effect::Done
        }
    }

    #[test]
    fn build_and_place_data() {
        let mut c = Cluster::new(3).unwrap();
        assert_eq!(c.pes(), 3);
        c.store_mut(1).insert(Key::plain("B"), 7u8, 1);
        assert_eq!(c.store(1).get::<u8>(Key::plain("B")), Some(&7));
        assert!(c.store(0).is_empty());
        c.inject(2, Nop);
        c.signal_initial(Key::at("E", 1));
        let parts = c.into_parts();
        assert_eq!(parts.stores.len(), 3);
        assert_eq!(parts.injections.len(), 1);
        assert_eq!(parts.injections[0].0, 2);
        assert_eq!(parts.initial_events, vec![Key::at("E", 1)]);
        assert!(parts.fault_plan.is_none());
    }

    #[test]
    fn zero_pes_rejected() {
        assert!(matches!(Cluster::new(0), Err(RunError::NoPes)));
    }

    #[test]
    #[should_panic(expected = "injection PE out of range")]
    fn inject_bounds_checked() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(1, Nop);
    }

    #[test]
    fn try_variants_return_structured_errors() {
        let mut c = Cluster::new(2).unwrap();
        assert!(c.try_inject(0, Nop).is_ok());
        assert!(matches!(
            c.try_inject(2, Nop),
            Err(RunError::PeOutOfRange { pe: 2, pes: 2 })
        ));
        assert!(c.try_store_mut(1).is_ok());
        assert!(matches!(
            c.try_store_mut(5),
            Err(RunError::PeOutOfRange { pe: 5, pes: 2 })
        ));
        // The failed calls changed nothing.
        assert_eq!(c.into_parts().injections.len(), 1);
    }

    #[test]
    fn fault_plan_travels_with_parts() {
        let c = Cluster::new(2)
            .unwrap()
            .with_fault_plan(FaultPlan::new().crash_pe(1, 3));
        assert!(c.fault_plan().is_some());
        let parts = c.into_parts();
        assert_eq!(parts.fault_plan.unwrap().crashes.len(), 1);
    }
}
