//! A cluster: one [`NodeStore`] per PE, plus the initial injections.

use crate::agent::Messenger;
use crate::error::RunError;
use navp_sim::key::{EventKey, NodeId};
use navp_sim::store::NodeStore;

/// What [`Cluster::into_parts`] hands an executor: per-PE stores,
/// time-zero injections, and pre-signalled events.
pub type ClusterParts = (
    Vec<NodeStore>,
    Vec<(NodeId, Box<dyn Messenger>)>,
    Vec<EventKey>,
);

/// The state handed to an executor: the per-PE node-variable stores and
/// the messengers injected "at the command line" before the run starts.
///
/// The same `Cluster` type feeds both executors, so an experiment's data
/// placement is written once and timed under either.
pub struct Cluster {
    stores: Vec<NodeStore>,
    injections: Vec<(NodeId, Box<dyn Messenger>)>,
    initial_events: Vec<EventKey>,
}

impl Cluster {
    /// A cluster of `pes` empty PEs.
    pub fn new(pes: usize) -> Result<Cluster, RunError> {
        if pes == 0 {
            return Err(RunError::NoPes);
        }
        Ok(Cluster {
            stores: (0..pes).map(|_| NodeStore::new()).collect(),
            injections: Vec::new(),
            initial_events: Vec::new(),
        })
    }

    /// Number of PEs.
    pub fn pes(&self) -> usize {
        self.stores.len()
    }

    /// The store of PE `pe`, for pre-run data placement.
    ///
    /// # Panics
    /// Panics when `pe` is out of range.
    pub fn store_mut(&mut self, pe: NodeId) -> &mut NodeStore {
        &mut self.stores[pe]
    }

    /// Read access to the store of PE `pe`.
    ///
    /// # Panics
    /// Panics when `pe` is out of range.
    pub fn store(&self, pe: NodeId) -> &NodeStore {
        &self.stores[pe]
    }

    /// Inject a messenger on PE `pe` at time zero, like spawning a
    /// MESSENGERS thread from the command line. Injection order is the
    /// time-zero scheduling order.
    ///
    /// # Panics
    /// Panics when `pe` is out of range.
    pub fn inject(&mut self, pe: NodeId, m: impl Messenger) {
        assert!(pe < self.stores.len(), "injection PE out of range");
        self.injections.push((pe, Box::new(m)));
    }

    /// Signal an event before the run starts — the paper's "an event
    /// EC(i, j) is signaled on node(i, j) initially" (Fig. 12/14 setup).
    /// May be called repeatedly to bank several counts.
    pub fn signal_initial(&mut self, e: EventKey) {
        self.initial_events.push(e);
    }

    /// Executor-side: decompose into stores, injections and pre-signaled
    /// events.
    pub fn into_parts(self) -> ClusterParts {
        (self.stores, self.injections, self.initial_events)
    }

    /// Reassemble a cluster from post-run stores (results extraction).
    pub fn from_stores(stores: Vec<NodeStore>) -> Cluster {
        Cluster {
            stores,
            injections: Vec::new(),
            initial_events: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Effect, MsgrCtx};
    use navp_sim::key::Key;

    struct Nop;
    impl Messenger for Nop {
        fn step(&mut self, _: &mut MsgrCtx<'_>) -> Effect {
            Effect::Done
        }
    }

    #[test]
    fn build_and_place_data() {
        let mut c = Cluster::new(3).unwrap();
        assert_eq!(c.pes(), 3);
        c.store_mut(1).insert(Key::plain("B"), 7u8, 1);
        assert_eq!(c.store(1).get::<u8>(Key::plain("B")), Some(&7));
        assert!(c.store(0).is_empty());
        c.inject(2, Nop);
        c.signal_initial(Key::at("E", 1));
        let (stores, inj, evs) = c.into_parts();
        assert_eq!(stores.len(), 3);
        assert_eq!(inj.len(), 1);
        assert_eq!(inj[0].0, 2);
        assert_eq!(evs, vec![Key::at("E", 1)]);
    }

    #[test]
    fn zero_pes_rejected() {
        assert!(matches!(Cluster::new(0), Err(RunError::NoPes)));
    }

    #[test]
    #[should_panic(expected = "injection PE out of range")]
    fn inject_bounds_checked() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(1, Nop);
    }
}
