//! Deterministic fault-space exploration: seeded schedule generation,
//! parity-checked exploration, delta-debugging minimization, and
//! replayable repro files.
//!
//! The model follows FoundationDB-style deterministic simulation: a
//! splittable PRNG ([`crate::fault::SplitMix64`]) derives one
//! independent stream per explored schedule, each schedule is a
//! [`FaultPlan`] whose rules fire at the runtime's counted decision
//! points (every messenger-run boundary, hop arrival, and signal
//! emission), and the driver checks every surviving run for *bitwise*
//! product parity against the fault-free baseline. Because both the
//! schedule and the executors are deterministic, any violation is
//! reproducible from its seed alone — the explorer shrinks it with a
//! greedy delta-debugging pass and writes a `repro-<seed>.navpfault`
//! file that replays the minimized schedule exactly, on the sim or the
//! thread executor.

use crate::error::RunError;
use crate::fault::{CrashRule, FaultPlan, HopFaultRule, LostSignalRule, SplitMix64};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One explored point of the fault space: a seed and the plan its
/// split PRNG stream generated.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The seed this schedule was generated from.
    pub seed: u64,
    /// The generated fault plan.
    pub plan: FaultPlan,
}

impl FaultSchedule {
    /// Generate the schedule for `seed` on a `pes`-PE cluster
    /// (deterministic; see [`FaultPlan::seeded`] for the sampling).
    pub fn generate(seed: u64, pes: usize) -> FaultSchedule {
        FaultSchedule {
            seed,
            plan: FaultPlan::seeded(seed, pes),
        }
    }
}

/// How one schedule's run compares against the fault-free baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The product is bitwise-identical to the baseline.
    Match,
    /// The plan is unrecoverable by construction (lost signal, or
    /// checkpointing off) and the run failed in the expected structured
    /// way — not a bug, the fault model working as designed.
    ExpectedFailure(RunError),
    /// Parity violation: wrong bits, or an error a recoverable plan
    /// must absorb.
    Violation(String),
}

/// Classify one run of `plan` against `baseline` (the fault-free
/// product's bytes).
///
/// A recoverable plan ([`FaultPlan::is_recoverable`]) must complete
/// with the exact baseline bytes; anything else is a violation. An
/// unrecoverable plan is allowed to fail with the structured errors
/// its faults are designed to surface — [`RunError::Deadlock`] /
/// [`RunError::Stalled`] for a lost signal, [`RunError::PeCrashed`]
/// with checkpointing off — or to match (a lost signal nobody ever
/// waited on is harmless); a *wrong product* is still a violation.
pub fn classify(plan: &FaultPlan, baseline: &[u8], result: &Result<Vec<u8>, RunError>) -> Outcome {
    match result {
        Ok(bytes) if bytes.as_slice() == baseline => Outcome::Match,
        Ok(_) => Outcome::Violation("product differs bitwise from fault-free baseline".into()),
        Err(e) => {
            let expected = (!plan.lost_signals.is_empty()
                && matches!(e, RunError::Deadlock { .. } | RunError::Stalled { .. }))
                || (!plan.checkpointing && matches!(e, RunError::PeCrashed { .. }));
            if expected {
                Outcome::ExpectedFailure(e.clone())
            } else {
                Outcome::Violation(format!("unexpected error: {e}"))
            }
        }
    }
}

/// A minimized, replayable parity violation.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The seed whose schedule exposed the violation.
    pub seed: u64,
    /// The minimized plan that still reproduces it.
    pub plan: FaultPlan,
    /// Rule count before minimization.
    pub original_rules: usize,
    /// What went wrong, verbatim from [`classify`].
    pub detail: String,
    /// Where the repro file was written, if an output dir was given.
    pub path: Option<PathBuf>,
}

/// Aggregate result of one exploration sweep.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Schedules actually run (≤ requested when the budget expires).
    pub explored: usize,
    /// Runs with bitwise baseline parity.
    pub matches: usize,
    /// Unrecoverable schedules that failed in the expected way.
    pub expected_failures: usize,
    /// Minimized parity violations (empty on a healthy runtime).
    pub violations: Vec<Repro>,
}

/// Knobs for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Root seed; each schedule's seed is split off its PRNG stream.
    pub root_seed: u64,
    /// How many schedules to attempt.
    pub schedules: usize,
    /// Cluster width the schedules target.
    pub pes: usize,
    /// Wall-clock budget; exploration stops early (gracefully, with a
    /// partial report) once it is exhausted. `None` = unbounded.
    pub budget: Option<Duration>,
    /// Directory for `repro-<seed>.navpfault` files. `None` = keep
    /// repros in memory only.
    pub out_dir: Option<PathBuf>,
}

impl ExploreConfig {
    /// A config exploring `schedules` seeds from `root_seed` on `pes`
    /// PEs, unbounded, without writing repro files.
    pub fn new(root_seed: u64, schedules: usize, pes: usize) -> ExploreConfig {
        ExploreConfig {
            root_seed,
            schedules,
            pes,
            budget: None,
            out_dir: None,
        }
    }
}

/// Run the exploration driver: generate `cfg.schedules` seeded
/// schedules, execute each through `run`, check bitwise parity, and
/// minimize + persist every violation.
///
/// `run` executes one complete computation under the given plan and
/// returns the product's bytes (any deterministic encoding — matrix
/// data, digest input, wire form — as long as it is bitwise-faithful).
/// The fault-free baseline is `run(&FaultPlan::new())`; if that
/// fails, exploration cannot start and the error is returned as a
/// string.
pub fn explore<R>(cfg: &ExploreConfig, mut run: R) -> Result<ExploreReport, String>
where
    R: FnMut(&FaultPlan) -> Result<Vec<u8>, RunError>,
{
    let baseline = run(&FaultPlan::new())
        .map_err(|e| format!("fault-free baseline run failed: {e}"))?;
    let start = Instant::now();
    let mut root = SplitMix64::new(cfg.root_seed);
    let mut report = ExploreReport::default();
    for _ in 0..cfg.schedules {
        if let Some(budget) = cfg.budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        let seed = root.split().next_u64();
        let schedule = FaultSchedule::generate(seed, cfg.pes);
        let result = run(&schedule.plan);
        match classify(&schedule.plan, &baseline, &result) {
            Outcome::Match => report.matches += 1,
            Outcome::ExpectedFailure(_) => report.expected_failures += 1,
            Outcome::Violation(detail) => {
                let minimized = minimize(&schedule.plan, |candidate| {
                    matches!(
                        classify(candidate, &baseline, &run(candidate)),
                        Outcome::Violation(_)
                    )
                });
                let mut repro = Repro {
                    seed,
                    original_rules: rule_count(&schedule.plan),
                    plan: minimized,
                    detail,
                    path: None,
                };
                if let Some(dir) = &cfg.out_dir {
                    let path = dir.join(format!("repro-{seed:016x}.navpfault"));
                    write_repro(&path, &repro)
                        .map_err(|e| format!("writing {}: {e}", path.display()))?;
                    repro.path = Some(path);
                }
                report.violations.push(repro);
            }
        }
        report.explored += 1;
    }
    Ok(report)
}

fn rule_count(plan: &FaultPlan) -> usize {
    plan.crashes.len() + plan.hop_faults.len() + plan.lost_signals.len()
}

/// Delta-debugging minimization: greedily drop one fault rule at a
/// time, keeping each removal that still reproduces the failure
/// (`still_failing` returns `true`), and iterate to a fixpoint.
///
/// Seeded plans carry at most a handful of rules, so the greedy 1-rule
/// variant of ddmin converges in O(n²) runs and always returns a plan
/// that is 1-minimal: removing any single remaining rule loses the
/// failure.
pub fn minimize(plan: &FaultPlan, mut still_failing: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut rules = explode(plan);
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        let mut i = 0;
        while i < rules.len() {
            let mut candidate_rules = rules.clone();
            candidate_rules.remove(i);
            let candidate = assemble(plan, &candidate_rules);
            if still_failing(&candidate) {
                rules = candidate_rules;
                shrunk = true;
            } else {
                i += 1;
            }
        }
    }
    assemble(plan, &rules)
}

#[derive(Clone)]
enum Rule {
    Crash(CrashRule),
    Hop(HopFaultRule),
    Lost(LostSignalRule),
}

fn explode(plan: &FaultPlan) -> Vec<Rule> {
    let mut rules = Vec::with_capacity(rule_count(plan));
    rules.extend(plan.crashes.iter().copied().map(Rule::Crash));
    rules.extend(plan.hop_faults.iter().copied().map(Rule::Hop));
    rules.extend(plan.lost_signals.iter().copied().map(Rule::Lost));
    rules
}

/// Rebuild a plan with `rules`, inheriting `template`'s recovery knobs
/// (checkpointing flag, retry budget, recovery cost).
fn assemble(template: &FaultPlan, rules: &[Rule]) -> FaultPlan {
    let mut plan = template.clone();
    plan.crashes.clear();
    plan.hop_faults.clear();
    plan.lost_signals.clear();
    for r in rules {
        match r {
            Rule::Crash(c) => plan.crashes.push(*c),
            Rule::Hop(h) => plan.hop_faults.push(*h),
            Rule::Lost(l) => plan.lost_signals.push(*l),
        }
    }
    plan
}

/// Write a replayable repro file: a commented header (format version,
/// seed, rule counts, failure detail) followed by the plan in
/// [`FaultPlan::to_spec`] form. [`read_repro`] and `NAVP_FAULT_SPEC`
/// both accept the result verbatim.
pub fn write_repro(path: &Path, repro: &Repro) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "# navpfault v1")?;
    writeln!(f, "# seed {:#018x}", repro.seed)?;
    writeln!(
        f,
        "# minimized {} -> {} rules",
        repro.original_rules,
        rule_count(&repro.plan)
    )?;
    for line in repro.detail.lines() {
        writeln!(f, "# detail {line}")?;
    }
    f.write_all(repro.plan.to_spec().as_bytes())?;
    f.sync_all()
}

/// Read a repro (or any `navpfault` spec) file back into a plan.
pub fn read_repro(path: &Path) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    FaultPlan::parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy deterministic "runtime" for driver tests: the product is
    /// 8 bytes; a plan with a crash on PE 0 at run 2 corrupts them (the
    /// planted bug), a lost signal deadlocks, everything else matches.
    fn toy_run(plan: &FaultPlan) -> Result<Vec<u8>, RunError> {
        if !plan.lost_signals.is_empty() {
            return Err(RunError::Deadlock {
                blocked: vec![("toy".into(), "EV".into())],
            });
        }
        if plan.crashes.iter().any(|c| c.pe == 0 && c.at_run == 2) {
            return Ok(vec![0xBA; 8]);
        }
        Ok(vec![0x42; 8])
    }

    #[test]
    fn classify_distinguishes_match_expected_and_violation() {
        let base = vec![0x42; 8];
        let ok = FaultPlan::new().crash_pe(1, 1);
        assert_eq!(classify(&ok, &base, &Ok(base.clone())), Outcome::Match);
        let lossy = FaultPlan::new().lose_signal(0, 1);
        assert!(matches!(
            classify(
                &lossy,
                &base,
                &Err(RunError::Deadlock {
                    blocked: vec![("a".into(), "e".into())]
                })
            ),
            Outcome::ExpectedFailure(_)
        ));
        assert!(matches!(
            classify(&ok, &base, &Ok(vec![0u8; 8])),
            Outcome::Violation(_)
        ));
        assert!(matches!(
            classify(
                &ok,
                &base,
                &Err(RunError::Stalled { live: 1 })
            ),
            Outcome::Violation(_),
        ));
    }

    #[test]
    fn explorer_finds_and_minimizes_the_planted_bug() {
        let dir = std::env::temp_dir().join(format!("navp-explore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut cfg = ExploreConfig::new(7, 400, 3);
        cfg.out_dir = Some(dir.clone());
        let report = explore(&cfg, toy_run).expect("explore");
        assert_eq!(report.explored, 400);
        assert!(report.matches > 0);
        assert!(
            report.expected_failures > 0,
            "lost-signal schedules must appear and classify as expected"
        );
        assert!(
            !report.violations.is_empty(),
            "the planted crash(0,2) bug must be found"
        );
        for v in &report.violations {
            assert_eq!(rule_count(&v.plan), 1, "minimized to the single culprit");
            assert_eq!(v.plan.crashes, vec![CrashRule { pe: 0, at_run: 2 }]);
            let path = v.path.as_ref().expect("repro written");
            let back = read_repro(path).expect("repro parses");
            assert_eq!(back, v.plan, "repro file replays the minimized plan");
            // Replay from the file reproduces the violation deterministically.
            assert!(matches!(
                classify(&back, &[0x42; 8], &toy_run(&back)),
                Outcome::Violation(_)
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exploration_is_deterministic_in_the_root_seed() {
        let cfg = ExploreConfig::new(99, 64, 4);
        let a = explore(&cfg, toy_run).unwrap();
        let b = explore(&cfg, toy_run).unwrap();
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.expected_failures, b.expected_failures);
        assert_eq!(
            a.violations.iter().map(|v| v.seed).collect::<Vec<_>>(),
            b.violations.iter().map(|v| v.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn minimize_is_one_minimal() {
        let plan = FaultPlan::new()
            .crash_pe(0, 2)
            .crash_pe(1, 3)
            .delay_hop(2, 1, 0.5)
            .drop_hop(1, 4);
        // Failure needs *both* crash(0,2) and the delay.
        let needs_pair = |p: &FaultPlan| {
            p.crashes.contains(&CrashRule { pe: 0, at_run: 2 })
                && p.hop_faults.iter().any(|h| h.dst == 2)
        };
        let min = minimize(&plan, needs_pair);
        assert_eq!(rule_count(&min), 2);
        assert!(needs_pair(&min));
        assert!(min.checkpointing, "recovery knobs inherited");
    }

    #[test]
    fn budget_stops_exploration_early() {
        let mut cfg = ExploreConfig::new(1, 1_000_000, 2);
        cfg.budget = Some(Duration::from_millis(0));
        let report = explore(&cfg, toy_run).unwrap();
        assert_eq!(report.explored, 0, "zero budget explores nothing");
    }
}
