//! Deterministic fault injection for the NavP runtime.
//!
//! A [`FaultPlan`] is a declarative list of faults — PE crashes, hop
//! delivery delays/drops, lost event signals — that both executors
//! consume through a [`FaultTracker`]. All trigger points are counted
//! deterministically (the Nth messenger run on a PE, the Nth hop
//! arriving at a PE, the Nth signal emitted on a PE), so a given plan
//! produces the same fault schedule on every run: faults are part of
//! the experiment, not noise.
//!
//! Crashes are quantized to *run boundaries*: a PE fails between
//! messenger runs, never mid-step. Under NavP's non-preemptive
//! execution model a run is the natural unit of atomicity — the same
//! granularity at which `recovery` journals node-variable writes — so
//! boundary crashes lose whole runs, never half of one.

use crate::error::RunError;
use std::time::Duration;

/// What happens to a hop's delivery at the destination PE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HopFault {
    /// Delivery is delayed by this many (virtual or wall) seconds.
    Delay {
        /// Extra latency added to the hop.
        seconds: f64,
    },
    /// The delivery attempt is lost; the runtime retries with backoff.
    Drop,
}

/// Crash PE `pe` when it is about to start its `at_run`-th messenger
/// run (1-based). Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRule {
    /// The PE to crash.
    pub pe: usize,
    /// 1-based run count on that PE at which the crash fires.
    pub at_run: u64,
}

/// Apply `fault` to the `nth` hop (1-based) arriving at PE `dst`.
/// Fires once; a dropped delivery's retries are fresh arrivals and keep
/// counting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopFaultRule {
    /// Destination PE whose arrivals are counted.
    pub dst: usize,
    /// 1-based arrival count at which the fault fires.
    pub nth: u64,
    /// The fault to apply.
    pub fault: HopFault,
}

/// Silently swallow the `nth` event signal (1-based) emitted on PE
/// `pe`. Fires once. Lost signals are *not* recoverable — they model
/// the bug class the paper's counting events are designed to surface —
/// so [`FaultPlan::seeded`] never generates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostSignalRule {
    /// The PE whose emitted signals are counted.
    pub pe: usize,
    /// 1-based signal count at which the loss fires.
    pub nth: u64,
}

/// A deterministic schedule of injected faults plus the recovery knobs
/// the executors honour while absorbing them.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PE crash rules.
    pub crashes: Vec<CrashRule>,
    /// Hop delivery fault rules.
    pub hop_faults: Vec<HopFaultRule>,
    /// Lost-signal rules.
    pub lost_signals: Vec<LostSignalRule>,
    /// When `true` (default) the executors checkpoint messenger state at
    /// hop boundaries and journal node-store writes, so crashes are
    /// recovered. When `false` a crash surfaces as
    /// [`RunError::PeCrashed`].
    pub checkpointing: bool,
    /// How many times a dropped delivery is retried before recovery is
    /// declared failed.
    pub max_send_retries: u32,
    /// Wall-clock backoff between delivery retries (thread executor);
    /// the simulator charges its `as_secs_f64()` in virtual time.
    pub retry_backoff: Duration,
    /// Virtual seconds the simulator charges for rebuilding a crashed
    /// PE (daemon restart + journal replay).
    pub recovery_seconds: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            crashes: Vec::new(),
            hop_faults: Vec::new(),
            lost_signals: Vec::new(),
            checkpointing: true,
            max_send_retries: 3,
            retry_backoff: Duration::from_millis(1),
            recovery_seconds: 0.05,
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults, checkpointing on).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.hop_faults.is_empty() && self.lost_signals.is_empty()
    }

    /// Crash `pe` at its `at_run`-th messenger run (1-based).
    pub fn crash_pe(mut self, pe: usize, at_run: u64) -> FaultPlan {
        self.crashes.push(CrashRule { pe, at_run });
        self
    }

    /// Delay the `nth` hop arriving at `dst` by `seconds`.
    pub fn delay_hop(mut self, dst: usize, nth: u64, seconds: f64) -> FaultPlan {
        self.hop_faults.push(HopFaultRule {
            dst,
            nth,
            fault: HopFault::Delay { seconds },
        });
        self
    }

    /// Drop the `nth` delivery attempt arriving at `dst` (the runtime
    /// retries it).
    pub fn drop_hop(mut self, dst: usize, nth: u64) -> FaultPlan {
        self.hop_faults.push(HopFaultRule {
            dst,
            nth,
            fault: HopFault::Drop,
        });
        self
    }

    /// Swallow the `nth` signal emitted on `pe`.
    pub fn lose_signal(mut self, pe: usize, nth: u64) -> FaultPlan {
        self.lost_signals.push(LostSignalRule { pe, nth });
        self
    }

    /// Disable hop-boundary checkpointing: any crash becomes a
    /// structured [`RunError::PeCrashed`] instead of being recovered.
    pub fn without_checkpointing(mut self) -> FaultPlan {
        self.checkpointing = false;
        self
    }

    /// Tune the dropped-delivery retry budget and backoff.
    pub fn with_retry(mut self, max_send_retries: u32, backoff: Duration) -> FaultPlan {
        self.max_send_retries = max_send_retries;
        self.retry_backoff = backoff;
        self
    }

    /// Set the virtual-time cost the simulator charges per recovery.
    pub fn with_recovery_seconds(mut self, seconds: f64) -> FaultPlan {
        self.recovery_seconds = seconds;
        self
    }

    /// A seeded plan of *recoverable* faults for a `pes`-PE cluster: one
    /// PE crash plus a couple of hop delays/drops, all placed
    /// deterministically from `seed`. Never generates lost signals
    /// (those are unrecoverable by design).
    pub fn seeded(seed: u64, pes: usize) -> FaultPlan {
        let mut rng = SplitMix64(seed);
        let mut plan = FaultPlan::new();
        if pes == 0 {
            return plan;
        }
        let crash_pe = (rng.next_u64() as usize) % pes;
        let crash_run = 1 + rng.next_u64() % 8;
        plan = plan.crash_pe(crash_pe, crash_run);
        for _ in 0..2 {
            let dst = (rng.next_u64() as usize) % pes;
            let nth = 1 + rng.next_u64() % 6;
            if rng.next_u64().is_multiple_of(2) {
                let seconds = 0.001 + (rng.next_u64() % 1000) as f64 * 1e-5;
                plan = plan.delay_hop(dst, nth, seconds);
            } else {
                plan = plan.drop_hop(dst, nth);
            }
        }
        plan
    }
}

/// SplitMix64 — local deterministic generator for [`FaultPlan::seeded`].
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Counters reporting what fault machinery actually did during a run.
/// Attached to both executors' reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// PE crashes injected (and, with checkpointing, recovered).
    pub crashes: u64,
    /// Checkpointed messengers re-delivered after crashes.
    pub redelivered: u64,
    /// Journaled node-store writes replayed during store rebuilds.
    pub replayed_writes: u64,
    /// Delivery retries performed after dropped sends.
    pub send_retries: u64,
    /// Hop deliveries delayed by an injected fault.
    pub hops_delayed: u64,
    /// Hop delivery attempts dropped by an injected fault.
    pub hops_dropped: u64,
    /// Event signals swallowed by an injected fault.
    pub signals_lost: u64,
}

impl FaultStats {
    /// `true` when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    /// Accumulate another run's counters into this one (for aggregating
    /// across the runs of a table or suite).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.crashes += other.crashes;
        self.redelivered += other.redelivered;
        self.replayed_writes += other.replayed_writes;
        self.send_retries += other.send_retries;
        self.hops_delayed += other.hops_delayed;
        self.hops_dropped += other.hops_dropped;
        self.signals_lost += other.signals_lost;
    }
}

/// Runtime companion of a [`FaultPlan`]: owns the per-PE counters and
/// answers "does a fault fire here?" at each instrumentation point.
/// Each rule fires at most once.
#[derive(Debug)]
pub struct FaultTracker {
    plan: FaultPlan,
    /// Messenger runs completed per PE.
    runs: Vec<u64>,
    /// Hop delivery attempts arrived per PE.
    arrivals: Vec<u64>,
    /// Signals emitted per PE.
    signals: Vec<u64>,
    crash_fired: Vec<bool>,
    hop_fired: Vec<bool>,
    signal_fired: Vec<bool>,
}

impl FaultTracker {
    /// A tracker for `plan` over a `pes`-PE cluster.
    pub fn new(plan: FaultPlan, pes: usize) -> FaultTracker {
        let crash_fired = vec![false; plan.crashes.len()];
        let hop_fired = vec![false; plan.hop_faults.len()];
        let signal_fired = vec![false; plan.lost_signals.len()];
        FaultTracker {
            plan,
            runs: vec![0; pes],
            arrivals: vec![0; pes],
            signals: vec![0; pes],
            crash_fired,
            hop_fired,
            signal_fired,
        }
    }

    /// The plan driving this tracker.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Called when PE `pe` is about to start a messenger run. Returns
    /// `Some(run_count)` when a crash rule fires here — the PE must
    /// crash *before* the run executes.
    pub fn on_run(&mut self, pe: usize) -> Option<u64> {
        self.runs[pe] += 1;
        let run = self.runs[pe];
        for (i, rule) in self.plan.crashes.iter().enumerate() {
            if !self.crash_fired[i] && rule.pe == pe && rule.at_run == run {
                self.crash_fired[i] = true;
                return Some(run);
            }
        }
        None
    }

    /// Called per delivery attempt of a hop arriving at PE `dst`.
    /// Returns the fault to apply, if one fires.
    pub fn on_hop(&mut self, dst: usize) -> Option<HopFault> {
        self.arrivals[dst] += 1;
        let n = self.arrivals[dst];
        for (i, rule) in self.plan.hop_faults.iter().enumerate() {
            if !self.hop_fired[i] && rule.dst == dst && rule.nth == n {
                self.hop_fired[i] = true;
                return Some(rule.fault);
            }
        }
        None
    }

    /// Called when a messenger on PE `pe` emits a signal. Returns `true`
    /// when the signal must be swallowed.
    pub fn on_signal(&mut self, pe: usize) -> bool {
        self.signals[pe] += 1;
        let n = self.signals[pe];
        for (i, rule) in self.plan.lost_signals.iter().enumerate() {
            if !self.signal_fired[i] && rule.pe == pe && rule.nth == n {
                self.signal_fired[i] = true;
                return true;
            }
        }
        false
    }

    /// The structured error for a crash on `pe` when checkpointing is
    /// off.
    pub fn crash_error(pe: usize, run: u64) -> RunError {
        RunError::PeCrashed { pe, run }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().crash_pe(0, 1).is_empty());
    }

    #[test]
    fn crash_fires_once_at_exact_run() {
        let plan = FaultPlan::new().crash_pe(1, 3);
        let mut t = FaultTracker::new(plan, 2);
        assert_eq!(t.on_run(1), None);
        assert_eq!(t.on_run(0), None); // other PE's count is independent
        assert_eq!(t.on_run(1), None);
        assert_eq!(t.on_run(1), Some(3));
        assert_eq!(t.on_run(1), None); // single-shot
    }

    #[test]
    fn hop_fault_counts_arrivals_per_pe() {
        let plan = FaultPlan::new().drop_hop(0, 2).delay_hop(1, 1, 0.5);
        let mut t = FaultTracker::new(plan, 2);
        assert_eq!(t.on_hop(1), Some(HopFault::Delay { seconds: 0.5 }));
        assert_eq!(t.on_hop(0), None);
        assert_eq!(t.on_hop(0), Some(HopFault::Drop));
        assert_eq!(t.on_hop(0), None);
    }

    #[test]
    fn lost_signal_fires_once() {
        let plan = FaultPlan::new().lose_signal(0, 2);
        let mut t = FaultTracker::new(plan, 1);
        assert!(!t.on_signal(0));
        assert!(t.on_signal(0));
        assert!(!t.on_signal(0));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_recoverable() {
        let a = FaultPlan::seeded(42, 4);
        let b = FaultPlan::seeded(42, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.lost_signals.is_empty(), "seeded plans stay recoverable");
        assert!(a.checkpointing);
        assert!(a.crashes.iter().all(|c| c.pe < 4));
        let c = FaultPlan::seeded(43, 4);
        assert_ne!(a, c, "different seeds give different plans");
        assert!(FaultPlan::seeded(7, 0).is_empty());
    }

    #[test]
    fn stats_any() {
        assert!(!FaultStats::default().any());
        let s = FaultStats {
            crashes: 1,
            ..FaultStats::default()
        };
        assert!(s.any());
    }
}
