//! Deterministic fault injection for the NavP runtime.
//!
//! A [`FaultPlan`] is a declarative list of faults — PE crashes, hop
//! delivery delays/drops, lost event signals — that both executors
//! consume through a [`FaultTracker`]. All trigger points are counted
//! deterministically (the Nth messenger run on a PE, the Nth hop
//! arriving at a PE, the Nth signal emitted on a PE), so a given plan
//! produces the same fault schedule on every run: faults are part of
//! the experiment, not noise.
//!
//! Crashes are quantized to *run boundaries*: a PE fails between
//! messenger runs, never mid-step. Under NavP's non-preemptive
//! execution model a run is the natural unit of atomicity — the same
//! granularity at which `recovery` journals node-variable writes — so
//! boundary crashes lose whole runs, never half of one.

use crate::error::RunError;
use std::time::Duration;

/// What happens to a hop's delivery at the destination PE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HopFault {
    /// Delivery is delayed by this many (virtual or wall) seconds.
    Delay {
        /// Extra latency added to the hop.
        seconds: f64,
    },
    /// The delivery attempt is lost; the runtime retries with backoff.
    Drop,
}

/// Crash PE `pe` when it is about to start its `at_run`-th messenger
/// run (1-based). Fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRule {
    /// The PE to crash.
    pub pe: usize,
    /// 1-based run count on that PE at which the crash fires.
    pub at_run: u64,
}

/// Apply `fault` to the `nth` hop (1-based) arriving at PE `dst`.
/// Fires once; a dropped delivery's retries are fresh arrivals and keep
/// counting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopFaultRule {
    /// Destination PE whose arrivals are counted.
    pub dst: usize,
    /// 1-based arrival count at which the fault fires.
    pub nth: u64,
    /// The fault to apply.
    pub fault: HopFault,
}

/// Silently swallow the `nth` event signal (1-based) emitted on PE
/// `pe`. Fires once. Lost signals are *not* recoverable — they model
/// the bug class the paper's counting events are designed to surface —
/// so [`FaultPlan::seeded`] generates them only rarely and the
/// fault-space explorer classifies the resulting deadlock/stall as the
/// *expected* outcome rather than a parity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostSignalRule {
    /// The PE whose emitted signals are counted.
    pub pe: usize,
    /// 1-based signal count at which the loss fires.
    pub nth: u64,
}

/// A deterministic schedule of injected faults plus the recovery knobs
/// the executors honour while absorbing them.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// PE crash rules.
    pub crashes: Vec<CrashRule>,
    /// Hop delivery fault rules.
    pub hop_faults: Vec<HopFaultRule>,
    /// Lost-signal rules.
    pub lost_signals: Vec<LostSignalRule>,
    /// When `true` (default) the executors checkpoint messenger state at
    /// hop boundaries and journal node-store writes, so crashes are
    /// recovered. When `false` a crash surfaces as
    /// [`RunError::PeCrashed`].
    pub checkpointing: bool,
    /// How many times a dropped delivery is retried before recovery is
    /// declared failed.
    pub max_send_retries: u32,
    /// Wall-clock backoff between delivery retries (thread executor);
    /// the simulator charges its `as_secs_f64()` in virtual time.
    pub retry_backoff: Duration,
    /// Virtual seconds the simulator charges for rebuilding a crashed
    /// PE (daemon restart + journal replay).
    pub recovery_seconds: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            crashes: Vec::new(),
            hop_faults: Vec::new(),
            lost_signals: Vec::new(),
            checkpointing: true,
            max_send_retries: 3,
            retry_backoff: Duration::from_millis(1),
            recovery_seconds: 0.05,
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults, checkpointing on).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.hop_faults.is_empty() && self.lost_signals.is_empty()
    }

    /// Crash `pe` at its `at_run`-th messenger run (1-based).
    pub fn crash_pe(mut self, pe: usize, at_run: u64) -> FaultPlan {
        self.crashes.push(CrashRule { pe, at_run });
        self
    }

    /// Delay the `nth` hop arriving at `dst` by `seconds`.
    pub fn delay_hop(mut self, dst: usize, nth: u64, seconds: f64) -> FaultPlan {
        self.hop_faults.push(HopFaultRule {
            dst,
            nth,
            fault: HopFault::Delay { seconds },
        });
        self
    }

    /// Drop the `nth` delivery attempt arriving at `dst` (the runtime
    /// retries it).
    pub fn drop_hop(mut self, dst: usize, nth: u64) -> FaultPlan {
        self.hop_faults.push(HopFaultRule {
            dst,
            nth,
            fault: HopFault::Drop,
        });
        self
    }

    /// Swallow the `nth` signal emitted on `pe`.
    pub fn lose_signal(mut self, pe: usize, nth: u64) -> FaultPlan {
        self.lost_signals.push(LostSignalRule { pe, nth });
        self
    }

    /// Disable hop-boundary checkpointing: any crash becomes a
    /// structured [`RunError::PeCrashed`] instead of being recovered.
    pub fn without_checkpointing(mut self) -> FaultPlan {
        self.checkpointing = false;
        self
    }

    /// Tune the dropped-delivery retry budget and backoff.
    pub fn with_retry(mut self, max_send_retries: u32, backoff: Duration) -> FaultPlan {
        self.max_send_retries = max_send_retries;
        self.retry_backoff = backoff;
        self
    }

    /// Set the virtual-time cost the simulator charges per recovery.
    pub fn with_recovery_seconds(mut self, seconds: f64) -> FaultPlan {
        self.recovery_seconds = seconds;
        self
    }

    /// A seeded plan covering all four fault kinds for a `pes`-PE
    /// cluster, placed deterministically from `seed`.
    ///
    /// Each kind draws from its own [`SplitMix64::split`] stream, so
    /// extending one kind's sampling never perturbs the others' plans
    /// for existing seeds. Every plan carries at least one crash and at
    /// least one hop fault (delays and drops both appear across the
    /// seed space); about one seed in eight also loses a signal —
    /// unrecoverable by design, which the fault-space explorer treats
    /// as an *expected* deadlock/stall rather than a parity violation.
    pub fn seeded(seed: u64, pes: usize) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        if pes == 0 {
            return plan;
        }
        let mut crash_rng = rng.split();
        let mut hop_rng = rng.split();
        let mut signal_rng = rng.split();
        let crashes = 1 + crash_rng.next_u64() % 2;
        for _ in 0..crashes {
            let pe = (crash_rng.next_u64() as usize) % pes;
            let run = 1 + crash_rng.next_u64() % 8;
            plan = plan.crash_pe(pe, run);
        }
        let hops = 1 + hop_rng.next_u64() % 3;
        for _ in 0..hops {
            let dst = (hop_rng.next_u64() as usize) % pes;
            let nth = 1 + hop_rng.next_u64() % 6;
            if hop_rng.next_u64().is_multiple_of(2) {
                let seconds = 0.001 + (hop_rng.next_u64() % 1000) as f64 * 1e-5;
                plan = plan.delay_hop(dst, nth, seconds);
            } else {
                plan = plan.drop_hop(dst, nth);
            }
        }
        if signal_rng.next_u64().is_multiple_of(8) {
            let pe = (signal_rng.next_u64() as usize) % pes;
            let nth = 1 + signal_rng.next_u64() % 4;
            plan = plan.lose_signal(pe, nth);
        }
        plan
    }

    /// `true` when every fault in the plan is recoverable under
    /// checkpointing: no lost signals (those deadlock a waiter by
    /// design) and checkpointing itself is on.
    pub fn is_recoverable(&self) -> bool {
        self.checkpointing && self.lost_signals.is_empty()
    }

    /// Render the plan as the line-oriented `navpfault` text format
    /// shared by repro files and `NAVP_FAULT_SPEC` env injection.
    /// [`FaultPlan::parse_spec`] inverts this exactly (f64 fields use
    /// Rust's shortest round-trip formatting).
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for c in &self.crashes {
            out.push_str(&format!("crash pe={} run={}\n", c.pe, c.at_run));
        }
        for h in &self.hop_faults {
            match h.fault {
                HopFault::Delay { seconds } => out.push_str(&format!(
                    "delay pe={} arrival={} seconds={}\n",
                    h.dst, h.nth, seconds
                )),
                HopFault::Drop => {
                    out.push_str(&format!("drop pe={} arrival={}\n", h.dst, h.nth))
                }
            }
        }
        for s in &self.lost_signals {
            out.push_str(&format!("lose-signal pe={} signal={}\n", s.pe, s.nth));
        }
        if !self.checkpointing {
            out.push_str("checkpointing off\n");
        }
        let d = FaultPlan::default();
        if self.max_send_retries != d.max_send_retries || self.retry_backoff != d.retry_backoff {
            out.push_str(&format!(
                "retry max={} backoff-ms={}\n",
                self.max_send_retries,
                self.retry_backoff.as_millis()
            ));
        }
        if self.recovery_seconds != d.recovery_seconds {
            out.push_str(&format!("recovery-seconds {}\n", self.recovery_seconds));
        }
        out
    }

    /// Parse the `navpfault` text format produced by
    /// [`FaultPlan::to_spec`]. Blank lines and `#` comments are
    /// ignored; any other unrecognized line is a descriptive error.
    pub fn parse_spec(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            let mut words = line.split_whitespace();
            let verb = words.next().expect("non-empty line has a first word");
            let rest: Vec<&str> = words.collect();
            match verb {
                "crash" => {
                    let pe = field_u64(&rest, "pe").ok_or_else(|| err("crash needs pe=N"))?;
                    let run = field_u64(&rest, "run").ok_or_else(|| err("crash needs run=N"))?;
                    plan = plan.crash_pe(pe as usize, run);
                }
                "delay" => {
                    let pe = field_u64(&rest, "pe").ok_or_else(|| err("delay needs pe=N"))?;
                    let nth =
                        field_u64(&rest, "arrival").ok_or_else(|| err("delay needs arrival=N"))?;
                    let secs =
                        field_f64(&rest, "seconds").ok_or_else(|| err("delay needs seconds=F"))?;
                    plan = plan.delay_hop(pe as usize, nth, secs);
                }
                "drop" => {
                    let pe = field_u64(&rest, "pe").ok_or_else(|| err("drop needs pe=N"))?;
                    let nth =
                        field_u64(&rest, "arrival").ok_or_else(|| err("drop needs arrival=N"))?;
                    plan = plan.drop_hop(pe as usize, nth);
                }
                "lose-signal" => {
                    let pe = field_u64(&rest, "pe").ok_or_else(|| err("lose-signal needs pe=N"))?;
                    let nth = field_u64(&rest, "signal")
                        .ok_or_else(|| err("lose-signal needs signal=N"))?;
                    plan = plan.lose_signal(pe as usize, nth);
                }
                "checkpointing" => match rest.as_slice() {
                    ["off"] => plan = plan.without_checkpointing(),
                    ["on"] => plan.checkpointing = true,
                    _ => return Err(err("checkpointing takes `on` or `off`")),
                },
                "retry" => {
                    let max = field_u64(&rest, "max").ok_or_else(|| err("retry needs max=N"))?;
                    let backoff = field_u64(&rest, "backoff-ms")
                        .ok_or_else(|| err("retry needs backoff-ms=N"))?;
                    plan = plan.with_retry(max as u32, Duration::from_millis(backoff));
                }
                "recovery-seconds" => {
                    let secs: f64 = rest
                        .first()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("recovery-seconds takes one float"))?;
                    plan = plan.with_recovery_seconds(secs);
                }
                _ => return Err(err("unknown fault verb")),
            }
        }
        Ok(plan)
    }

    /// Read a plan from the `NAVP_FAULT_SPEC` environment variable, if
    /// set. `Ok(None)` means the variable is unset (no injection); a
    /// malformed spec is a descriptive `Err`.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULT_SPEC_ENV) {
            Ok(text) => FaultPlan::parse_spec(&text).map(Some),
            Err(_) => Ok(None),
        }
    }
}

/// Environment variable holding a `navpfault` spec ([`FaultPlan::parse_spec`])
/// to inject into a run without touching code.
pub const FAULT_SPEC_ENV: &str = "NAVP_FAULT_SPEC";

fn field_u64(words: &[&str], key: &str) -> Option<u64> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

fn field_f64(words: &[&str], key: &str) -> Option<f64> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

/// SplitMix64 — the deterministic generator behind [`FaultPlan::seeded`]
/// and the fault-space explorer ([`crate::explore`]).
///
/// Splittable: [`SplitMix64::split`] derives an independent child
/// stream, so each fault kind (and each explored schedule) gets its own
/// stream and sampling one never perturbs the others.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive an independent child generator (one draw from this
    /// stream becomes the child's seed).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64(self.next_u64())
    }
}

/// Counters reporting what fault machinery actually did during a run.
/// Attached to both executors' reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// PE crashes injected (and, with checkpointing, recovered).
    pub crashes: u64,
    /// Checkpointed messengers re-delivered after crashes.
    pub redelivered: u64,
    /// Journaled node-store writes replayed during store rebuilds.
    pub replayed_writes: u64,
    /// Delivery retries performed after dropped sends.
    pub send_retries: u64,
    /// Hop deliveries delayed by an injected fault.
    pub hops_delayed: u64,
    /// Hop delivery attempts dropped by an injected fault.
    pub hops_dropped: u64,
    /// Event signals swallowed by an injected fault.
    pub signals_lost: u64,
}

impl FaultStats {
    /// `true` when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    /// Accumulate another run's counters into this one (for aggregating
    /// across the runs of a table or suite).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.crashes += other.crashes;
        self.redelivered += other.redelivered;
        self.replayed_writes += other.replayed_writes;
        self.send_retries += other.send_retries;
        self.hops_delayed += other.hops_delayed;
        self.hops_dropped += other.hops_dropped;
        self.signals_lost += other.signals_lost;
    }
}

/// Runtime companion of a [`FaultPlan`]: owns the per-PE counters and
/// answers "does a fault fire here?" at each instrumentation point.
/// Each rule fires at most once.
#[derive(Debug)]
pub struct FaultTracker {
    plan: FaultPlan,
    /// Messenger runs completed per PE.
    runs: Vec<u64>,
    /// Hop delivery attempts arrived per PE.
    arrivals: Vec<u64>,
    /// Signals emitted per PE.
    signals: Vec<u64>,
    crash_fired: Vec<bool>,
    hop_fired: Vec<bool>,
    signal_fired: Vec<bool>,
}

impl FaultTracker {
    /// A tracker for `plan` over a `pes`-PE cluster.
    pub fn new(plan: FaultPlan, pes: usize) -> FaultTracker {
        let crash_fired = vec![false; plan.crashes.len()];
        let hop_fired = vec![false; plan.hop_faults.len()];
        let signal_fired = vec![false; plan.lost_signals.len()];
        FaultTracker {
            plan,
            runs: vec![0; pes],
            arrivals: vec![0; pes],
            signals: vec![0; pes],
            crash_fired,
            hop_fired,
            signal_fired,
        }
    }

    /// The plan driving this tracker.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Called when PE `pe` is about to start a messenger run. Returns
    /// `Some(run_count)` when a crash rule fires here — the PE must
    /// crash *before* the run executes.
    pub fn on_run(&mut self, pe: usize) -> Option<u64> {
        self.runs[pe] += 1;
        let run = self.runs[pe];
        for (i, rule) in self.plan.crashes.iter().enumerate() {
            if !self.crash_fired[i] && rule.pe == pe && rule.at_run == run {
                self.crash_fired[i] = true;
                return Some(run);
            }
        }
        None
    }

    /// Called per delivery attempt of a hop arriving at PE `dst`.
    /// Returns the fault to apply, if one fires.
    pub fn on_hop(&mut self, dst: usize) -> Option<HopFault> {
        self.arrivals[dst] += 1;
        let n = self.arrivals[dst];
        for (i, rule) in self.plan.hop_faults.iter().enumerate() {
            if !self.hop_fired[i] && rule.dst == dst && rule.nth == n {
                self.hop_fired[i] = true;
                return Some(rule.fault);
            }
        }
        None
    }

    /// Called when a messenger on PE `pe` emits a signal. Returns `true`
    /// when the signal must be swallowed.
    pub fn on_signal(&mut self, pe: usize) -> bool {
        self.signals[pe] += 1;
        let n = self.signals[pe];
        for (i, rule) in self.plan.lost_signals.iter().enumerate() {
            if !self.signal_fired[i] && rule.pe == pe && rule.nth == n {
                self.signal_fired[i] = true;
                return true;
            }
        }
        false
    }

    /// The structured error for a crash on `pe` when checkpointing is
    /// off.
    pub fn crash_error(pe: usize, run: u64) -> RunError {
        RunError::PeCrashed { pe, run }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().crash_pe(0, 1).is_empty());
    }

    #[test]
    fn crash_fires_once_at_exact_run() {
        let plan = FaultPlan::new().crash_pe(1, 3);
        let mut t = FaultTracker::new(plan, 2);
        assert_eq!(t.on_run(1), None);
        assert_eq!(t.on_run(0), None); // other PE's count is independent
        assert_eq!(t.on_run(1), None);
        assert_eq!(t.on_run(1), Some(3));
        assert_eq!(t.on_run(1), None); // single-shot
    }

    #[test]
    fn hop_fault_counts_arrivals_per_pe() {
        let plan = FaultPlan::new().drop_hop(0, 2).delay_hop(1, 1, 0.5);
        let mut t = FaultTracker::new(plan, 2);
        assert_eq!(t.on_hop(1), Some(HopFault::Delay { seconds: 0.5 }));
        assert_eq!(t.on_hop(0), None);
        assert_eq!(t.on_hop(0), Some(HopFault::Drop));
        assert_eq!(t.on_hop(0), None);
    }

    #[test]
    fn lost_signal_fires_once() {
        let plan = FaultPlan::new().lose_signal(0, 2);
        let mut t = FaultTracker::new(plan, 1);
        assert!(!t.on_signal(0));
        assert!(t.on_signal(0));
        assert!(!t.on_signal(0));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 4);
        let b = FaultPlan::seeded(42, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.checkpointing);
        assert!(a.crashes.iter().all(|c| c.pe < 4));
        assert!(a.hop_faults.iter().all(|h| h.dst < 4));
        assert!(a.lost_signals.iter().all(|s| s.pe < 4));
        let c = FaultPlan::seeded(43, 4);
        assert_ne!(a, c, "different seeds give different plans");
        assert!(FaultPlan::seeded(7, 0).is_empty());
    }

    #[test]
    fn seeded_plans_cover_all_four_fault_kinds() {
        let (mut delays, mut drops, mut losses, mut recoverable) = (0, 0, 0, 0);
        for seed in 0..256u64 {
            let p = FaultPlan::seeded(seed, 4);
            assert!(!p.crashes.is_empty(), "every seeded plan crashes something");
            assert!(!p.hop_faults.is_empty(), "every seeded plan faults a hop");
            for h in &p.hop_faults {
                match h.fault {
                    HopFault::Delay { seconds } => {
                        assert!(seconds > 0.0);
                        delays += 1;
                    }
                    HopFault::Drop => drops += 1,
                }
            }
            losses += p.lost_signals.len();
            recoverable += p.is_recoverable() as usize;
        }
        assert!(delays > 0, "delayed hops must appear in the seed space");
        assert!(drops > 0, "dropped hops must appear in the seed space");
        assert!(losses > 0, "lost signals must appear in the seed space");
        assert!(
            recoverable > 128,
            "most seeded plans stay recoverable ({recoverable}/256)"
        );
    }

    #[test]
    fn spec_round_trips_every_rule_kind() {
        let plan = FaultPlan::new()
            .crash_pe(1, 3)
            .delay_hop(2, 5, 0.00125)
            .drop_hop(0, 1)
            .lose_signal(3, 2)
            .with_retry(7, Duration::from_millis(25))
            .with_recovery_seconds(1.5)
            .without_checkpointing();
        let spec = plan.to_spec();
        let back = FaultPlan::parse_spec(&spec).expect("own spec parses");
        assert_eq!(back, plan, "spec:\n{spec}");
    }

    #[test]
    fn spec_round_trips_seeded_plans_bitwise() {
        // Property: for any seeded plan, to_spec ∘ parse_spec is the
        // identity — including exact f64 delay values (Rust's shortest
        // round-trip float formatting).
        for seed in 0..512u64 {
            for pes in 1..5usize {
                let plan = FaultPlan::seeded(seed, pes);
                let back = FaultPlan::parse_spec(&plan.to_spec())
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                assert_eq!(back, plan, "seed {seed} pes {pes}");
            }
        }
    }

    #[test]
    fn spec_ignores_comments_and_rejects_junk() {
        let plan = FaultPlan::parse_spec(
            "# repro header\n\n  crash pe=0 run=1  \n# trailing note\n",
        )
        .expect("comments and blanks are fine");
        assert_eq!(plan.crashes, vec![CrashRule { pe: 0, at_run: 1 }]);

        for bad in [
            "crash pe=0",                  // missing run
            "delay pe=0 arrival=1",        // missing seconds
            "warp pe=0 run=1",             // unknown verb
            "checkpointing maybe",         // bad flag
            "retry max=x backoff-ms=1",    // unparsable number
            "recovery-seconds",            // missing value
        ] {
            let err = FaultPlan::parse_spec(bad).expect_err(bad);
            assert!(err.starts_with("line 1:"), "{bad}: {err}");
        }
    }

    #[test]
    fn default_plan_spec_is_empty_and_parses_back() {
        let spec = FaultPlan::new().to_spec();
        assert!(spec.is_empty(), "defaults are elided: {spec:?}");
        assert_eq!(FaultPlan::parse_spec(&spec).unwrap(), FaultPlan::new());
    }

    #[test]
    fn splitmix_streams_are_independent() {
        let mut a = SplitMix64::new(9);
        let mut b = a.split();
        let mut c = a.split();
        assert_ne!(b.next_u64(), c.next_u64(), "children diverge");
        let mut a2 = SplitMix64::new(9);
        let mut b2 = a2.split();
        assert_eq!(b2.next_u64(), {
            let mut b3 = SplitMix64::new(9).split();
            b3.next_u64()
        });
    }

    #[test]
    fn stats_any() {
        assert!(!FaultStats::default().any());
        let s = FaultStats {
            crashes: 1,
            ..FaultStats::default()
        };
        assert!(s.any());
    }
}
