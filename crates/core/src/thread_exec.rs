//! The wall-clock executor: one OS thread per PE.
//!
//! [`ThreadExecutor`] is the MESSENGERS *daemon* reproduced with modern
//! threads: each PE runs a daemon loop that pops runnable messengers,
//! steps them until they block or leave, and forwards hopping messengers
//! to the destination daemon over a channel. The box holding the
//! messenger's agent variables is what actually moves — code never does,
//! exactly as in the paper ("although the state of the computation is
//! moved on each hop, the code is not moved").
//!
//! This executor does real work in real time (the arithmetic inside each
//! step is what is being measured), so `charge_*` calls are ignored. Use
//! it for benchmarks and to validate on live hardware the orderings the
//! virtual-time executor predicts.
//!
//! A watchdog converts silent deadlocks (every messenger parked on an
//! event nobody will signal) into [`RunError::Stalled`].
//!
//! ## Fault tolerance
//!
//! When the cluster carries a [`FaultPlan`](crate::FaultPlan), the
//! executor injects its faults and (with checkpointing on) absorbs PE
//! crashes. A crash is quantized to a *run boundary*: before each
//! messenger run the daemon asks the tracker whether its PE fails here.
//! On a crash the daemon restarts itself in place — it discards its
//! local queue and store, bumps its delivery *epoch*, rebuilds the store
//! as `initial + write-journal replay`, and re-delivers the last
//! checkpoint of every messenger in its failure domain. The epoch
//! defeats double delivery: every channel send is stamped with the
//! destination's epoch read under the same lock that registers the
//! checkpoint, so a message racing a crash is either redelivered from
//! its checkpoint (and the stale original discarded on receipt) or
//! delivered normally — never both. Messengers parked on events live in
//! the shared event service, which survives daemon restarts.

use crate::agent::{Effect, Messenger, MsgrCtx, StepOutputs};
use crate::cluster::{Cluster, ClusterParts};
use crate::durable::{self, DurableCodec, Manifest, ParkedWaiter};
use crate::error::RunError;
use crate::fault::{FaultPlan, FaultStats, FaultTracker, HopFault};
use crate::recovery::{CheckpointTable, WriteJournal};
use crate::sim_exec::HOP_STATE_BYTES;
use navp_metrics::RunMetrics;
use navp_obs::EventKind as ObsKind;
use navp_sim::key::{EventKey, NodeId};
use navp_sim::store::NodeStore;
use navp_trace::recorder::DEFAULT_CAPACITY;
use navp_trace::{merge_pe_traces, PeLog, PeRecorder, Trace, TraceEvent, TraceKind};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Trace context a delivery carries, so the *receiving* daemon can
/// record the hop transfer or event wait into its own recorder without
/// any shared trace state. `None` on untraced runs.
enum DeliveryMeta {
    /// An inter-PE hop: where from, when it left (shared anchor clock),
    /// and how many payload bytes moved.
    Hop { from: NodeId, sent_ns: u64, bytes: u64 },
    /// A woken event waiter: when it parked (shared anchor clock).
    Wake { parked_ns: u64 },
}

enum DaemonMsg {
    Agent {
        /// Executor-wide messenger id (checkpoint key).
        id: u64,
        /// Destination epoch stamped at send time; stale epochs are
        /// discarded on receipt (the crash already re-delivered them).
        epoch: u64,
        msgr: Box<dyn Messenger>,
        /// What to trace about this delivery (`None` when untraced).
        meta: Option<DeliveryMeta>,
    },
    Shutdown,
}

#[derive(Default)]
struct EventState {
    count: u64,
    /// Parked messengers: (id, messenger, home PE, park timestamp on
    /// the shared anchor clock — 0 when neither traced nor metered).
    waiters: VecDeque<(u64, Box<dyn Messenger>, NodeId, u64)>,
}

/// Recovery state shared by all daemons, behind one lock so that
/// epoch reads, checkpoint registration and crash collection serialize
/// against each other (the exactly-once argument depends on it).
struct Recovery {
    tracker: FaultTracker,
    ckpt: CheckpointTable,
    journals: Vec<WriteJournal>,
    /// Pristine pre-run stores; a crashed PE's store is rebuilt as
    /// `initial + journal replay`.
    initial: Vec<NodeStore>,
    /// Per-PE delivery epoch, bumped on each crash of that PE.
    epochs: Vec<u64>,
    stats: FaultStats,
}

/// Durable-spill sink shared by all daemons: the directory, codec,
/// session nonce and monotone boundary counter. Locked *after* the
/// recovery lock (recovery → durable → events is the global order).
struct DurableSink {
    dir: PathBuf,
    codec: Arc<dyn DurableCodec>,
    nonce: u64,
    boundary: u64,
}

/// Spill the whole cluster's consistent cut under the recovery lock.
/// Every PE's committed store is `initial + journal`, every live
/// messenger sits in the checkpoint table, and the event service holds
/// the parked waiters — the same invariants in-memory crash recovery
/// relies on, so the cut is consistent even while other daemons are
/// mid-run (their uncommitted writes simply aren't in it yet).
fn spill_threads(
    sink: &mut DurableSink,
    r: &Recovery,
    pes: usize,
    events: &Mutex<HashMap<EventKey, EventState>>,
    metrics: Option<&RunMetrics>,
) -> Result<(), RunError> {
    sink.boundary += 1;
    let mut waiters = Vec::new();
    let mut counts = Vec::new();
    {
        let ev = events.lock().unwrap();
        let mut keys: Vec<&EventKey> = ev.keys().collect();
        keys.sort();
        for key in keys {
            let st = &ev[key];
            if st.count > 0 {
                counts.push((*key, st.count));
            }
            for (id, msgr, origin, _) in &st.waiters {
                let snap = msgr
                    .wire_snapshot()
                    .ok_or_else(|| RunError::NotSerializable {
                        agent: msgr.label(),
                    })?;
                waiters.push(ParkedWaiter {
                    id: *id,
                    origin: *origin as u32,
                    key: *key,
                    snap,
                });
            }
        }
    }
    for pe in 0..pes {
        let store = durable::committed_store(&r.initial[pe], &r.journals[pe]);
        let (w, c) = if pe == 0 {
            (std::mem::take(&mut waiters), std::mem::take(&mut counts))
        } else {
            (Vec::new(), Vec::new())
        };
        let cut = durable::build_cut(
            pe,
            pes,
            sink.nonce,
            sink.boundary,
            &store,
            &r.ckpt,
            w,
            c,
            sink.codec.as_ref(),
        )
        .map_err(|e| RunError::Transport {
            detail: e.to_string(),
        })?;
        let bytes = durable::write_cut(&sink.dir, &cut).map_err(|e| RunError::Transport {
            detail: e.to_string(),
        })?;
        if let Some(m) = metrics {
            m.durable_flushes.inc();
            m.durable_bytes.add(bytes);
        }
    }
    Ok(())
}

struct Shared {
    chans: Vec<Sender<DaemonMsg>>,
    live: AtomicUsize,
    progress: AtomicU64,
    steps: AtomicU64,
    hops: AtomicU64,
    /// Payload + fixed state bytes moved over all hops — the numerator
    /// of the effective hop bandwidth the perf baseline reports.
    hop_bytes: AtomicU64,
    next_id: AtomicU64,
    events: Mutex<HashMap<EventKey, EventState>>,
    failure: Mutex<Option<RunError>>,
    recovery: Option<Mutex<Recovery>>,
    /// Durable checkpoint sink, `None` unless requested — durable-off
    /// runs perform zero filesystem syscalls.
    durable: Option<Mutex<DurableSink>>,
    /// Wall tracing on? All daemons anchor their recorders at `anchor`,
    /// so per-PE timestamps are directly comparable (offsets are zero).
    trace: bool,
    anchor: Instant,
    /// Live metric set, `None` unless requested — the `Option` test is
    /// the single branch metrics-off hot paths pay (same discipline as
    /// `PeRecorder::is_enabled`).
    metrics: Option<Arc<RunMetrics>>,
}

impl Shared {
    fn shutdown_all(&self) {
        for ch in &self.chans {
            // Ignore send failures: a daemon that already exited is fine.
            let _ = ch.send(DaemonMsg::Shutdown);
        }
    }

    fn fail(&self, err: RunError) {
        let mut f = self.failure.lock().unwrap();
        if f.is_none() {
            *f = Some(err);
        }
        drop(f);
        self.shutdown_all();
    }

    /// Deliver messenger `id` to `dst`: checkpoint it into the
    /// destination's failure domain, stamp the destination epoch, and
    /// send. Hop deliveries (`is_hop`) additionally pass through the
    /// fault plan's delay/drop rules, retrying dropped attempts with
    /// backoff. Returns `false` when the run is failing.
    fn send_agent(
        &self,
        dst: NodeId,
        id: u64,
        msgr: Box<dyn Messenger>,
        is_hop: bool,
        meta: Option<DeliveryMeta>,
    ) -> bool {
        let Some(rec) = &self.recovery else {
            let _ = self.chans[dst].send(DaemonMsg::Agent {
                id,
                epoch: 0,
                msgr,
                meta,
            });
            return true;
        };
        enum Next {
            Deliver(u64),
            /// Sleep, then retry; the flag disarms further fault checks
            /// (a Delay's attempt itself succeeds, as in the simulator).
            Sleep(Duration, bool),
            Fail(RunError),
        }
        let mut attempts = 0u32;
        let mut faults_armed = is_hop;
        let epoch = loop {
            let next = {
                let mut r = rec.lock().unwrap();
                let fault = if faults_armed { r.tracker.on_hop(dst) } else { None };
                match fault {
                    None => {
                        r.ckpt.register(id, dst, msgr.as_ref());
                        self.note_checkpoint(msgr.as_ref());
                        Next::Deliver(r.epochs[dst])
                    }
                    Some(HopFault::Delay { seconds }) => {
                        r.stats.hops_delayed += 1;
                        if let Some(m) = &self.metrics {
                            m.faults.inc();
                        }
                        Next::Sleep(Duration::from_secs_f64(seconds), true)
                    }
                    Some(HopFault::Drop) => {
                        r.stats.hops_dropped += 1;
                        if let Some(m) = &self.metrics {
                            m.faults.inc();
                        }
                        attempts += 1;
                        if attempts > r.tracker.plan().max_send_retries {
                            Next::Fail(RunError::RecoveryFailed {
                                pe: dst,
                                reason: format!(
                                    "hop delivery dropped {attempts} times; retry budget exhausted"
                                ),
                            })
                        } else {
                            r.stats.send_retries += 1;
                            Next::Sleep(r.tracker.plan().retry_backoff, false)
                        }
                    }
                }
            };
            match next {
                Next::Deliver(e) => break e,
                Next::Sleep(d, disarm) => {
                    // Keep the watchdog fed through injected latency.
                    self.progress.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(d);
                    if disarm {
                        faults_armed = false;
                    }
                }
                Next::Fail(err) => {
                    self.fail(err);
                    return false;
                }
            }
        };
        let _ = self.chans[dst].send(DaemonMsg::Agent {
            id,
            epoch,
            msgr,
            meta,
        });
        true
    }

    fn signal(&self, key: EventKey) {
        let woken = {
            let mut ev = self.events.lock().unwrap();
            let st = ev.entry(key).or_default();
            match st.waiters.pop_front() {
                Some(w) => Some(w),
                None => {
                    st.count += 1;
                    None
                }
            }
        };
        if let Some((id, msgr, pe, parked_ns)) = woken {
            self.progress.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                // parked_ns is stamped whenever trace or metrics are
                // on, so a zero here only means "no park clock".
                if parked_ns > 0 {
                    let dur = (self.anchor.elapsed().as_nanos() as u64).saturating_sub(parked_ns);
                    if let Some(p) = m.pe(pe) {
                        p.park_ns.add(dur);
                    }
                    m.park_wait_ns.observe(dur);
                }
            }
            // Waking is a delivery point: the messenger re-enters its
            // PE's failure domain.
            let meta = self.trace.then_some(DeliveryMeta::Wake { parked_ns });
            self.send_agent(pe, id, msgr, false, meta);
        }
    }

    /// Count one checkpoint registration into the metric set.
    fn note_checkpoint(&self, msgr: &dyn Messenger) {
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
            m.checkpoint_bytes.add(msgr.payload_bytes());
        }
    }
}

/// Result of a wall-clock run.
pub struct WallReport {
    /// Elapsed wall-clock time of the run (excluding setup/teardown).
    pub wall: Duration,
    /// Post-run node-variable stores (index = PE).
    pub stores: Vec<NodeStore>,
    /// Total messenger steps executed.
    pub steps: u64,
    /// Total inter-PE hops taken.
    pub hops: u64,
    /// Total bytes carried by those hops (agent payload plus the fixed
    /// per-hop state overhead) — divide by `wall` for effective hop
    /// bandwidth.
    pub hop_bytes: u64,
    /// What the fault machinery did (all zero on a fault-free run).
    pub faults: FaultStats,
    /// The no-progress watchdog timeout this run was executed under.
    pub watchdog: Duration,
    /// Merged wall-clock trace (present iff tracing was enabled).
    pub trace: Option<Trace>,
    /// Trace events evicted by the per-PE ring buffers.
    pub trace_dropped: u64,
}

impl std::fmt::Debug for WallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WallReport")
            .field("wall", &self.wall)
            .field("steps", &self.steps)
            .field("hops", &self.hops)
            .field("hop_bytes", &self.hop_bytes)
            .field("pes", &self.stores.len())
            .field("faults", &self.faults)
            .field("watchdog", &self.watchdog)
            .finish_non_exhaustive()
    }
}

/// Multithreaded executor: one daemon thread per PE, real migration over
/// channels, wall-clock timing.
pub struct ThreadExecutor {
    watchdog: Duration,
    trace: bool,
    metrics: Option<Arc<RunMetrics>>,
    durable: Option<(PathBuf, Arc<dyn DurableCodec>)>,
}

impl Default for ThreadExecutor {
    fn default() -> Self {
        ThreadExecutor::new()
    }
}

impl ThreadExecutor {
    /// Executor with the default 10 s no-progress watchdog.
    pub fn new() -> ThreadExecutor {
        ThreadExecutor {
            watchdog: Duration::from_secs(10),
            trace: false,
            metrics: None,
            durable: None,
        }
    }

    /// Spill a durable checkpoint of the whole cluster to `dir` at every
    /// run boundary (and once before the daemons start), so the process
    /// can be killed at any point and the computation restored bitwise
    /// with [`crate::durable::read_all_cuts`] +
    /// [`crate::durable::restore_cluster`]. Requires every messenger to
    /// be wire-serializable. Without this builder the executor performs
    /// **zero** filesystem syscalls.
    pub fn with_durable(
        mut self,
        dir: impl Into<PathBuf>,
        codec: Arc<dyn DurableCodec>,
    ) -> ThreadExecutor {
        self.durable = Some((dir.into(), codec));
        self
    }

    /// Override the no-progress watchdog (tests of deadlocking programs
    /// want this short).
    pub fn with_watchdog(mut self, watchdog: Duration) -> ThreadExecutor {
        self.watchdog = watchdog;
        self
    }

    /// The configured no-progress watchdog.
    pub fn watchdog(&self) -> Duration {
        self.watchdog
    }

    /// Record a wall-clock trace of the run (off by default). Every
    /// daemon keeps a bounded ring of events; the merged [`Trace`] lands
    /// in [`WallReport::trace`]. Products are unaffected.
    pub fn with_trace(mut self, trace: bool) -> ThreadExecutor {
        self.trace = trace;
        self
    }

    /// Export live metrics into `metrics` during the run (off by
    /// default). The executor updates the shared
    /// [`RunMetrics`](navp_metrics::RunMetrics) instruments as it goes;
    /// the caller keeps its own handle to scrape or snapshot them —
    /// also mid-run, which is the whole point. Products are unaffected.
    pub fn with_metrics(mut self, metrics: Arc<RunMetrics>) -> ThreadExecutor {
        self.metrics = Some(metrics);
        self
    }

    /// Run the cluster to completion on real threads.
    ///
    /// Under a fault plan, an unrecoverable crash returns
    /// [`RunError::PeCrashed`] (checkpointing disabled) or
    /// [`RunError::RecoveryFailed`] (lost state cannot be restored) —
    /// never a hang.
    pub fn run(&self, cluster: Cluster) -> Result<WallReport, RunError> {
        let ClusterParts {
            mut stores,
            injections,
            initial_events,
            fault_plan,
        } = cluster.into_parts();
        let pes = stores.len();
        if injections.is_empty() {
            return Ok(WallReport {
                wall: Duration::ZERO,
                stores,
                steps: 0,
                hops: 0,
                hop_bytes: 0,
                faults: FaultStats::default(),
                watchdog: self.watchdog,
                trace: self.trace.then(Trace::enabled),
                trace_dropped: 0,
            });
        }

        // A cluster without an explicit plan accepts one from the
        // `NAVP_FAULT_SPEC` environment (repro files paste in verbatim);
        // a malformed spec is a loud error, not a silently clean run.
        let fault_plan = match fault_plan {
            Some(p) => Some(p),
            None => FaultPlan::from_env().map_err(|detail| RunError::Transport { detail })?,
        };
        // Durable mode needs the journal/checkpoint machinery even
        // under an empty fault plan: the cut it spills *is* that state.
        let fault_plan = match fault_plan.filter(|p| !p.is_empty()) {
            None if self.durable.is_some() => Some(FaultPlan::new()),
            other => other,
        };
        let recovery = fault_plan.map(|plan| {
            // Pristine pre-run image for crash rebuilds. The store is
            // copy-on-write, so this is a per-entry reference bump, not a
            // deep copy — payloads are only duplicated if a run later
            // mutates them.
            let initial = stores.clone();
            for s in &mut stores {
                s.enable_tracking();
            }
            Mutex::new(Recovery {
                tracker: FaultTracker::new(plan, pes),
                ckpt: CheckpointTable::new(),
                journals: (0..pes).map(|_| WriteJournal::new()).collect(),
                initial,
                epochs: vec![0; pes],
                stats: FaultStats::default(),
            })
        });

        let mut senders = Vec::with_capacity(pes);
        let mut receivers: Vec<Receiver<DaemonMsg>> = Vec::with_capacity(pes);
        for _ in 0..pes {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Shared {
            chans: senders,
            live: AtomicUsize::new(injections.len()),
            progress: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            hops: AtomicU64::new(0),
            hop_bytes: AtomicU64::new(0),
            next_id: AtomicU64::new(injections.len() as u64),
            events: Mutex::new(HashMap::new()),
            failure: Mutex::new(None),
            recovery,
            durable: match &self.durable {
                Some((dir, codec)) => {
                    let nonce = durable::fresh_nonce();
                    durable::write_manifest(dir, &Manifest { pes, nonce }).map_err(|e| {
                        RunError::Transport {
                            detail: e.to_string(),
                        }
                    })?;
                    Some(Mutex::new(DurableSink {
                        dir: dir.clone(),
                        codec: Arc::clone(codec),
                        nonce,
                        boundary: 0,
                    }))
                }
                None => None,
            },
            trace: self.trace,
            anchor: Instant::now(),
            metrics: self.metrics.clone(),
        };

        {
            let mut ev = shared.events.lock().unwrap();
            for key in initial_events {
                ev.entry(key).or_default().count += 1;
            }
        }
        // Queue the time-zero injections before any daemon starts; each
        // is a delivery point, so checkpoint it.
        for (i, (pe, msgr)) in injections.into_iter().enumerate() {
            let id = i as u64;
            if let Some(rec) = &shared.recovery {
                rec.lock().unwrap().ckpt.register(id, pe, msgr.as_ref());
                shared.note_checkpoint(msgr.as_ref());
            }
            if let Some(p) = shared.metrics.as_ref().and_then(|m| m.pe(pe)) {
                p.injections.inc();
            }
            let _ = shared.chans[pe].send(DaemonMsg::Agent {
                id,
                epoch: 0,
                msgr,
                meta: None,
            });
        }

        // Boundary 0: the injected-but-unrun cluster, so even a kill
        // before the first run restores cleanly.
        if let (Some(rec), Some(ds)) = (&shared.recovery, &shared.durable) {
            let r = rec.lock().unwrap();
            let mut sink = ds.lock().unwrap();
            spill_threads(&mut sink, &r, pes, &shared.events, shared.metrics.as_deref())?;
        }

        let start = Instant::now();
        type DaemonOut = (NodeStore, Vec<TraceEvent>, u64);
        let mut joined_stores: Vec<Option<DaemonOut>> = (0..pes).map(|_| None).collect();
        let mut panic_msg: Option<String> = None;

        std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = stores
                .into_iter()
                .zip(receivers)
                .enumerate()
                .map(|(pe, (store, rx))| {
                    s.spawn(move || {
                        // Report a messenger panic through the failure
                        // slot immediately, so the main loop stops at its
                        // next tick instead of waiting out the watchdog.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || daemon(pe, pes, store, rx, shared),
                        ));
                        match run {
                            Ok(store) => store,
                            Err(p) => {
                                shared.fail(RunError::WorkerPanic(panic_text(&*p)));
                                std::panic::resume_unwind(p);
                            }
                        }
                    })
                })
                .collect();

            // Watchdog: abort when no step/signal happens for `watchdog`.
            let tick = Duration::from_millis(20).min(self.watchdog);
            let mut last = shared.progress.load(Ordering::Relaxed);
            let mut stagnant = Duration::ZERO;
            loop {
                if shared.live.load(Ordering::SeqCst) == 0 {
                    break;
                }
                if shared.failure.lock().unwrap().is_some() {
                    break;
                }
                std::thread::sleep(tick);
                let now = shared.progress.load(Ordering::Relaxed);
                if now == last {
                    stagnant += tick;
                    if stagnant >= self.watchdog {
                        shared.fail(RunError::Stalled {
                            live: shared.live.load(Ordering::SeqCst),
                        });
                        break;
                    }
                } else {
                    last = now;
                    stagnant = Duration::ZERO;
                }
            }

            for (pe, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(store) => joined_stores[pe] = Some(store),
                    Err(p) => panic_msg = Some(panic_text(&*p)),
                }
            }
        });
        let wall = start.elapsed();

        if let Some(msg) = panic_msg {
            return Err(RunError::WorkerPanic(msg));
        }
        if let Some(err) = shared.failure.lock().unwrap().take() {
            return Err(err);
        }
        let faults = shared
            .recovery
            .as_ref()
            .map(|r| r.lock().unwrap().stats)
            .unwrap_or_default();
        let mut stores = Vec::with_capacity(pes);
        let mut logs = Vec::with_capacity(pes);
        for (pe, joined) in joined_stores.into_iter().enumerate() {
            let (store, events, dropped) = joined.expect("all daemons joined");
            stores.push(store);
            logs.push(PeLog {
                pe,
                // One shared anchor ⇒ clocks already agree.
                offset_ns: 0,
                events,
                dropped,
            });
        }
        let (trace, trace_dropped) = if self.trace {
            let (t, d) = merge_pe_traces(logs);
            (Some(t), d)
        } else {
            (None, 0)
        };
        if let Some(m) = &self.metrics {
            m.trace_dropped.add(trace_dropped);
        }
        Ok(WallReport {
            wall,
            stores,
            steps: shared.steps.load(Ordering::Relaxed),
            hops: shared.hops.load(Ordering::Relaxed),
            hop_bytes: shared.hop_bytes.load(Ordering::Relaxed),
            faults,
            watchdog: self.watchdog,
            trace,
            trace_dropped,
        })
    }
}

/// Human-readable payload of a caught panic.
fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string())
}

/// Crash check at a run boundary. Returns `true` when the daemon may run
/// the messenger it holds; `false` when the PE just crashed (the held
/// messenger's checkpoint has been re-delivered — drop the stale copy)
/// or the run is failing.
fn survive_run_boundary(
    shared: &Shared,
    pe: NodeId,
    store: &mut NodeStore,
    local: &mut VecDeque<(u64, Box<dyn Messenger>)>,
    recorder: &mut PeRecorder,
) -> bool {
    let Some(rec) = &shared.recovery else {
        return true;
    };
    let redeliver = {
        let mut r = rec.lock().unwrap();
        let Some(run) = r.tracker.on_run(pe) else {
            return true;
        };
        if !r.tracker.plan().checkpointing {
            drop(r);
            shared.fail(RunError::PeCrashed { pe, run });
            return false;
        }
        r.stats.crashes += 1;
        if let Some(m) = &shared.metrics {
            m.faults.inc();
        }
        // Daemon restart: new epoch (stale in-flight deliveries will be
        // discarded), fresh store from the journal, empty local queue.
        r.epochs[pe] += 1;
        let epoch = r.epochs[pe];
        let mut rebuilt = r.initial[pe].clone();
        r.stats.replayed_writes += r.journals[pe].replay_into(&mut rebuilt);
        rebuilt.enable_tracking();
        *store = rebuilt;
        local.clear();
        // Re-deliver everything lost with the PE from its checkpoints.
        let mut to_send = Vec::new();
        let mut lost: Option<String> = None;
        for (id, label, snap) in r.ckpt.drain_pe(pe) {
            match snap {
                Some(snap) => {
                    r.ckpt.register(id, pe, snap.as_ref());
                    r.stats.redelivered += 1;
                    to_send.push((id, epoch, snap));
                }
                None => lost = Some(label),
            }
        }
        if let Some(label) = lost {
            drop(r);
            shared.fail(RunError::RecoveryFailed {
                pe,
                reason: format!("messenger {label} does not support snapshots"),
            });
            return false;
        }
        to_send
    };
    recorder.instant(u64::MAX, "crash", TraceKind::Fault { pe });
    for (id, epoch, msgr) in redeliver {
        let _ = shared.chans[pe].send(DaemonMsg::Agent {
            id,
            epoch,
            msgr,
            meta: None,
        });
    }
    shared.progress.fetch_add(1, Ordering::Relaxed);
    false
}

/// The daemon loop of one PE. Owns the PE's node-variable store for the
/// duration of the run and returns it when the PE shuts down.
fn daemon(
    pe: NodeId,
    pes: usize,
    mut store: NodeStore,
    rx: Receiver<DaemonMsg>,
    shared: &Shared,
) -> (NodeStore, Vec<TraceEvent>, u64) {
    // Locally injected messengers run before we poll the channel again —
    // MESSENGERS' local scheduling queue.
    let mut local: VecDeque<(u64, Box<dyn Messenger>)> = VecDeque::new();
    let mut out = StepOutputs::default();
    // This daemon's private trace ring: single writer, no locks.
    let mut recorder = PeRecorder::with_anchor(shared.anchor, shared.trace, DEFAULT_CAPACITY);
    // This daemon's slice of the metric set, hoisted so the hot loop
    // pays one pointer test, not a registry lookup.
    let pm = shared.metrics.as_ref().and_then(|m| m.pe(pe));
    loop {
        if let Some(p) = pm {
            p.queue_depth.set(local.len() as i64);
        }
        let (id, msgr) = if let Some(m) = local.pop_front() {
            m
        } else {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(DaemonMsg::Agent {
                    id,
                    epoch,
                    msgr,
                    meta,
                }) => {
                    if let Some(rec) = &shared.recovery {
                        if rec.lock().unwrap().epochs[pe] != epoch {
                            // Sent before a crash of this PE; the crash
                            // re-delivered it from its checkpoint.
                            continue;
                        }
                    }
                    // The receiving side records deliveries: hop
                    // transfers end here, event waits end here.
                    if recorder.is_enabled() {
                        match meta {
                            Some(DeliveryMeta::Hop {
                                from,
                                sent_ns,
                                bytes,
                            }) => {
                                let now = recorder.now_ns();
                                recorder.record(
                                    sent_ns,
                                    now,
                                    id,
                                    &msgr.label(),
                                    TraceKind::Transfer {
                                        from,
                                        to: pe,
                                        bytes,
                                    },
                                );
                            }
                            Some(DeliveryMeta::Wake { parked_ns }) => {
                                let now = recorder.now_ns();
                                recorder.record(
                                    parked_ns,
                                    now,
                                    id,
                                    &msgr.label(),
                                    TraceKind::Block { pe },
                                );
                            }
                            None => {}
                        }
                    }
                    (id, msgr)
                }
                Ok(DaemonMsg::Shutdown) => break,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        if !survive_run_boundary(shared, pe, &mut store, &mut local, &mut recorder) {
            continue;
        }
        run_messenger(
            pe,
            pes,
            id,
            msgr,
            &mut store,
            &mut local,
            &mut out,
            shared,
            &mut recorder,
        );
        // Run boundary: commit this run's store writes to the journal.
        // Same-thread sequencing makes the commit atomic w.r.t. crashes
        // of this PE (they only fire at run boundaries, above).
        if let Some(rec) = &shared.recovery {
            let mut r = rec.lock().unwrap();
            r.journals[pe].commit_dirty(&mut store);
            if let Some(m) = &shared.metrics {
                m.journal_commits.inc();
            }
            if let Some(ds) = &shared.durable {
                let mut sink = ds.lock().unwrap();
                let spilled = spill_threads(
                    &mut sink,
                    &r,
                    r.journals.len(),
                    &shared.events,
                    shared.metrics.as_deref(),
                );
                drop(sink);
                drop(r);
                if let Err(err) = spilled {
                    shared.fail(err);
                    break;
                }
            }
        }
    }
    let (events, dropped) = recorder.take();
    (store, events, dropped)
}

/// Step one messenger until it leaves this PE (hop), parks (wait), or
/// finishes.
#[allow(clippy::too_many_arguments)]
fn run_messenger(
    pe: NodeId,
    pes: usize,
    id: u64,
    mut msgr: Box<dyn Messenger>,
    store: &mut NodeStore,
    local: &mut VecDeque<(u64, Box<dyn Messenger>)>,
    out: &mut StepOutputs,
    shared: &Shared,
    recorder: &mut PeRecorder,
) {
    // One Exec span per messenger *run* (delivery → hop/park/done);
    // local hops and injections extend the same span.
    let tracing = recorder.is_enabled();
    let label = if tracing { msgr.label() } else { String::new() };
    let exec_start = recorder.now_ns();
    let pm = shared.metrics.as_ref().and_then(|m| m.pe(pe));
    // Per-PE flight lane; purely observational (see `navp_obs`), so
    // products stay bitwise-identical with the recorder on or off.
    let flight_lane = navp_obs::flight().lane(&format!("pe{pe}"));
    let end_exec = |recorder: &mut PeRecorder| {
        if tracing {
            let now = recorder.now_ns();
            recorder.record(exec_start, now, id, &label, TraceKind::Exec { pe });
        }
    };
    loop {
        out.clear();
        let effect = {
            let mut ctx = MsgrCtx::new(pe, pes, store, out);
            msgr.step(&mut ctx)
        };
        shared.steps.fetch_add(1, Ordering::Relaxed);
        shared.progress.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = pm {
            p.steps.inc();
        }

        for inj in out.injections.drain(..) {
            let inj_id = shared.next_id.fetch_add(1, Ordering::Relaxed);
            // Local injection is a delivery point on this PE.
            if let Some(rec) = &shared.recovery {
                rec.lock().unwrap().ckpt.register(inj_id, pe, inj.as_ref());
                shared.note_checkpoint(inj.as_ref());
            }
            if let Some(p) = pm {
                p.injections.inc();
            }
            shared.live.fetch_add(1, Ordering::SeqCst);
            local.push_back((inj_id, inj));
        }
        for key in out.signals.drain(..) {
            if let Some(rec) = &shared.recovery {
                let mut r = rec.lock().unwrap();
                if r.tracker.on_signal(pe) {
                    r.stats.signals_lost += 1;
                    drop(r);
                    if let Some(m) = &shared.metrics {
                        m.faults.inc();
                    }
                    continue;
                }
            }
            shared.signal(key);
            if let Some(p) = pm {
                p.signals.inc();
            }
            flight_lane.record(ObsKind::Signal, pe as u32, 0, id, 0);
            recorder.instant(id, &label, TraceKind::Signal { pe });
        }

        match effect {
            Effect::Hop(dst) if dst == pe => continue,
            Effect::Hop(dst) => {
                if dst >= pes {
                    shared.fail(RunError::BadHop {
                        agent: msgr.label(),
                        dst,
                        pes,
                    });
                    return;
                }
                shared.hops.fetch_add(1, Ordering::Relaxed);
                let payload = msgr.payload_bytes();
                let hop_bytes = payload + HOP_STATE_BYTES;
                shared.hop_bytes.fetch_add(hop_bytes, Ordering::Relaxed);
                if let Some(p) = pm {
                    p.hops.inc();
                    p.hop_bytes.add(hop_bytes);
                }
                if let Some(m) = &shared.metrics {
                    m.hop_payload_bytes.observe(payload);
                }
                flight_lane.record(ObsKind::HopSend, pe as u32, 0, dst as u64, hop_bytes);
                end_exec(recorder);
                let meta = tracing.then(|| DeliveryMeta::Hop {
                    from: pe,
                    sent_ns: recorder.now_ns(),
                    bytes: hop_bytes,
                });
                shared.send_agent(dst, id, msgr, true, meta);
                return;
            }
            Effect::WaitEvent(key) => {
                let mut ev = shared.events.lock().unwrap();
                let st = ev.entry(key).or_default();
                if st.count > 0 {
                    st.count -= 1;
                    drop(ev);
                    continue;
                }
                end_exec(recorder);
                // Stamp the park time whenever anyone will consume it:
                // the tracer's Block span or the park-time metrics.
                // Both read the same shared anchor clock.
                let parked_ns = if tracing {
                    recorder.now_ns()
                } else if shared.metrics.is_some() {
                    shared.anchor.elapsed().as_nanos() as u64
                } else {
                    0
                };
                if let Some(p) = pm {
                    p.waits.inc();
                }
                st.waiters.push_back((id, msgr, pe, parked_ns));
                drop(ev);
                // Parked state lives in the event service, which
                // survives daemon restarts: drop the checkpoint.
                if let Some(rec) = &shared.recovery {
                    rec.lock().unwrap().ckpt.remove(id);
                }
                return;
            }
            Effect::Done => {
                end_exec(recorder);
                if let Some(rec) = &shared.recovery {
                    rec.lock().unwrap().ckpt.remove(id);
                }
                if shared.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                    shared.shutdown_all();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::key::Key;
    use crate::fault::FaultPlan;
    use crate::script::Script;

    #[test]
    fn simple_hop_and_write() {
        let mut c = Cluster::new(3).unwrap();
        c.store_mut(2).insert(Key::plain("B"), 20.0f64, 8);
        c.inject(
            0,
            Script::new("worker")
                .then(|_| Effect::Hop(2))
                .then(|ctx| {
                    let b = *ctx.store().get::<f64>(Key::plain("B")).unwrap();
                    ctx.store().insert(Key::plain("C"), b + 2.0, 8);
                    Effect::Done
                }),
        );
        let rep = ThreadExecutor::new().run(c).unwrap();
        assert_eq!(rep.stores[2].get::<f64>(Key::plain("C")), Some(&22.0));
        assert_eq!(rep.hops, 1);
        assert!(rep.steps >= 2);
        assert!(!rep.faults.any());
    }

    #[test]
    fn empty_cluster_returns_immediately() {
        let c = Cluster::new(2).unwrap();
        let rep = ThreadExecutor::new().run(c).unwrap();
        assert_eq!(rep.steps, 0);
    }

    #[test]
    fn events_across_pes() {
        let mut c = Cluster::new(2).unwrap();
        // Consumer on PE1 waits; producer hops to PE1 and signals there.
        c.inject(
            1,
            Script::new("consumer")
                .then(|_| Effect::WaitEvent(Key::plain("ready")))
                .then(|ctx| {
                    assert!(ctx.store_ref().contains(Key::plain("data")));
                    ctx.store().insert(Key::plain("ok"), true, 1);
                    Effect::Done
                }),
        );
        c.inject(
            0,
            Script::new("producer")
                .then(|_| Effect::Hop(1))
                .then(|ctx| {
                    ctx.store().insert(Key::plain("data"), 1u8, 1);
                    ctx.signal(Key::plain("ready"));
                    Effect::Done
                }),
        );
        let rep = ThreadExecutor::new().run(c).unwrap();
        assert_eq!(rep.stores[1].get::<bool>(Key::plain("ok")), Some(&true));
    }

    #[test]
    fn deadlock_hits_watchdog() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(
            0,
            Script::new("stuck").then(|_| Effect::WaitEvent(Key::plain("never"))),
        );
        let err = ThreadExecutor::new()
            .with_watchdog(Duration::from_millis(200))
            .run(c)
            .unwrap_err();
        assert!(matches!(err, RunError::Stalled { live: 1 }));
    }

    #[test]
    fn bad_hop_reported() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(0, Script::new("wild").then(|_| Effect::Hop(5)));
        assert!(matches!(
            ThreadExecutor::new().run(c),
            Err(RunError::BadHop { dst: 5, .. })
        ));
    }

    #[test]
    fn worker_panic_reported() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(0, Script::new("boom").then(|_| panic!("kapow")));
        match ThreadExecutor::new()
            .with_watchdog(Duration::from_millis(500))
            .run(c)
        {
            Err(RunError::WorkerPanic(msg)) => assert!(msg.contains("kapow")),
            other => panic!("expected panic error, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn injection_fanout_counts() {
        // A spawner injecting 10 children, each hopping once then done.
        let mut c = Cluster::new(4).unwrap();
        c.inject(
            0,
            Script::new("spawner").then(|ctx| {
                for i in 0..10usize {
                    ctx.inject(
                        Script::new("child")
                            .then(move |_| Effect::Hop(i % 4))
                            .then(move |cctx| {
                                cctx.store().insert(Key::at("mark", i), i, 8);
                                Effect::Done
                            }),
                    );
                }
                Effect::Done
            }),
        );
        let rep = ThreadExecutor::new().run(c).unwrap();
        let total: usize = rep.stores.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn many_agents_many_hops_terminate() {
        let mut c = Cluster::new(4).unwrap();
        for a in 0..32usize {
            c.inject(
                a % 4,
                Script::new("tourist").then_each(16, move |k, _| Effect::Hop((a + k) % 4)),
            );
        }
        let rep = ThreadExecutor::new().run(c).unwrap();
        // 16 hop-steps per agent; some are local (free) but all counted as steps.
        assert_eq!(rep.steps, 32 * 17);
    }

    /// A checkpointable messenger that ping-pongs between PEs, bumping a
    /// per-PE visit counter on each arrival.
    #[derive(Clone)]
    struct PingPong {
        hops_left: usize,
    }
    impl Messenger for PingPong {
        fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
            let k = Key::plain("count");
            let cur = ctx.store_ref().get::<u64>(k).copied().unwrap_or(0);
            ctx.store().insert(k, cur + 1, 8);
            if self.hops_left == 0 {
                return Effect::Done;
            }
            self.hops_left -= 1;
            Effect::Hop((ctx.here() + 1) % ctx.num_nodes())
        }
        fn label(&self) -> String {
            "pingpong".to_string()
        }
        fn snapshot(&self) -> Option<Box<dyn Messenger>> {
            Some(Box::new(self.clone()))
        }
    }

    fn counts(rep: &WallReport) -> (u64, u64) {
        let k = Key::plain("count");
        (
            rep.stores[0].get::<u64>(k).copied().unwrap_or(0),
            rep.stores[1].get::<u64>(k).copied().unwrap_or(0),
        )
    }

    #[test]
    fn crash_recovery_preserves_results() {
        let build = || {
            let mut c = Cluster::new(2).unwrap();
            c.inject(0, PingPong { hops_left: 6 });
            c
        };
        let clean = ThreadExecutor::new().run(build()).unwrap();
        assert_eq!(counts(&clean), (4, 3));

        let faulted = build().with_fault_plan(FaultPlan::new().crash_pe(1, 2));
        let rep = ThreadExecutor::new().run(faulted).unwrap();
        assert_eq!(counts(&rep), counts(&clean), "recovery must be exact");
        assert_eq!(rep.faults.crashes, 1);
        assert_eq!(rep.faults.redelivered, 1);
        assert!(rep.faults.replayed_writes >= 1);
    }

    #[test]
    fn crash_without_checkpointing_is_structured_not_a_hang() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(0, PingPong { hops_left: 6 });
        c.set_fault_plan(FaultPlan::new().crash_pe(1, 1).without_checkpointing());
        // Generous watchdog: the crash error must preempt it.
        let err = ThreadExecutor::new()
            .with_watchdog(Duration::from_secs(30))
            .run(c)
            .unwrap_err();
        assert!(matches!(err, RunError::PeCrashed { pe: 1, run: 1 }));
    }

    #[test]
    fn dropped_and_delayed_hops_still_deliver() {
        let build = || {
            let mut c = Cluster::new(2).unwrap();
            c.inject(0, PingPong { hops_left: 6 });
            c
        };
        let clean = ThreadExecutor::new().run(build()).unwrap();
        let plan = FaultPlan::new()
            .drop_hop(1, 1)
            .delay_hop(0, 2, 0.01)
            .with_retry(3, Duration::from_millis(1));
        let rep = ThreadExecutor::new()
            .run(build().with_fault_plan(plan))
            .unwrap();
        assert_eq!(counts(&rep), counts(&clean));
        assert_eq!(rep.faults.hops_dropped, 1);
        assert_eq!(rep.faults.send_retries, 1);
        assert_eq!(rep.faults.hops_delayed, 1);
    }

    #[test]
    fn drop_exhaustion_fails_structurally() {
        let mut plan = FaultPlan::new().with_retry(2, Duration::from_millis(1));
        for nth in 1..=3 {
            plan = plan.drop_hop(1, nth);
        }
        let mut c = Cluster::new(2).unwrap();
        c.inject(0, PingPong { hops_left: 6 });
        c.set_fault_plan(plan);
        assert!(matches!(
            ThreadExecutor::new().run(c).unwrap_err(),
            RunError::RecoveryFailed { pe: 1, .. }
        ));
    }

    #[test]
    fn lost_signal_hits_watchdog_with_stats_path() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(
            0,
            Script::new("producer").then(|ctx| {
                ctx.signal(Key::plain("go"));
                Effect::Done
            }),
        );
        c.inject(
            0,
            Script::new("consumer")
                .then(|_| Effect::WaitEvent(Key::plain("go")))
                .then(|_| Effect::Done),
        );
        c.set_fault_plan(FaultPlan::new().lose_signal(0, 1));
        let err = ThreadExecutor::new()
            .with_watchdog(Duration::from_millis(200))
            .run(c)
            .unwrap_err();
        assert!(matches!(err, RunError::Stalled { .. }));
    }

    #[test]
    fn crash_of_snapshotless_messenger_is_recovery_failure() {
        // Scripts carry closures and cannot snapshot: a crash that loses
        // one must surface as RecoveryFailed, not silently corrupt.
        let mut c = Cluster::new(2).unwrap();
        c.inject(
            0,
            Script::new("fragile")
                .then(|_| Effect::Hop(1))
                .then(|_| Effect::Hop(0))
                .then(|_| Effect::Done),
        );
        c.set_fault_plan(FaultPlan::new().crash_pe(1, 1));
        assert!(matches!(
            ThreadExecutor::new().run(c).unwrap_err(),
            RunError::RecoveryFailed { pe: 1, .. }
        ));
    }

    #[test]
    fn tracing_records_all_span_kinds_and_is_off_by_default() {
        let build = || {
            let mut c = Cluster::new(2).unwrap();
            c.inject(
                1,
                Script::new("consumer")
                    .then(|_| Effect::WaitEvent(Key::plain("ready")))
                    .then(|_| Effect::Done),
            );
            c.inject(
                0,
                Script::new("producer")
                    .then(|_| Effect::Hop(1))
                    .then(|ctx| {
                        ctx.signal(Key::plain("ready"));
                        Effect::Done
                    }),
            );
            c
        };
        let plain = ThreadExecutor::new().run(build()).unwrap();
        assert!(plain.trace.is_none(), "tracing must be off by default");

        let rep = ThreadExecutor::new().with_trace(true).run(build()).unwrap();
        let trace = rep.trace.expect("traced run yields a trace");
        assert_eq!(rep.trace_dropped, 0);
        let mut exec_pes = std::collections::HashSet::new();
        let (mut transfers, mut blocks, mut signals) = (0, 0, 0);
        for e in trace.events() {
            assert!(e.start <= e.end);
            match e.kind {
                TraceKind::Exec { pe } => {
                    exec_pes.insert(pe);
                }
                TraceKind::Transfer { from, to, bytes } => {
                    transfers += 1;
                    assert_eq!((from, to), (0, 1));
                    assert!(bytes >= HOP_STATE_BYTES);
                }
                TraceKind::Block { pe } => {
                    blocks += 1;
                    assert_eq!(pe, 1, "consumer waited on PE1");
                }
                TraceKind::Signal { pe } => {
                    signals += 1;
                    assert_eq!(pe, 1, "producer signalled after hopping to PE1");
                }
                TraceKind::Fault { .. } => panic!("no faults in this run"),
            }
        }
        assert_eq!(exec_pes.len(), 2, "both PEs executed");
        assert_eq!((transfers, signals), (1, 1));
        assert_eq!(blocks, 1, "the consumer's park must surface as a Block");
    }

    #[test]
    fn metrics_reconcile_with_report_counters() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(
            1,
            Script::new("consumer")
                .then(|_| Effect::WaitEvent(Key::plain("ready")))
                .then(|_| Effect::Done),
        );
        c.inject(
            0,
            Script::new("producer")
                .then(|_| Effect::Hop(1))
                .then(|ctx| {
                    ctx.signal(Key::plain("ready"));
                    Effect::Done
                }),
        );
        let m = RunMetrics::new(2);
        let rep = ThreadExecutor::new()
            .with_metrics(Arc::clone(&m))
            .run(c)
            .unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.total("navp_hops_total") as u64, rep.hops);
        assert_eq!(snap.total("navp_hop_bytes_total") as u64, rep.hop_bytes);
        assert_eq!(snap.total("navp_steps_total") as u64, rep.steps);
        assert_eq!(snap.total("navp_injections_total") as u64, 2);
        assert_eq!(snap.total("navp_events_waited_total") as u64, 1);
        assert_eq!(snap.total("navp_events_signaled_total") as u64, 1);
        assert!(snap.total("navp_park_wait_ns_count") >= 1.0);
        assert!(m.park_wait_ns.sum() > 0, "the consumer parked for real time");
        navp_metrics::validate_prometheus(&m.registry.render()).expect("valid exposition");
    }

    #[test]
    fn metered_faulted_run_counts_injected_faults() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(0, PingPong { hops_left: 6 });
        c.set_fault_plan(
            FaultPlan::new()
                .crash_pe(1, 2)
                .delay_hop(0, 2, 0.005)
                .with_retry(3, Duration::from_millis(1)),
        );
        let m = RunMetrics::new(2);
        let rep = ThreadExecutor::new()
            .with_metrics(Arc::clone(&m))
            .run(c)
            .unwrap();
        assert_eq!(rep.faults.crashes, 1);
        assert_eq!(rep.faults.hops_delayed, 1);
        assert_eq!(
            m.faults.get(),
            rep.faults.crashes + rep.faults.hops_delayed,
            "navp_fault_injections_total reconciles with FaultStats"
        );
        assert!(m.checkpoints.get() >= 1, "delivery points checkpointed");
        assert!(m.journal_commits.get() >= 1);
    }

    /// Wire-serializable ping-pong for the durable test.
    #[derive(Clone)]
    struct WirePingPong {
        hops_left: usize,
    }
    impl Messenger for WirePingPong {
        fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
            let k = Key::plain("count");
            let cur = ctx.store_ref().get::<u64>(k).copied().unwrap_or(0);
            ctx.store().insert(k, cur + 1, 8);
            if self.hops_left == 0 {
                return Effect::Done;
            }
            self.hops_left -= 1;
            Effect::Hop((ctx.here() + 1) % ctx.num_nodes())
        }
        fn label(&self) -> String {
            "wirepingpong".to_string()
        }
        fn snapshot(&self) -> Option<Box<dyn Messenger>> {
            Some(Box::new(self.clone()))
        }
        fn wire_snapshot(&self) -> Option<crate::agent::WireSnapshot> {
            let mut w = navp_sim::codec::WireWriter::new();
            w.put_usize(self.hops_left);
            Some(crate::agent::WireSnapshot::new("test.wpp", w.into_vec()))
        }
    }

    struct ToyCodec;
    impl DurableCodec for ToyCodec {
        fn encode_store(&self, store: &NodeStore) -> Result<Vec<u8>, String> {
            let mut keys: Vec<Key> = store.keys().copied().collect();
            keys.sort();
            let mut w = navp_sim::codec::WireWriter::new();
            for k in keys {
                let v = store
                    .get::<u64>(k)
                    .ok_or_else(|| format!("{k} is not a u64"))?;
                w.put_key(&k);
                w.put_u64(*v);
            }
            Ok(w.into_vec())
        }
        fn decode_store(&self, bytes: &[u8]) -> Result<NodeStore, String> {
            let mut r = navp_sim::codec::WireReader::new(bytes);
            let mut s = NodeStore::new();
            while r.remaining() > 0 {
                let k = r.get_key().map_err(|e| e.to_string())?;
                let v = r.get_u64().map_err(|e| e.to_string())?;
                s.insert(k, v, 8);
            }
            Ok(s)
        }
        fn decode_messenger(
            &self,
            snap: &crate::agent::WireSnapshot,
        ) -> Result<Box<dyn Messenger>, String> {
            match snap.tag.as_str() {
                "test.wpp" => {
                    let mut r = navp_sim::codec::WireReader::new(&snap.bytes);
                    Ok(Box::new(WirePingPong {
                        hops_left: r.get_usize().map_err(|e| e.to_string())?,
                    }))
                }
                other => Err(format!("unknown messenger tag {other:?}")),
            }
        }
    }

    #[test]
    fn durable_restore_completes_an_aborted_run_bitwise() {
        let dir = std::env::temp_dir().join(format!("navp-thr-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let build = || {
            let mut c = Cluster::new(2).unwrap();
            c.inject(0, WirePingPong { hops_left: 6 });
            c
        };
        let clean = ThreadExecutor::new().run(build()).unwrap();

        // Abort the durable run mid-computation (checkpointing off, so
        // the injected crash kills the whole run — the in-process
        // analogue of kill -9), then restore from disk and finish.
        let c = build()
            .with_fault_plan(FaultPlan::new().crash_pe(1, 2).without_checkpointing());
        let err = ThreadExecutor::new()
            .with_durable(&dir, Arc::new(ToyCodec))
            .run(c)
            .unwrap_err();
        assert!(matches!(err, RunError::PeCrashed { pe: 1, .. }), "{err}");

        let (_, cuts) = durable::read_all_cuts(&dir).unwrap();
        let restored = durable::restore_cluster(&cuts, &ToyCodec).unwrap();
        let rep = ThreadExecutor::new().run(restored).unwrap();
        assert_eq!(counts(&rep), counts(&clean), "restore must be exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_is_surfaced_in_report() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(0, Script::new("quick").then(|_| Effect::Done));
        let wd = Duration::from_millis(1234);
        let rep = ThreadExecutor::new().with_watchdog(wd).run(c).unwrap();
        assert_eq!(rep.watchdog, wd);
    }
}
