//! The wall-clock executor: one OS thread per PE.
//!
//! [`ThreadExecutor`] is the MESSENGERS *daemon* reproduced with modern
//! threads: each PE runs a daemon loop that pops runnable messengers,
//! steps them until they block or leave, and forwards hopping messengers
//! to the destination daemon over a channel. The box holding the
//! messenger's agent variables is what actually moves — code never does,
//! exactly as in the paper ("although the state of the computation is
//! moved on each hop, the code is not moved").
//!
//! This executor does real work in real time (the arithmetic inside each
//! step is what is being measured), so `charge_*` calls are ignored. Use
//! it for criterion benchmarks and to validate on live hardware the
//! orderings the virtual-time executor predicts.
//!
//! A watchdog converts silent deadlocks (every messenger parked on an
//! event nobody will signal) into [`RunError::Stalled`].

use crate::agent::{Effect, Messenger, MsgrCtx, StepOutputs};
use crate::cluster::Cluster;
use crate::error::RunError;
use navp_sim::key::{EventKey, NodeId};
use navp_sim::store::NodeStore;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

enum DaemonMsg {
    Agent(Box<dyn Messenger>),
    Shutdown,
}

#[derive(Default)]
struct EventState {
    count: u64,
    waiters: VecDeque<(Box<dyn Messenger>, NodeId)>,
}

struct Shared {
    chans: Vec<Sender<DaemonMsg>>,
    live: AtomicUsize,
    progress: AtomicU64,
    steps: AtomicU64,
    hops: AtomicU64,
    events: Mutex<HashMap<EventKey, EventState>>,
    failure: Mutex<Option<RunError>>,
}

impl Shared {
    fn shutdown_all(&self) {
        for ch in &self.chans {
            // Ignore send failures: a daemon that already exited is fine.
            let _ = ch.send(DaemonMsg::Shutdown);
        }
    }

    fn fail(&self, err: RunError) {
        let mut f = self.failure.lock();
        if f.is_none() {
            *f = Some(err);
        }
        drop(f);
        self.shutdown_all();
    }

    fn signal(&self, key: EventKey) {
        let woken = {
            let mut ev = self.events.lock();
            let st = ev.entry(key).or_default();
            match st.waiters.pop_front() {
                Some(w) => Some(w),
                None => {
                    st.count += 1;
                    None
                }
            }
        };
        if let Some((msgr, pe)) = woken {
            self.progress.fetch_add(1, Ordering::Relaxed);
            let _ = self.chans[pe].send(DaemonMsg::Agent(msgr));
        }
    }
}

/// Result of a wall-clock run.
pub struct WallReport {
    /// Elapsed wall-clock time of the run (excluding setup/teardown).
    pub wall: Duration,
    /// Post-run node-variable stores (index = PE).
    pub stores: Vec<NodeStore>,
    /// Total messenger steps executed.
    pub steps: u64,
    /// Total inter-PE hops taken.
    pub hops: u64,
}

impl std::fmt::Debug for WallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WallReport")
            .field("wall", &self.wall)
            .field("steps", &self.steps)
            .field("hops", &self.hops)
            .field("pes", &self.stores.len())
            .finish_non_exhaustive()
    }
}

/// Multithreaded executor: one daemon thread per PE, real migration over
/// channels, wall-clock timing.
pub struct ThreadExecutor {
    watchdog: Duration,
}

impl Default for ThreadExecutor {
    fn default() -> Self {
        ThreadExecutor::new()
    }
}

impl ThreadExecutor {
    /// Executor with the default 10 s no-progress watchdog.
    pub fn new() -> ThreadExecutor {
        ThreadExecutor {
            watchdog: Duration::from_secs(10),
        }
    }

    /// Override the no-progress watchdog (tests of deadlocking programs
    /// want this short).
    pub fn with_watchdog(mut self, watchdog: Duration) -> ThreadExecutor {
        self.watchdog = watchdog;
        self
    }

    /// Run the cluster to completion on real threads.
    pub fn run(&self, cluster: Cluster) -> Result<WallReport, RunError> {
        let (stores, injections, initial_events) = cluster.into_parts();
        let pes = stores.len();
        if injections.is_empty() {
            return Ok(WallReport {
                wall: Duration::ZERO,
                stores,
                steps: 0,
                hops: 0,
            });
        }

        let mut senders = Vec::with_capacity(pes);
        let mut receivers: Vec<Receiver<DaemonMsg>> = Vec::with_capacity(pes);
        for _ in 0..pes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Shared {
            chans: senders,
            live: AtomicUsize::new(injections.len()),
            progress: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            hops: AtomicU64::new(0),
            events: Mutex::new(HashMap::new()),
            failure: Mutex::new(None),
        };

        {
            let mut ev = shared.events.lock();
            for key in initial_events {
                ev.entry(key).or_default().count += 1;
            }
        }
        // Queue the time-zero injections before any daemon starts.
        for (pe, msgr) in injections {
            let _ = shared.chans[pe].send(DaemonMsg::Agent(msgr));
        }

        let start = Instant::now();
        let mut joined_stores: Vec<Option<NodeStore>> = (0..pes).map(|_| None).collect();
        let mut panic_msg: Option<String> = None;

        std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = stores
                .into_iter()
                .zip(receivers)
                .enumerate()
                .map(|(pe, (store, rx))| {
                    s.spawn(move || daemon(pe, pes, store, rx, shared))
                })
                .collect();

            // Watchdog: abort when no step/signal happens for `watchdog`.
            let tick = Duration::from_millis(20).min(self.watchdog);
            let mut last = shared.progress.load(Ordering::Relaxed);
            let mut stagnant = Duration::ZERO;
            loop {
                if shared.live.load(Ordering::SeqCst) == 0 {
                    break;
                }
                if shared.failure.lock().is_some() {
                    break;
                }
                std::thread::sleep(tick);
                let now = shared.progress.load(Ordering::Relaxed);
                if now == last {
                    stagnant += tick;
                    if stagnant >= self.watchdog {
                        shared.fail(RunError::Stalled {
                            live: shared.live.load(Ordering::SeqCst),
                        });
                        break;
                    }
                } else {
                    last = now;
                    stagnant = Duration::ZERO;
                }
            }

            for (pe, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(store) => joined_stores[pe] = Some(store),
                    Err(p) => {
                        let msg = p
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| p.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic".to_string());
                        panic_msg = Some(msg);
                    }
                }
            }
        });
        let wall = start.elapsed();

        if let Some(msg) = panic_msg {
            return Err(RunError::WorkerPanic(msg));
        }
        if let Some(err) = shared.failure.lock().take() {
            return Err(err);
        }
        Ok(WallReport {
            wall,
            stores: joined_stores
                .into_iter()
                .map(|s| s.expect("all daemons joined"))
                .collect(),
            steps: shared.steps.load(Ordering::Relaxed),
            hops: shared.hops.load(Ordering::Relaxed),
        })
    }
}

/// The daemon loop of one PE. Owns the PE's node-variable store for the
/// duration of the run and returns it when the PE shuts down.
fn daemon(
    pe: NodeId,
    pes: usize,
    mut store: NodeStore,
    rx: Receiver<DaemonMsg>,
    shared: &Shared,
) -> NodeStore {
    // Locally injected messengers run before we poll the channel again —
    // MESSENGERS' local scheduling queue.
    let mut local: VecDeque<Box<dyn Messenger>> = VecDeque::new();
    let mut out = StepOutputs::default();
    loop {
        let msgr = if let Some(m) = local.pop_front() {
            m
        } else {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(DaemonMsg::Agent(m)) => m,
                Ok(DaemonMsg::Shutdown) => break,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        run_messenger(pe, pes, msgr, &mut store, &mut local, &mut out, shared);
    }
    store
}

/// Step one messenger until it leaves this PE (hop), parks (wait), or
/// finishes.
fn run_messenger(
    pe: NodeId,
    pes: usize,
    mut msgr: Box<dyn Messenger>,
    store: &mut NodeStore,
    local: &mut VecDeque<Box<dyn Messenger>>,
    out: &mut StepOutputs,
    shared: &Shared,
) {
    loop {
        out.clear();
        let effect = {
            let mut ctx = MsgrCtx::new(pe, pes, store, out);
            msgr.step(&mut ctx)
        };
        shared.steps.fetch_add(1, Ordering::Relaxed);
        shared.progress.fetch_add(1, Ordering::Relaxed);

        for inj in out.injections.drain(..) {
            shared.live.fetch_add(1, Ordering::SeqCst);
            local.push_back(inj);
        }
        for key in out.signals.drain(..) {
            shared.signal(key);
        }

        match effect {
            Effect::Hop(dst) if dst == pe => continue,
            Effect::Hop(dst) => {
                if dst >= pes {
                    shared.fail(RunError::BadHop {
                        agent: msgr.label(),
                        dst,
                        pes,
                    });
                    return;
                }
                shared.hops.fetch_add(1, Ordering::Relaxed);
                let _ = shared.chans[dst].send(DaemonMsg::Agent(msgr));
                return;
            }
            Effect::WaitEvent(key) => {
                let mut ev = shared.events.lock();
                let st = ev.entry(key).or_default();
                if st.count > 0 {
                    st.count -= 1;
                    drop(ev);
                    continue;
                }
                st.waiters.push_back((msgr, pe));
                return;
            }
            Effect::Done => {
                if shared.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                    shared.shutdown_all();
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::key::Key;
    use crate::script::Script;

    #[test]
    fn simple_hop_and_write() {
        let mut c = Cluster::new(3).unwrap();
        c.store_mut(2).insert(Key::plain("B"), 20.0f64, 8);
        c.inject(
            0,
            Script::new("worker")
                .then(|_| Effect::Hop(2))
                .then(|ctx| {
                    let b = *ctx.store().get::<f64>(Key::plain("B")).unwrap();
                    ctx.store().insert(Key::plain("C"), b + 2.0, 8);
                    Effect::Done
                }),
        );
        let rep = ThreadExecutor::new().run(c).unwrap();
        assert_eq!(rep.stores[2].get::<f64>(Key::plain("C")), Some(&22.0));
        assert_eq!(rep.hops, 1);
        assert!(rep.steps >= 2);
    }

    #[test]
    fn empty_cluster_returns_immediately() {
        let c = Cluster::new(2).unwrap();
        let rep = ThreadExecutor::new().run(c).unwrap();
        assert_eq!(rep.steps, 0);
    }

    #[test]
    fn events_across_pes() {
        let mut c = Cluster::new(2).unwrap();
        // Consumer on PE1 waits; producer hops to PE1 and signals there.
        c.inject(
            1,
            Script::new("consumer")
                .then(|_| Effect::WaitEvent(Key::plain("ready")))
                .then(|ctx| {
                    assert!(ctx.store_ref().contains(Key::plain("data")));
                    ctx.store().insert(Key::plain("ok"), true, 1);
                    Effect::Done
                }),
        );
        c.inject(
            0,
            Script::new("producer")
                .then(|_| Effect::Hop(1))
                .then(|ctx| {
                    ctx.store().insert(Key::plain("data"), 1u8, 1);
                    ctx.signal(Key::plain("ready"));
                    Effect::Done
                }),
        );
        let rep = ThreadExecutor::new().run(c).unwrap();
        assert_eq!(rep.stores[1].get::<bool>(Key::plain("ok")), Some(&true));
    }

    #[test]
    fn deadlock_hits_watchdog() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(
            0,
            Script::new("stuck").then(|_| Effect::WaitEvent(Key::plain("never"))),
        );
        let err = ThreadExecutor::new()
            .with_watchdog(Duration::from_millis(200))
            .run(c)
            .unwrap_err();
        assert!(matches!(err, RunError::Stalled { live: 1 }));
    }

    #[test]
    fn bad_hop_reported() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(0, Script::new("wild").then(|_| Effect::Hop(5)));
        assert!(matches!(
            ThreadExecutor::new().run(c),
            Err(RunError::BadHop { dst: 5, .. })
        ));
    }

    #[test]
    fn worker_panic_reported() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(0, Script::new("boom").then(|_| panic!("kapow")));
        match ThreadExecutor::new()
            .with_watchdog(Duration::from_millis(500))
            .run(c)
        {
            Err(RunError::WorkerPanic(msg)) => assert!(msg.contains("kapow")),
            other => panic!("expected panic error, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn injection_fanout_counts() {
        // A spawner injecting 10 children, each hopping once then done.
        let mut c = Cluster::new(4).unwrap();
        c.inject(
            0,
            Script::new("spawner").then(|ctx| {
                for i in 0..10usize {
                    ctx.inject(
                        Script::new("child")
                            .then(move |_| Effect::Hop(i % 4))
                            .then(move |cctx| {
                                cctx.store().insert(Key::at("mark", i), i, 8);
                                Effect::Done
                            }),
                    );
                }
                Effect::Done
            }),
        );
        let rep = ThreadExecutor::new().run(c).unwrap();
        let total: usize = rep.stores.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn many_agents_many_hops_terminate() {
        let mut c = Cluster::new(4).unwrap();
        for a in 0..32usize {
            c.inject(
                a % 4,
                Script::new("tourist").then_each(16, move |k, _| Effect::Hop((a + k) % 4)),
            );
        }
        let rep = ThreadExecutor::new().run(c).unwrap();
        // 16 hop-steps per agent; some are local (free) but all counted as steps.
        assert_eq!(rep.steps, 32 * 17);
    }
}
