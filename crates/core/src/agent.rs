//! Messengers: self-migrating computations.

use navp_sim::key::{EventKey, NodeId};
use navp_sim::store::NodeStore;

/// The navigational command a messenger returns from one [`Messenger::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Move the computation locus to the given PE; the next `step` runs
    /// there. Hopping to the current PE is legal and free.
    Hop(NodeId),
    /// Block until the event has been signalled (counting semantics:
    /// each `wait` consumes one `signal`). The next `step` runs on the
    /// same PE once the event fires.
    WaitEvent(EventKey),
    /// The messenger is finished; it is dropped by the executor.
    Done,
}

/// A self-migrating computation.
///
/// The struct's fields are the messenger's **agent variables** — private
/// to it and carried along on every hop. Node variables are reached only
/// through the [`MsgrCtx`] passed to `step`, so a borrow of PE-resident
/// data can never survive a migration.
///
/// `step` is called repeatedly by an executor; each call runs the code
/// between two navigational commands, returning the next command. A
/// messenger therefore keeps an explicit "program counter" field when its
/// control flow spans several hops (all the carriers in `navp-mm` do).
pub trait Messenger: Send + 'static {
    /// Execute until the next navigational command.
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect;

    /// Size in bytes of the agent variables this messenger carries on a
    /// hop — the paper's "cost of a hop() is essentially the cost of
    /// moving the data stored in agent variables plus a small amount of
    /// state data". The executor adds the fixed state overhead itself.
    fn payload_bytes(&self) -> u64 {
        0
    }

    /// Display label used in traces and diagrams, e.g. `RowCarrier(3)`.
    fn label(&self) -> String {
        "messenger".to_string()
    }

    /// Clone this messenger's agent variables into a fresh boxed copy —
    /// the checkpoint taken at each delivery point by fault-tolerant
    /// executors (see `navp::recovery`). The default returns `None`,
    /// meaning the messenger cannot be checkpointed: a crash that loses
    /// it surfaces as [`RunError::RecoveryFailed`](crate::RunError).
    /// `Clone` types implement it as `Some(Box::new(self.clone()))`.
    fn snapshot(&self) -> Option<Box<dyn Messenger>> {
        None
    }

    /// Serialize this messenger's agent variables into a self-describing
    /// byte snapshot so a networked executor can ship it across a process
    /// boundary and reconstitute it on the receiving PE (the decode half
    /// lives in a type-tag registry keyed by [`WireSnapshot::tag`]).
    ///
    /// The default returns `None`, meaning the messenger is memory-only:
    /// a distributed executor refuses to run it
    /// ([`RunError::NotSerializable`](crate::RunError)) rather than
    /// silently dropping it at the first inter-process hop.
    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        None
    }
}

/// A serialized messenger: a registry type tag plus the encoded agent
/// variables. Produced by [`Messenger::wire_snapshot`]; the receiving
/// side looks `tag` up in its registry to find the decode function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Registry type tag, e.g. `"mm.RowCarrier"`.
    pub tag: String,
    /// Encoded agent variables (format is private to the type's codec).
    pub bytes: Vec<u8>,
}

impl WireSnapshot {
    /// Build a snapshot from a tag and encoded bytes.
    pub fn new(tag: impl Into<String>, bytes: Vec<u8>) -> Self {
        WireSnapshot {
            tag: tag.into(),
            bytes,
        }
    }
}

impl Messenger for Box<dyn Messenger> {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        (**self).step(ctx)
    }
    fn payload_bytes(&self) -> u64 {
        (**self).payload_bytes()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn snapshot(&self) -> Option<Box<dyn Messenger>> {
        (**self).snapshot()
    }
    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        (**self).wire_snapshot()
    }
}

/// Everything a messenger can see and do during one step, besides
/// returning its next [`Effect`].
pub struct MsgrCtx<'a> {
    here: NodeId,
    num_nodes: usize,
    store: &'a mut NodeStore,
    out: &'a mut StepOutputs,
}

/// Side effects accumulated during one step, consumed by the executor.
#[derive(Default)]
pub struct StepOutputs {
    /// Messengers injected (spawned) locally during the step.
    pub injections: Vec<Box<dyn Messenger>>,
    /// Events signalled during the step.
    pub signals: Vec<EventKey>,
    /// Modeled floating-point work, in flops.
    pub flops: u64,
    /// Compute-rate multiplier (≥ 1) for the charged flops; 1.0 for
    /// cache-friendly code, `CostModel::mpi_cache_factor` otherwise.
    pub factor: f64,
    /// Bytes of node/agent data the step touched (drives the paging model).
    pub touched_bytes: u64,
    /// Additional modeled seconds not captured by flops (I/O, fixed costs).
    pub extra_seconds: f64,
}

impl StepOutputs {
    /// Reset for reuse between steps.
    pub fn clear(&mut self) {
        self.injections.clear();
        self.signals.clear();
        self.flops = 0;
        self.factor = 0.0;
        self.touched_bytes = 0;
        self.extra_seconds = 0.0;
    }
}

impl<'a> MsgrCtx<'a> {
    /// Construct a context (executor-side API).
    pub fn new(
        here: NodeId,
        num_nodes: usize,
        store: &'a mut NodeStore,
        out: &'a mut StepOutputs,
    ) -> Self {
        MsgrCtx {
            here,
            num_nodes,
            store,
            out,
        }
    }

    /// The PE this step is executing on.
    pub fn here(&self) -> NodeId {
        self.here
    }

    /// Number of PEs in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The node-variable store of the current PE.
    pub fn store(&mut self) -> &mut NodeStore {
        self.store
    }

    /// Read-only view of the current PE's store.
    pub fn store_ref(&self) -> &NodeStore {
        self.store
    }

    /// Spawn a messenger **on the current PE** (injection is local in
    /// MESSENGERS; hop first to spawn elsewhere). The new messenger
    /// becomes runnable when this step completes.
    pub fn inject(&mut self, m: impl Messenger) {
        self.out.injections.push(Box::new(m));
    }

    /// Signal a counting event, waking (at most) one waiter.
    pub fn signal(&mut self, e: EventKey) {
        self.out.signals.push(e);
    }

    /// Charge `flops` of cache-friendly compute to this step
    /// (virtual-time executors only; wall-clock executors ignore charges
    /// because the arithmetic itself is being measured).
    pub fn charge_flops(&mut self, flops: u64) {
        self.charge_flops_factor(flops, 1.0);
    }

    /// Charge compute with an explicit cache-behaviour factor (≥ 1).
    pub fn charge_flops_factor(&mut self, flops: u64, factor: f64) {
        self.out.flops += flops;
        self.out.factor = self.out.factor.max(factor);
    }

    /// Declare that this step touched `bytes` of data; feeds the paging
    /// model when the PE's resident set exceeds physical memory.
    pub fn charge_touched(&mut self, bytes: u64) {
        self.out.touched_bytes += bytes;
    }

    /// Charge fixed modeled time not derived from flops.
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.out.extra_seconds += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::key::Key;

    struct Nop;
    impl Messenger for Nop {
        fn step(&mut self, _ctx: &mut MsgrCtx<'_>) -> Effect {
            Effect::Done
        }
    }

    #[test]
    fn ctx_accumulates_outputs() {
        let mut store = NodeStore::new();
        let mut out = StepOutputs::default();
        let mut ctx = MsgrCtx::new(2, 4, &mut store, &mut out);
        assert_eq!(ctx.here(), 2);
        assert_eq!(ctx.num_nodes(), 4);
        ctx.charge_flops(100);
        ctx.charge_flops_factor(50, 1.04);
        ctx.charge_touched(64);
        ctx.charge_seconds(0.5);
        ctx.signal(Key::plain("E"));
        ctx.inject(Nop);
        assert_eq!(out.flops, 150);
        assert!((out.factor - 1.04).abs() < 1e-12);
        assert_eq!(out.touched_bytes, 64);
        assert_eq!(out.extra_seconds, 0.5);
        assert_eq!(out.signals, vec![Key::plain("E")]);
        assert_eq!(out.injections.len(), 1);

        out.clear();
        assert_eq!(out.flops, 0);
        assert!(out.injections.is_empty());
    }

    #[test]
    fn ctx_reaches_store() {
        let mut store = NodeStore::new();
        store.insert(Key::plain("x"), 5i32, 4);
        let mut out = StepOutputs::default();
        let mut ctx = MsgrCtx::new(0, 1, &mut store, &mut out);
        *ctx.store().get_mut::<i32>(Key::plain("x")).unwrap() += 1;
        assert_eq!(ctx.store_ref().get::<i32>(Key::plain("x")), Some(&6));
    }

    #[test]
    fn default_payload_and_label() {
        let n = Nop;
        assert_eq!(n.payload_bytes(), 0);
        assert_eq!(n.label(), "messenger");
    }
}
