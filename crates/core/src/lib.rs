//! # Navigational Programming (NavP) runtime
//!
//! A Rust reproduction of the programming model of MESSENGERS, the system
//! underlying *"Incremental Parallelization Using Navigational
//! Programming: A Case Study"* (ICPP 2005).
//!
//! In NavP a distributed program is composed from **self-migrating
//! computations**. A computation (a *messenger*, here [`Messenger`])
//! executes on one PE at a time and navigates the cluster explicitly:
//!
//! * [`Effect::Hop`] moves the computation's locus to another PE. Its
//!   **agent variables** — in this reproduction, simply the fields of the
//!   struct implementing [`Messenger`] — travel with it; node-resident
//!   data stays behind in **node variables** ([`NodeStore`]).
//! * [`MsgrCtx::signal`] / [`Effect::WaitEvent`] synchronize messengers
//!   through counting events, MESSENGERS' `signalEvent`/`waitEvent`.
//! * [`MsgrCtx::inject`] spawns another messenger **on the current PE**
//!   (all injection is local, as in MESSENGERS; a program that wants to
//!   start work elsewhere hops there first — exactly what the paper's
//!   spawner loops do).
//!
//! ## Writing a messenger
//!
//! MESSENGERS checkpoints a migrating thread's state automatically. Rust
//! has no portable way to move a live stack between threads, so a
//! messenger is written as an explicit state machine: [`Messenger::step`]
//! runs the code *between* two navigational commands and returns the next
//! command. The borrow checker then enforces MESSENGERS' discipline
//! statically: node variables (`&mut` borrowed from the context only
//! inside `step`) cannot leak across a hop, and agent variables (owned
//! fields) move with the box. See [`script::Script`] for a closure-based
//! shorthand used by tests and small examples.
//!
//! ## Executing
//!
//! Two interchangeable executors run the same messengers:
//!
//! The three transformations themselves (DSC, pipelining, phase
//! shifting) are available as a reusable API in [`transform`] — the
//! paper's future-work item made concrete.
//!
//! * [`SimExecutor`] — a deterministic discrete-event simulator over the
//!   [`navp_sim`] virtual cluster. Work is charged through
//!   [`MsgrCtx::charge_flops`] and friends; the result is a virtual-time
//!   makespan plus a full [`navp_sim::Trace`]. This is what regenerates
//!   the paper's tables at the original problem sizes.
//! * [`ThreadExecutor`] — one OS thread per PE with real agent migration
//!   over channels; measures wall-clock time on the host machine.
//!
//! Both executors honour an optional [`FaultPlan`] attached to the
//! cluster: deterministic PE crashes, hop-delivery delays/drops and lost
//! event signals, absorbed (when checkpointing is on) by the
//! hop-boundary checkpoint/restart machinery in [`recovery`].

#![warn(missing_docs)]

pub mod agent;
pub mod cluster;
pub mod durable;
pub mod error;
pub mod explore;
pub mod fault;
pub mod recovery;
pub mod script;
pub mod sim_exec;
pub mod thread_exec;
pub mod transform;

pub use agent::{Effect, Messenger, MsgrCtx, StepOutputs, WireSnapshot};
pub use cluster::Cluster;
pub use error::RunError;
pub use fault::{FaultPlan, FaultStats, SplitMix64, FAULT_SPEC_ENV};
pub use navp_sim::key::{EventKey, Key, NodeId, VarKey};
pub use sim_exec::{SimExecutor, SimReport};
pub use navp_sim::store::NodeStore;
pub use thread_exec::{ThreadExecutor, WallReport};
