//! Hop-boundary checkpoint/restart machinery.
//!
//! Recovery in NavP exploits the programming model itself: a messenger's
//! entire computation state travels in its agent variables, and those
//! are only externally visible at *delivery points* — injection, hop
//! arrival, event wake-up. So a checkpoint is simply a clone of the
//! boxed agent state taken at each delivery point
//! ([`Messenger::snapshot`]), and a crashed PE is restored by
//!
//! 1. rebuilding its node store as `initial store + replay of the write
//!    journal` ([`WriteJournal`]), and
//! 2. re-delivering the last checkpoint of every messenger that was
//!    resident on (or in flight to) the PE ([`CheckpointTable`]).
//!
//! Journals are committed once per *run* (the non-preemptive span from
//! delivery until the messenger hops away, parks, or finishes), the
//! same granularity at which `fault` injects crashes — so a crash never
//! observes half a run's writes, and replay reproduces the store
//! bitwise.

use crate::agent::Messenger;
use navp_sim::store::SharedValue;
use navp_sim::{NodeStore, VarKey};
use std::collections::HashMap;

/// One journaled store mutation.
///
/// `Write` holds a [`SharedValue`]: committing a run's writes and
/// cloning a journal are reference bumps. The store's copy-on-write
/// machinery un-shares a live entry only when a later run actually
/// mutates it, so journaling never deep-copies untouched blocks.
#[derive(Clone)]
pub enum JournalOp {
    /// `key` held this value (with these declared bytes) after the run.
    Write {
        /// The mutated node variable.
        key: VarKey,
        /// Shared snapshot of its value at commit time.
        val: SharedValue,
        /// Declared resident bytes.
        bytes: u64,
    },
    /// `key` was removed (e.g. a `take` that carried a block away).
    Remove {
        /// The removed node variable.
        key: VarKey,
    },
}

/// Ordered log of one PE's node-store mutations, committed at run
/// boundaries. Replaying it over a clone of the initial store rebuilds
/// the exact store a crash destroyed.
#[derive(Default)]
pub struct WriteJournal {
    ops: Vec<JournalOp>,
}

impl WriteJournal {
    /// An empty journal.
    pub fn new() -> WriteJournal {
        WriteJournal::default()
    }

    /// Number of journaled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commit the run that just finished: drain the store's dirty keys
    /// (deterministically sorted) and append each key's post-run state —
    /// a shared (copy-on-write) snapshot, or a removal marker if the key
    /// is gone.
    ///
    /// The store must have tracking enabled ([`NodeStore::enable_tracking`]);
    /// with tracking off this is a no-op.
    pub fn commit_dirty(&mut self, store: &mut NodeStore) {
        for key in store.drain_dirty() {
            match store.clone_entry(key) {
                Some((val, bytes)) => self.ops.push(JournalOp::Write { key, val, bytes }),
                None => self.ops.push(JournalOp::Remove { key }),
            }
        }
    }

    /// Replay every journaled op into `store` (in commit order). Returns
    /// the number of ops replayed. The journal is left intact so a later
    /// crash of the same PE can replay again.
    pub fn replay_into(&self, store: &mut NodeStore) -> u64 {
        for op in &self.ops {
            match op {
                JournalOp::Write { key, val, bytes } => {
                    store.insert_shared(*key, val.clone(), *bytes);
                }
                JournalOp::Remove { key } => {
                    store.remove_key(*key);
                }
            }
        }
        self.ops.len() as u64
    }
}

struct Checkpoint {
    pe: usize,
    label: String,
    snap: Option<Box<dyn Messenger>>,
}

/// A checkpoint restored from the table by [`CheckpointTable::drain_pe`]:
/// the messenger's id, its label, and the snapshot (or `None` when the
/// messenger type does not support snapshots — recovery must then fail
/// with [`RunError::RecoveryFailed`](crate::RunError::RecoveryFailed)).
pub type RestoredCheckpoint = (u64, String, Option<Box<dyn Messenger>>);

/// The live checkpoint of every in-flight messenger, keyed by the
/// executor's messenger id.
///
/// Lifecycle: [`register`](CheckpointTable::register)ed at each delivery
/// point, [`relocate`](CheckpointTable::relocate)d when a hop leaves for
/// another PE (the in-flight messenger now belongs to the destination's
/// failure domain), [`remove`](CheckpointTable::remove)d when the
/// messenger finishes or parks on an event (parked state is held by the
/// executor's event service, which survives PE crashes).
#[derive(Default)]
pub struct CheckpointTable {
    map: HashMap<u64, Checkpoint>,
}

impl CheckpointTable {
    /// An empty table.
    pub fn new() -> CheckpointTable {
        CheckpointTable::default()
    }

    /// Number of live checkpoints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no checkpoints are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Record messenger `id`'s state at a delivery point on `pe`.
    /// Overwrites any earlier checkpoint of the same messenger.
    pub fn register(&mut self, id: u64, pe: usize, msgr: &dyn Messenger) {
        self.map.insert(
            id,
            Checkpoint {
                pe,
                label: msgr.label(),
                snap: msgr.snapshot(),
            },
        );
    }

    /// Drop messenger `id`'s checkpoint (it finished, or parked into the
    /// crash-safe event service).
    pub fn remove(&mut self, id: u64) {
        self.map.remove(&id);
    }

    /// Move messenger `id`'s checkpoint to PE `dst`: from the moment a
    /// hop is sent, the messenger is lost iff *the destination* crashes.
    pub fn relocate(&mut self, id: u64, dst: usize) {
        if let Some(c) = self.map.get_mut(&id) {
            c.pe = dst;
        }
    }

    /// Visit every live checkpoint in ascending id order (deterministic
    /// spill order for the durable on-disk format): `(id, pe, label,
    /// snapshot)`. The snapshot is `None` for messenger types without
    /// snapshot support — the durable layer must reject those.
    pub fn iter_ordered(
        &self,
    ) -> impl Iterator<Item = (u64, usize, &str, Option<&dyn Messenger>)> + '_ {
        let mut ids: Vec<u64> = self.map.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(move |id| {
            let c = &self.map[&id];
            (id, c.pe, c.label.as_str(), c.snap.as_deref())
        })
    }

    /// Remove and return every checkpoint owned by crashed PE `pe`, in
    /// ascending id order (deterministic re-delivery).
    pub fn drain_pe(&mut self, pe: usize) -> Vec<RestoredCheckpoint> {
        let mut ids: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, c)| c.pe == pe)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let c = self.map.remove(&id).expect("id just listed");
                (id, c.label, c.snap)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Effect, MsgrCtx};
    use navp_sim::Key;

    #[test]
    fn journal_replay_rebuilds_store() {
        let initial = {
            let mut s = NodeStore::new();
            s.insert(Key::plain("keep"), 7u32, 4);
            s.insert(Key::plain("gone"), 1u8, 1);
            s
        };
        let mut live = initial.clone();
        live.enable_tracking();
        live.drain_dirty(); // clone carried the enable; start clean

        let mut journal = WriteJournal::new();
        // Run 1: write a vec, mutate it, remove "gone".
        live.insert(Key::plain("v"), vec![1.0f64, 2.0], 16);
        live.get_mut::<Vec<f64>>(Key::plain("v")).unwrap()[0] = 5.0;
        let _: Option<u8> = live.take(Key::plain("gone"));
        journal.commit_dirty(&mut live);
        // Run 2: overwrite the vec.
        live.insert(Key::plain("v"), vec![9.0f64], 8);
        journal.commit_dirty(&mut live);

        let mut rebuilt = initial.clone();
        let replayed = journal.replay_into(&mut rebuilt);
        assert_eq!(replayed, 3); // v + gone, then v again
        assert_eq!(rebuilt.get::<Vec<f64>>(Key::plain("v")), Some(&vec![9.0]));
        assert!(!rebuilt.contains(Key::plain("gone")));
        assert_eq!(rebuilt.get::<u32>(Key::plain("keep")), Some(&7));
        assert_eq!(rebuilt.total_bytes(), live.total_bytes());

        // Replay is repeatable (journal intact for a second crash).
        let mut again = initial.clone();
        journal.replay_into(&mut again);
        assert_eq!(again.get::<Vec<f64>>(Key::plain("v")), Some(&vec![9.0]));
    }

    #[derive(Clone)]
    struct Probe(u32);
    impl Messenger for Probe {
        fn step(&mut self, _ctx: &mut MsgrCtx<'_>) -> Effect {
            Effect::Done
        }
        fn label(&self) -> String {
            format!("probe{}", self.0)
        }
        fn snapshot(&self) -> Option<Box<dyn Messenger>> {
            Some(Box::new(self.clone()))
        }
    }

    struct NoSnap;
    impl Messenger for NoSnap {
        fn step(&mut self, _ctx: &mut MsgrCtx<'_>) -> Effect {
            Effect::Done
        }
        fn label(&self) -> String {
            "nosnap".to_string()
        }
    }

    #[test]
    fn checkpoint_lifecycle() {
        let mut t = CheckpointTable::new();
        t.register(1, 0, &Probe(10));
        t.register(2, 0, &Probe(20));
        t.register(3, 1, &Probe(30));
        assert_eq!(t.len(), 3);

        // Messenger 2 hops from PE 0 to PE 1: its failure domain moves.
        t.relocate(2, 1);
        // Messenger 1 finishes.
        t.remove(1);

        let pe0 = t.drain_pe(0);
        assert!(pe0.is_empty());
        let pe1 = t.drain_pe(1);
        assert_eq!(
            pe1.iter().map(|(id, _, _)| *id).collect::<Vec<_>>(),
            vec![2, 3],
            "drained in ascending id order"
        );
        assert!(pe1.iter().all(|(_, _, s)| s.is_some()));
        assert!(t.is_empty());
    }

    #[test]
    fn snapshotless_messenger_yields_none() {
        let mut t = CheckpointTable::new();
        t.register(7, 0, &NoSnap);
        let drained = t.drain_pe(0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1, "nosnap");
        assert!(drained[0].2.is_none(), "recovery must report failure");
    }

    #[test]
    fn reregister_overwrites() {
        let mut t = CheckpointTable::new();
        t.register(1, 0, &Probe(1));
        t.register(1, 2, &Probe(2));
        assert_eq!(t.len(), 1);
        let drained = t.drain_pe(2);
        assert_eq!(drained.len(), 1);
    }
}
