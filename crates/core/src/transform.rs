//! The three NavP transformations as a reusable API — the paper's
//! future-work item ("the NavP transformations are at least partially
//! automatable. Building tools to automate them is part of our future
//! work"), realized as library functions.
//!
//! The starting point is a sequential computation rewritten as an
//! **itinerary**: an ordered list of [`WorkItem`]s, each naming the PE
//! whose node variables it touches. From there:
//!
//! * [`Itinerary::into_messenger`] is the **DSC Transformation** — the
//!   hops are inserted mechanically between work items (consecutive
//!   items on one PE run in one daemon turn, like any messenger);
//! * [`pipeline`] is the **Pipelining Transformation** — a list of
//!   independent itineraries becomes a list of carriers injected in
//!   order at their entry PEs, overlapping exactly as the paper's
//!   Figure 1(c);
//! * [`Itinerary::phase_shift`] is the **Phase-shifting
//!   Transformation** — rotate an itinerary so it enters the pipeline
//!   at a different point (legal whenever the items commute, as the
//!   caller asserts by calling it; the matrix case study's k-sums are
//!   the canonical example).
//!
//! The case-study carriers in `navp-mm` are written as bespoke state
//! machines (their agent variables are meaningful data), but
//! `examples/transformations.rs` walks a complete sequential → DSC →
//! pipelined → phase-shifted derivation of a different computation
//! using only this module.

use crate::agent::{Effect, Messenger, MsgrCtx};
use navp_sim::key::NodeId;

/// One unit of work bound to the PE holding its data.
pub struct WorkItem {
    /// PE whose node variables the closure accesses.
    pub pe: NodeId,
    /// The work; runs with the context of `pe`.
    pub run: Box<dyn FnMut(&mut MsgrCtx<'_>) + Send>,
}

impl WorkItem {
    /// Convenience constructor.
    pub fn new(pe: NodeId, run: impl FnMut(&mut MsgrCtx<'_>) + Send + 'static) -> WorkItem {
        WorkItem {
            pe,
            run: Box::new(run),
        }
    }
}

/// An ordered sequence of [`WorkItem`]s — a sequential program whose
/// data happens to be distributed.
pub struct Itinerary {
    name: String,
    payload: u64,
    items: Vec<WorkItem>,
}

impl Itinerary {
    /// Start an empty itinerary.
    pub fn new(name: impl Into<String>) -> Itinerary {
        Itinerary {
            name: name.into(),
            payload: 0,
            items: Vec::new(),
        }
    }

    /// Declare the agent-variable bytes the resulting carrier hauls.
    pub fn with_payload(mut self, bytes: u64) -> Itinerary {
        self.payload = bytes;
        self
    }

    /// Append a work item.
    pub fn then_at(
        mut self,
        pe: NodeId,
        run: impl FnMut(&mut MsgrCtx<'_>) + Send + 'static,
    ) -> Itinerary {
        self.items.push(WorkItem::new(pe, run));
        self
    }

    /// Number of work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the itinerary has no work.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The PE where this itinerary starts (PE 0 if empty).
    pub fn entry_pe(&self) -> NodeId {
        self.items.first().map_or(0, |w| w.pe)
    }

    /// Concatenate another itinerary after this one — how a single DSC
    /// thread strings several logical tasks together (Fig. 5's outer
    /// `mi` loop is a concat of row itineraries).
    pub fn concat(mut self, other: Itinerary) -> Itinerary {
        self.items.extend(other.items);
        self
    }

    /// **Phase-shifting Transformation**: rotate the itinerary left by
    /// `offset` items, so execution enters at a different point of the
    /// cycle. Caller asserts the items commute (each item must not
    /// depend on an earlier one's effects — true of the paper's k-sums).
    pub fn phase_shift(mut self, offset: usize) -> Itinerary {
        if !self.items.is_empty() {
            let n = self.items.len();
            self.items.rotate_left(offset % n);
        }
        self
    }

    /// **DSC Transformation**: turn the itinerary into a self-migrating
    /// messenger — hops are inserted wherever consecutive items live on
    /// different PEs. Inject it at [`Itinerary::entry_pe`].
    pub fn into_messenger(self) -> DscCarrier {
        DscCarrier {
            name: self.name,
            payload: self.payload,
            items: self.items,
            next: 0,
        }
    }
}

/// The messenger produced by the DSC Transformation.
pub struct DscCarrier {
    name: String,
    payload: u64,
    items: Vec<WorkItem>,
    next: usize,
}

impl Messenger for DscCarrier {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        // Run every consecutive item resident on this PE, then hop (the
        // non-preemptive daemon turn the executors model).
        loop {
            match self.items.get_mut(self.next) {
                None => return Effect::Done,
                Some(item) if item.pe == ctx.here() => {
                    (item.run)(ctx);
                    self.next += 1;
                }
                Some(item) => return Effect::Hop(item.pe),
            }
        }
    }

    fn payload_bytes(&self) -> u64 {
        self.payload
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

/// **Pipelining Transformation**: a list of *independent* itineraries
/// becomes the carriers of a pipeline — returned as `(entry_pe,
/// carrier)` pairs in injection order, ready for `Cluster::inject` (or
/// a `Launcher` when entries differ). Independence (no itinerary reads
/// what another writes, or the accesses commute) is the transformation's
/// precondition, exactly as in the paper.
pub fn pipeline(itineraries: Vec<Itinerary>) -> Vec<(NodeId, DscCarrier)> {
    itineraries
        .into_iter()
        .map(|it| (it.entry_pe(), it.into_messenger()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use navp_sim::key::Key;
    use navp_sim::CostModel;

    /// A 3-PE itinerary that sums the PEs' node variables into an
    /// *agent variable* (state shared by the itinerary's closures, which
    /// travels with the carrier) and deposits the total wherever the
    /// walk ends.
    fn summing_itinerary(tag: usize) -> Itinerary {
        let acc = std::sync::Arc::new(std::sync::Mutex::new((0.0f64, 0usize)));
        let mut it = Itinerary::new(format!("sum{tag}"));
        for pe in 0..3 {
            let acc = acc.clone();
            it = it.then_at(pe, move |ctx| {
                let x = *ctx.store().get::<f64>(Key::plain("x")).expect("placed");
                let mut a = acc.lock().unwrap();
                a.0 += x;
                a.1 += 1;
                if a.1 == 3 {
                    let total = a.0;
                    ctx.store().insert(Key::at("total", tag), total, 8);
                }
            });
        }
        it
    }

    fn cluster_with_x() -> Cluster {
        let mut cl = Cluster::new(3).expect("cluster");
        for pe in 0..3 {
            cl.store_mut(pe).insert(Key::plain("x"), (pe + 1) as f64, 8);
        }
        cl
    }

    #[test]
    fn dsc_transformation_visits_in_order() {
        let mut cl = cluster_with_x();
        let carrier = summing_itinerary(0).into_messenger();
        cl.inject(0, carrier);
        let rep = crate::sim_exec::SimExecutor::new(CostModel::paper_cluster())
            .run(cl)
            .expect("runs");
        // The walk ends on PE2 with total 1+2+3.
        assert_eq!(rep.stores[2].get::<f64>(Key::at("total", 0)), Some(&6.0));
    }

    #[test]
    fn phase_shift_rotates_entry() {
        let it = summing_itinerary(0).phase_shift(2);
        assert_eq!(it.entry_pe(), 2);
        let mut cl = cluster_with_x();
        cl.inject(2, it.into_messenger());
        let rep = crate::sim_exec::SimExecutor::new(CostModel::paper_cluster())
            .run(cl)
            .expect("runs");
        // Rotation: visits 2, 0, 1 — the total lands on PE1, unchanged
        // because the items commute.
        assert_eq!(rep.stores[1].get::<f64>(Key::at("total", 0)), Some(&6.0));
    }

    #[test]
    fn phase_shift_full_cycle_is_identity() {
        let it = summing_itinerary(0).phase_shift(3);
        assert_eq!(it.entry_pe(), 0);
        let it = Itinerary::new("empty").phase_shift(5);
        assert!(it.is_empty());
    }

    #[test]
    fn pipeline_overlaps_carriers() {
        // Three independent itineraries, each charging 1 s per PE visit.
        let mk = |tag: usize| {
            let mut it = Itinerary::new(format!("w{tag}"));
            for pe in 0..3 {
                it = it.then_at(pe, move |ctx| {
                    ctx.charge_seconds(1.0);
                    ctx.store().insert(Key::at("done", tag), true, 1);
                });
            }
            it
        };
        let mut cl = Cluster::new(3).expect("cluster");
        for (pe, carrier) in pipeline(vec![mk(0), mk(1), mk(2)]) {
            cl.inject(pe, carrier);
        }
        let mut cost = CostModel::ideal_network();
        cost.daemon_overhead = 0.0;
        let rep = crate::sim_exec::SimExecutor::new(cost).run(cl).expect("runs");
        // Pipelined makespan: (3 carriers + 3 stages - 1) x 1 s = 5 s,
        // not the sequential 9 s.
        assert!((rep.makespan.as_secs_f64() - 5.0).abs() < 1e-9, "{}", rep.makespan);
        // Phase-shifted: enter at different PEs -> 3 s.
        let mut cl = Cluster::new(3).expect("cluster");
        for (i, it) in [mk(0), mk(1), mk(2)].into_iter().enumerate() {
            let it = it.phase_shift(i);
            cl.inject(it.entry_pe(), it.into_messenger());
        }
        let rep = crate::sim_exec::SimExecutor::new(cost).run(cl).expect("runs");
        assert!((rep.makespan.as_secs_f64() - 3.0).abs() < 1e-9, "{}", rep.makespan);
    }
}
