//! The deterministic virtual-time executor.
//!
//! [`SimExecutor`] runs a [`Cluster`] of messengers under the
//! [`navp_sim`] machine model as a discrete-event simulation:
//!
//! * each PE's CPU runs one messenger step at a time (steps queue behind
//!   each other, so compute contention is modeled);
//! * a hop serializes on the sender's NIC, then takes
//!   `latency + payload/bandwidth` to arrive — this is the paper's
//!   "cost of a hop() is the cost of moving the agent variables plus a
//!   small amount of state data";
//! * paging time is charged when a PE's resident node variables (plus
//!   visiting agent payloads) exceed physical memory;
//! * events with equal timestamps fire in scheduling order, so a given
//!   configuration replays **bit-identically** — the property the
//!   determinism tests pin down with trace fingerprints.
//!
//! The result is a [`SimReport`]: virtual makespan, the post-run stores
//! (to extract the product matrix), and optionally a full [`Trace`].

use crate::agent::{Effect, Messenger, MsgrCtx, StepOutputs};
use crate::cluster::{Cluster, ClusterParts};
use crate::durable::{self, DurableCodec, DurableError, Manifest, ParkedWaiter};
use crate::error::RunError;
use crate::fault::{FaultPlan, FaultStats, FaultTracker, HopFault};
use crate::recovery::{CheckpointTable, WriteJournal};
use navp_metrics::RunMetrics;
use navp_obs::EventKind as ObsKind;
use navp_sim::key::{EventKey, NodeId};
use navp_sim::store::NodeStore;
use navp_sim::memory::MemoryModel;
use navp_sim::trace::{Trace, TraceEvent, TraceKind};
use navp_sim::{CostModel, EventQueue, PeResources, VTime};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

/// Fixed per-hop state overhead in bytes (thread control block, program
/// counter, daemon bookkeeping) — the paper's "small amount of state data".
pub const HOP_STATE_BYTES: u64 = 256;

struct AgentSlot {
    msgr: Option<Box<dyn Messenger>>,
    pe: NodeId,
    label: String,
    /// Delivery generation: bumped when a crash re-delivers this agent
    /// from a checkpoint, so queue entries from before the crash are
    /// recognized as stale and discarded.
    gen: u64,
}

/// Fault-injection state, allocated only when the cluster carries a
/// non-empty [`FaultPlan`](crate::FaultPlan) — fault-free runs pay
/// nothing.
struct FaultMachinery {
    tracker: FaultTracker,
    ckpt: CheckpointTable,
    journals: Vec<WriteJournal>,
    /// Pristine pre-run stores; a crashed PE's store is rebuilt as
    /// `initial + journal replay`.
    initial: Vec<NodeStore>,
    stats: FaultStats,
}

#[derive(Default)]
struct EventState {
    count: u64,
    /// Parked agents with the virtual time they parked at (feeds the
    /// park-time metrics; in this executor park durations are virtual).
    waiters: VecDeque<(usize, VTime)>,
}

/// Result of a virtual-time run.
pub struct SimReport {
    /// Virtual time at which the last messenger finished.
    pub makespan: VTime,
    /// Post-run node-variable stores (index = PE).
    pub stores: Vec<NodeStore>,
    /// Execution trace (empty unless tracing was enabled).
    pub trace: Trace,
    /// Total messenger steps executed.
    pub steps: u64,
    /// Total inter-PE hops taken.
    pub hops: u64,
    /// Total bytes carried across PEs by hops.
    pub hop_bytes: u64,
    /// What the fault machinery did (all zero on a fault-free run).
    pub faults: FaultStats,
}

impl std::fmt::Debug for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimReport")
            .field("makespan", &self.makespan)
            .field("steps", &self.steps)
            .field("hops", &self.hops)
            .field("hop_bytes", &self.hop_bytes)
            .field("pes", &self.stores.len())
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

/// Durable-spill state: target directory, codec, session nonce and the
/// monotone boundary counter stamped into each cut.
struct DurableSpill {
    dir: PathBuf,
    codec: Arc<dyn DurableCodec>,
    nonce: u64,
    boundary: u64,
}

fn durable_run_err(e: DurableError) -> RunError {
    RunError::Transport {
        detail: e.to_string(),
    }
}

/// Spill the whole cluster's consistent cut (committed stores, live
/// checkpoints, event service) to the durable directory. Called only at
/// run boundaries, where the recovery invariants guarantee consistency.
fn spill_all(
    ds: &mut DurableSpill,
    fm: &FaultMachinery,
    num_nodes: usize,
    events: &HashMap<EventKey, EventState>,
    agents: &[AgentSlot],
    metrics: Option<&RunMetrics>,
) -> Result<(), RunError> {
    ds.boundary += 1;
    // Event counts and parked waiters all go into PE 0's cut: restore
    // replays every cut's event section regardless of which PE it rode
    // in, and each waiter records its own origin PE.
    let mut waiters = Vec::new();
    let mut counts = Vec::new();
    let mut keys: Vec<&EventKey> = events.keys().collect();
    keys.sort();
    for key in keys {
        let st = &events[key];
        if st.count > 0 {
            counts.push((*key, st.count));
        }
        for &(aid, _) in &st.waiters {
            let m = agents[aid].msgr.as_ref().ok_or_else(|| RunError::Transport {
                detail: format!("parked agent {} has no messenger", agents[aid].label),
            })?;
            let snap = m.wire_snapshot().ok_or_else(|| RunError::NotSerializable {
                agent: agents[aid].label.clone(),
            })?;
            waiters.push(ParkedWaiter {
                id: aid as u64,
                origin: agents[aid].pe as u32,
                key: *key,
                snap,
            });
        }
    }
    for pe in 0..num_nodes {
        let store = durable::committed_store(&fm.initial[pe], &fm.journals[pe]);
        let (w, c) = if pe == 0 {
            (std::mem::take(&mut waiters), std::mem::take(&mut counts))
        } else {
            (Vec::new(), Vec::new())
        };
        let cut = durable::build_cut(
            pe,
            num_nodes,
            ds.nonce,
            ds.boundary,
            &store,
            &fm.ckpt,
            w,
            c,
            ds.codec.as_ref(),
        )
        .map_err(durable_run_err)?;
        let bytes = durable::write_cut(&ds.dir, &cut).map_err(durable_run_err)?;
        if let Some(mx) = metrics {
            mx.durable_flushes.inc();
            mx.durable_bytes.add(bytes);
        }
    }
    Ok(())
}

/// Deterministic discrete-event executor for NavP programs.
pub struct SimExecutor {
    cost: CostModel,
    tracing: bool,
    metrics: Option<Arc<RunMetrics>>,
    durable: Option<(PathBuf, Arc<dyn DurableCodec>)>,
}

impl SimExecutor {
    /// An executor over the given machine model, tracing disabled.
    pub fn new(cost: CostModel) -> SimExecutor {
        SimExecutor {
            cost,
            tracing: false,
            metrics: None,
            durable: None,
        }
    }

    /// Spill a durable checkpoint of the whole cluster to `dir` at every
    /// run boundary (and once before the first run), so the process can
    /// be killed at any point and the computation restored bitwise with
    /// [`crate::durable::read_all_cuts`] + [`crate::durable::restore_cluster`].
    ///
    /// Requires every messenger to be wire-serializable
    /// ([`Messenger::wire_snapshot`]); otherwise the run fails with
    /// [`RunError::NotSerializable`]. Without this builder the executor
    /// performs **zero** filesystem syscalls.
    pub fn with_durable(
        mut self,
        dir: impl Into<PathBuf>,
        codec: Arc<dyn DurableCodec>,
    ) -> SimExecutor {
        self.durable = Some((dir.into(), codec));
        self
    }

    /// Enable full tracing (needed for space-time diagrams; costs memory
    /// proportional to the number of steps).
    pub fn with_trace(mut self) -> SimExecutor {
        self.tracing = true;
        self
    }

    /// Export live metrics into `metrics` during the run (off by
    /// default). Counters mirror the real executors'; durations (park
    /// time) are *virtual* nanoseconds, because that is the clock this
    /// executor runs on.
    pub fn with_metrics(mut self, metrics: Arc<RunMetrics>) -> SimExecutor {
        self.metrics = Some(metrics);
        self
    }

    /// Run the cluster to completion.
    ///
    /// Returns [`RunError::Deadlock`] when messengers remain but no event
    /// can ever fire, and [`RunError::BadHop`] on a hop outside the
    /// cluster. Under a fault plan, an unrecoverable crash returns
    /// [`RunError::PeCrashed`] (checkpointing disabled) or
    /// [`RunError::RecoveryFailed`] (lost state cannot be restored).
    pub fn run(&self, cluster: Cluster) -> Result<SimReport, RunError> {
        let ClusterParts {
            mut stores,
            injections,
            initial_events,
            fault_plan,
        } = cluster.into_parts();
        let num_nodes = stores.len();
        let mut pes: Vec<PeResources> = (0..num_nodes).map(|_| PeResources::new()).collect();
        // Queue payloads carry the agent's delivery generation so
        // deliveries scheduled before a crash are discarded as stale.
        let mut queue: EventQueue<(usize, u64)> = EventQueue::new();
        let mut agents: Vec<AgentSlot> = Vec::with_capacity(injections.len());
        let mut events: HashMap<EventKey, EventState> = HashMap::new();
        let mut trace = if self.tracing {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        // Flight-recorder lane for the whole simulated mesh. Events
        // are observational only — nothing reads them back into the
        // run, so products stay bitwise-identical recorder on or off.
        let flight_lane = navp_obs::flight().lane("sim");

        // A cluster without an explicit plan accepts one from the
        // `NAVP_FAULT_SPEC` environment (repro files paste in verbatim);
        // a malformed spec is a loud error, not a silently clean run.
        let fault_plan = match fault_plan {
            Some(p) => Some(p),
            None => FaultPlan::from_env().map_err(|detail| RunError::Transport { detail })?,
        };
        // Durable mode needs the journal/checkpoint machinery even
        // under an empty fault plan: the cut it spills *is* that state.
        let fault_plan = match fault_plan.filter(|p| !p.is_empty()) {
            None if self.durable.is_some() => Some(FaultPlan::new()),
            other => other,
        };
        let mut fm = fault_plan.map(|plan| {
            // Snapshot the pristine stores before write tracking starts:
            // a crashed PE's store is rebuilt from this plus its journal.
            // Copy-on-write makes this a reference bump per entry.
            let initial = stores.clone();
            for s in &mut stores {
                s.enable_tracking();
            }
            FaultMachinery {
                tracker: FaultTracker::new(plan, num_nodes),
                ckpt: CheckpointTable::new(),
                journals: (0..num_nodes).map(|_| WriteJournal::new()).collect(),
                initial,
                stats: FaultStats::default(),
            }
        });

        for key in initial_events {
            events.entry(key).or_default().count += 1;
        }

        let metrics = self.metrics.as_deref();
        let note_ckpt = |m: &dyn Messenger| {
            if let Some(mx) = metrics {
                mx.checkpoints.inc();
                mx.checkpoint_bytes.add(m.payload_bytes());
            }
        };
        let mut live = 0usize;
        for (pe, msgr) in injections {
            let label = msgr.label();
            if let Some(fm) = &mut fm {
                fm.ckpt.register(agents.len() as u64, pe, msgr.as_ref());
                note_ckpt(msgr.as_ref());
            }
            if let Some(p) = metrics.and_then(|m| m.pe(pe)) {
                p.injections.inc();
            }
            agents.push(AgentSlot {
                msgr: Some(msgr),
                pe,
                label,
                gen: 0,
            });
            queue.schedule(VTime::ZERO, (agents.len() - 1, 0));
            live += 1;
        }

        let mut ds = match &self.durable {
            Some((dir, codec)) => {
                let nonce = durable::fresh_nonce();
                durable::write_manifest(dir, &Manifest {
                    pes: num_nodes,
                    nonce,
                })
                .map_err(durable_run_err)?;
                let mut ds = DurableSpill {
                    dir: dir.clone(),
                    codec: Arc::clone(codec),
                    nonce,
                    boundary: 0,
                };
                // Boundary 0: the injected-but-unrun cluster, so even a
                // kill before the first run restores cleanly.
                let fm = fm.as_ref().expect("durable mode forces fault machinery");
                spill_all(&mut ds, fm, num_nodes, &events, &agents, metrics)?;
                Some(ds)
            }
            None => None,
        };

        let mut out = StepOutputs::default();
        let mut makespan = VTime::ZERO;
        let (mut steps, mut hops, mut hop_bytes) = (0u64, 0u64, 0u64);

        while let Some((t, (aid, gen))) = queue.pop() {
            if agents[aid].gen != gen {
                // Scheduled before a crash re-delivered this agent.
                continue;
            }
            let pe = agents[aid].pe;

            // A delivery is a run boundary: the only place a fault plan
            // may crash this PE.
            if let Some(fm) = &mut fm {
                if let Some(run) = fm.tracker.on_run(pe) {
                    if !fm.tracker.plan().checkpointing {
                        return Err(RunError::PeCrashed { pe, run });
                    }
                    fm.stats.crashes += 1;
                    if let Some(mx) = metrics {
                        mx.faults.inc();
                    }
                    // Rebuild the store: pristine copy + journal replay.
                    let mut rebuilt = fm.initial[pe].clone();
                    fm.stats.replayed_writes += fm.journals[pe].replay_into(&mut rebuilt);
                    rebuilt.enable_tracking();
                    stores[pe] = rebuilt;
                    // Re-deliver every messenger lost with the PE from
                    // its last checkpoint (parked event-waiters survive
                    // in the event service and are not re-delivered).
                    let resume =
                        t + VTime::from_secs_f64(fm.tracker.plan().recovery_seconds);
                    for (id, label, snap) in fm.ckpt.drain_pe(pe) {
                        let Some(snap) = snap else {
                            return Err(RunError::RecoveryFailed {
                                pe,
                                reason: format!(
                                    "messenger {label} does not support snapshots"
                                ),
                            });
                        };
                        fm.ckpt.register(id, pe, snap.as_ref());
                        note_ckpt(snap.as_ref());
                        let id = id as usize;
                        agents[id].gen += 1;
                        agents[id].msgr = Some(snap);
                        queue.schedule(resume, (id, agents[id].gen));
                        fm.stats.redelivered += 1;
                    }
                    makespan = makespan.max(resume);
                    continue;
                }
            }

            let mut msgr = match agents[aid].msgr.take() {
                Some(m) => m,
                // A stale wake-up for an agent that already finished
                // cannot happen (Done agents are never rescheduled), but
                // be defensive.
                None => continue,
            };

            // The MESSENGERS daemon is non-preemptive: a messenger runs
            // until it leaves the PE, blocks on an unsignalled event, or
            // finishes. Local hops and waits on already-banked events
            // therefore continue inline (`t` advances to the step's end),
            // exactly like the threaded executor's daemon loop.
            let mut t = t;
            loop {
            out.clear();
            let effect = {
                let mut ctx = MsgrCtx::new(pe, num_nodes, &mut stores[pe], &mut out);
                msgr.step(&mut ctx)
            };
            steps += 1;
            if let Some(p) = metrics.and_then(|m| m.pe(pe)) {
                p.steps.inc();
            }

            // Duration: modeled compute + daemon overhead + paging.
            let mut dur = self
                .cost
                .compute_time(out.flops, out.factor.max(1.0))
                + self.cost.overhead()
                + VTime::from_secs_f64(out.extra_seconds);
            if out.touched_bytes > 0 {
                let mut mem = MemoryModel::new();
                mem.grow(stores[pe].total_bytes() + msgr.payload_bytes());
                let fault = mem.fault_time(out.touched_bytes, &self.cost);
                if fault > VTime::ZERO {
                    dur += fault;
                    trace.push(TraceEvent {
                        start: t,
                        end: t + fault,
                        actor: aid as u64,
                        label: agents[aid].label.clone(),
                        kind: TraceKind::Fault { pe },
                    });
                }
            }
            let (start, end) = pes[pe].run(t, dur);
            makespan = makespan.max(end);
            trace.push(TraceEvent {
                start,
                end,
                actor: aid as u64,
                label: agents[aid].label.clone(),
                kind: TraceKind::Exec { pe },
            });

            // Local injections become runnable when this step completes.
            for inj in out.injections.drain(..) {
                let label = inj.label();
                if let Some(fm) = &mut fm {
                    fm.ckpt.register(agents.len() as u64, pe, inj.as_ref());
                    note_ckpt(inj.as_ref());
                }
                if let Some(p) = metrics.and_then(|m| m.pe(pe)) {
                    p.injections.inc();
                }
                agents.push(AgentSlot {
                    msgr: Some(inj),
                    pe,
                    label,
                    gen: 0,
                });
                live += 1;
                queue.schedule(end, (agents.len() - 1, 0));
            }

            // Signals: wake one waiter each, or bank the count.
            for key in out.signals.drain(..) {
                if let Some(fm) = &mut fm {
                    if fm.tracker.on_signal(pe) {
                        fm.stats.signals_lost += 1;
                        if let Some(mx) = metrics {
                            mx.faults.inc();
                        }
                        continue;
                    }
                }
                if let Some(p) = metrics.and_then(|m| m.pe(pe)) {
                    p.signals.inc();
                }
                trace.push(TraceEvent {
                    start: end,
                    end,
                    actor: aid as u64,
                    label: agents[aid].label.clone(),
                    kind: TraceKind::Signal { pe },
                });
                flight_lane.record(ObsKind::Signal, pe as u32, 0, aid as u64, 0);
                let st = events.entry(key).or_default();
                if let Some((waiter, parked_at)) = st.waiters.pop_front() {
                    // Waking a parked messenger is a delivery point: it
                    // re-enters its PE's failure domain, so checkpoint it.
                    if let Some(fm) = &mut fm {
                        if let Some(m) = agents[waiter].msgr.as_ref() {
                            fm.ckpt.register(waiter as u64, agents[waiter].pe, m.as_ref());
                            let bytes = m.payload_bytes();
                            if let Some(mx) = metrics {
                                mx.checkpoints.inc();
                                mx.checkpoint_bytes.add(bytes);
                            }
                        }
                    }
                    if let Some(mx) = metrics {
                        let parked_ns = ((end.as_secs_f64() - parked_at.as_secs_f64())
                            .max(0.0)
                            * 1e9) as u64;
                        if let Some(p) = mx.pe(agents[waiter].pe) {
                            p.park_ns.add(parked_ns);
                        }
                        mx.park_wait_ns.observe(parked_ns);
                    }
                    queue.schedule(end, (waiter, agents[waiter].gen));
                } else {
                    st.count += 1;
                }
            }

            match effect {
                Effect::Hop(dst) => {
                    if dst >= num_nodes {
                        return Err(RunError::BadHop {
                            agent: agents[aid].label.clone(),
                            dst,
                            pes: num_nodes,
                        });
                    }
                    if dst == pe {
                        t = end;
                        continue;
                    } else {
                        let bytes = msgr.payload_bytes() + HOP_STATE_BYTES;
                        flight_lane.record(ObsKind::HopSend, pe as u32, 0, dst as u64, bytes);
                        let (_departed, mut arrival) = pes[pe].send(end, bytes, &self.cost);
                        if let Some(fm) = &mut fm {
                            // Each delivery attempt may be faulted; a
                            // dropped attempt is retried after a backoff
                            // until the retry budget runs out.
                            let mut attempts = 0u32;
                            loop {
                                match fm.tracker.on_hop(dst) {
                                    None => break,
                                    Some(HopFault::Delay { seconds }) => {
                                        arrival += VTime::from_secs_f64(seconds);
                                        fm.stats.hops_delayed += 1;
                                        if let Some(mx) = metrics {
                                            mx.faults.inc();
                                        }
                                        break;
                                    }
                                    Some(HopFault::Drop) => {
                                        fm.stats.hops_dropped += 1;
                                        if let Some(mx) = metrics {
                                            mx.faults.inc();
                                        }
                                        attempts += 1;
                                        if attempts > fm.tracker.plan().max_send_retries {
                                            return Err(RunError::RecoveryFailed {
                                                pe: dst,
                                                reason: format!(
                                                    "hop delivery dropped {attempts} times; retry budget exhausted"
                                                ),
                                            });
                                        }
                                        fm.stats.send_retries += 1;
                                        arrival += VTime::from_secs_f64(
                                            fm.tracker.plan().retry_backoff.as_secs_f64(),
                                        );
                                    }
                                }
                            }
                            // The hop is a delivery point: checkpoint the
                            // post-run state into the destination's
                            // failure domain.
                            fm.ckpt.register(aid as u64, dst, msgr.as_ref());
                            note_ckpt(msgr.as_ref());
                        }
                        trace.push(TraceEvent {
                            start: end,
                            end: arrival,
                            actor: aid as u64,
                            label: agents[aid].label.clone(),
                            kind: TraceKind::Transfer {
                                from: pe,
                                to: dst,
                                bytes,
                            },
                        });
                        hops += 1;
                        hop_bytes += bytes;
                        if let Some(mx) = metrics {
                            if let Some(p) = mx.pe(pe) {
                                p.hops.inc();
                                p.hop_bytes.add(bytes);
                            }
                            mx.hop_payload_bytes.observe(bytes - HOP_STATE_BYTES);
                        }
                        agents[aid].pe = dst;
                        agents[aid].msgr = Some(msgr);
                        makespan = makespan.max(arrival);
                        queue.schedule(arrival, (aid, agents[aid].gen));
                        break;
                    }
                }
                Effect::WaitEvent(key) => {
                    let st = events.entry(key).or_default();
                    if st.count > 0 {
                        st.count -= 1;
                        t = end;
                        continue;
                    } else {
                        trace.push(TraceEvent {
                            start: end,
                            end,
                            actor: aid as u64,
                            label: agents[aid].label.clone(),
                            kind: TraceKind::Block { pe },
                        });
                        st.waiters.push_back((aid, end));
                        agents[aid].msgr = Some(msgr);
                        if let Some(p) = metrics.and_then(|m| m.pe(pe)) {
                            p.waits.inc();
                        }
                        // Parked state is held by the event service,
                        // which survives PE crashes: drop the checkpoint.
                        if let Some(fm) = &mut fm {
                            fm.ckpt.remove(aid as u64);
                        }
                        break;
                    }
                }
                Effect::Done => {
                    live -= 1;
                    if let Some(fm) = &mut fm {
                        fm.ckpt.remove(aid as u64);
                    }
                    // msgr dropped here.
                    break;
                }
            }
            } // inner daemon loop

            // Run boundary: commit this run's node-store writes to the
            // PE's journal (atomic w.r.t. crashes, which only fire at
            // delivery points).
            if let Some(fm) = &mut fm {
                fm.journals[pe].commit_dirty(&mut stores[pe]);
                if let Some(mx) = metrics {
                    mx.journal_commits.inc();
                }
                if let Some(ds) = &mut ds {
                    spill_all(ds, fm, num_nodes, &events, &agents, metrics)?;
                }
            }
        }

        if live > 0 {
            let mut blocked = Vec::new();
            for (key, st) in &events {
                for &(aid, _) in &st.waiters {
                    if agents[aid].msgr.is_some() {
                        blocked.push((agents[aid].label.clone(), key.to_string()));
                    }
                }
            }
            blocked.sort();
            return Err(RunError::Deadlock { blocked });
        }

        Ok(SimReport {
            makespan,
            stores,
            trace,
            steps,
            hops,
            hop_bytes,
            faults: fm.map(|f| f.stats).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::key::Key;
    use crate::script::Script;

    fn cost() -> CostModel {
        CostModel::paper_cluster()
    }

    #[test]
    fn single_agent_compute_time() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(
            0,
            Script::new("solo").then(|ctx| {
                ctx.charge_flops(111_000_000); // 1.0 s at paper rate
                Effect::Done
            }),
        );
        let mut m = cost();
        m.daemon_overhead = 0.0;
        let rep = SimExecutor::new(m).run(c).unwrap();
        assert!((rep.makespan.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(rep.steps, 1);
        assert_eq!(rep.hops, 0);
    }

    #[test]
    fn hop_charges_transfer_and_moves_locus() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(
            0,
            Script::new("hopper")
                .with_payload(11_500_000) // 1 s of serialization
                .then(|_| Effect::Hop(1))
                .then(|ctx| {
                    assert_eq!(ctx.here(), 1);
                    ctx.store().insert(Key::plain("arrived"), true, 1);
                    Effect::Done
                }),
        );
        let mut m = cost();
        m.daemon_overhead = 0.0;
        let rep = SimExecutor::new(m).run(c).unwrap();
        // makespan = serialize(payload + state) + latency
        let expect = (11_500_000.0 + HOP_STATE_BYTES as f64) / 11.5e6 + 0.8e-3;
        assert!((rep.makespan.as_secs_f64() - expect).abs() < 1e-6);
        assert_eq!(rep.hops, 1);
        assert_eq!(rep.stores[1].get::<bool>(Key::plain("arrived")), Some(&true));
    }

    #[test]
    fn local_hop_is_free_of_network_cost() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(
            0,
            Script::new("stay")
                .with_payload(1 << 30)
                .then(|_| Effect::Hop(0))
                .then(|_| Effect::Done),
        );
        let mut m = cost();
        m.daemon_overhead = 0.0;
        let rep = SimExecutor::new(m).run(c).unwrap();
        assert_eq!(rep.makespan, VTime::ZERO);
        assert_eq!(rep.hops, 0);
    }

    #[test]
    fn events_synchronize_producer_consumer() {
        let mut c = Cluster::new(1).unwrap();
        // Consumer waits first, producer signals after 1 s of work.
        c.inject(
            0,
            Script::new("consumer")
                .then(|_| Effect::WaitEvent(Key::plain("go")))
                .then(|ctx| {
                    ctx.store().insert(Key::plain("done"), true, 1);
                    Effect::Done
                }),
        );
        c.inject(
            0,
            Script::new("producer").then(|ctx| {
                ctx.charge_seconds(1.0);
                ctx.signal(Key::plain("go"));
                Effect::Done
            }),
        );
        let mut m = cost();
        m.daemon_overhead = 0.0;
        let rep = SimExecutor::new(m).run(c).unwrap();
        assert!((rep.makespan.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(rep.stores[0].get::<bool>(Key::plain("done")), Some(&true));
    }

    #[test]
    fn event_signals_bank_like_semaphores() {
        let mut c = Cluster::new(1).unwrap();
        // Producer signals twice *before* the consumers wait.
        c.inject(
            0,
            Script::new("producer").then(|ctx| {
                ctx.signal(Key::plain("tok"));
                ctx.signal(Key::plain("tok"));
                Effect::Done
            }),
        );
        for i in 0..2 {
            c.inject(
                0,
                Script::new("consumer")
                    .then(|_| Effect::WaitEvent(Key::plain("tok")))
                    .then(move |ctx| {
                        ctx.store().insert(Key::at("got", i), true, 1);
                        Effect::Done
                    }),
            );
        }
        let rep = SimExecutor::new(cost()).run(c).unwrap();
        assert_eq!(rep.stores[0].get::<bool>(Key::at("got", 0)), Some(&true));
        assert_eq!(rep.stores[0].get::<bool>(Key::at("got", 1)), Some(&true));
    }

    #[test]
    fn deadlock_is_reported_with_blockers() {
        let mut c = Cluster::new(1).unwrap();
        c.inject(
            0,
            Script::new("stuck").then(|_| Effect::WaitEvent(Key::plain("never"))),
        );
        let err = SimExecutor::new(cost()).run(c).unwrap_err();
        match err {
            RunError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].0.contains("stuck"));
                assert!(blocked[0].1.contains("never"));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn bad_hop_is_reported() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(0, Script::new("wild").then(|_| Effect::Hop(7)));
        assert!(matches!(
            SimExecutor::new(cost()).run(c),
            Err(RunError::BadHop { dst: 7, pes: 2, .. })
        ));
    }

    #[test]
    fn injection_spawns_locally() {
        let mut c = Cluster::new(2).unwrap();
        c.inject(
            0,
            Script::new("spawner").then(|ctx| {
                let here = ctx.here();
                ctx.inject(Script::new("child").then(move |cctx| {
                    assert_eq!(cctx.here(), here, "injection must be local");
                    cctx.store().insert(Key::plain("child-ran"), true, 1);
                    Effect::Done
                }));
                Effect::Done
            }),
        );
        let rep = SimExecutor::new(cost()).run(c).unwrap();
        assert_eq!(
            rep.stores[0].get::<bool>(Key::plain("child-ran")),
            Some(&true)
        );
        assert!(rep.stores[1].is_empty());
    }

    #[test]
    fn pipelined_agents_overlap_in_virtual_time() {
        // Two agents, each: 1 s work on PE0, hop, 1 s work on PE1.
        // Pipelined makespan must be ~3 s, not 4 s.
        let mut c = Cluster::new(2).unwrap();
        for i in 0..2 {
            c.inject(
                0,
                Script::new(if i == 0 { "first" } else { "second" })
                    .then(|ctx| {
                        ctx.charge_seconds(1.0);
                        Effect::Hop(1)
                    })
                    .then(|ctx| {
                        ctx.charge_seconds(1.0);
                        Effect::Done
                    }),
            );
        }
        let mut m = cost();
        m.daemon_overhead = 0.0;
        m.nic_latency = 0.0;
        m.nic_bandwidth = f64::INFINITY;
        let rep = SimExecutor::new(m).run(c).unwrap();
        assert!((rep.makespan.as_secs_f64() - 3.0).abs() < 1e-9, "{}", rep.makespan);
    }

    #[test]
    fn deterministic_fingerprints() {
        let build = || {
            let mut c = Cluster::new(3).unwrap();
            for i in 0..5usize {
                c.inject(
                    i % 3,
                    Script::new("w")
                        .then(move |ctx| {
                            ctx.charge_flops(1000 * (i as u64 + 1));
                            Effect::Hop((i + 1) % 3)
                        })
                        .then(|_| Effect::Done),
                );
            }
            c
        };
        let r1 = SimExecutor::new(cost()).with_trace().run(build()).unwrap();
        let r2 = SimExecutor::new(cost()).with_trace().run(build()).unwrap();
        assert_eq!(r1.trace.fingerprint(), r2.trace.fingerprint());
        assert_eq!(r1.makespan, r2.makespan);
    }

    /// A checkpointable messenger that ping-pongs between PEs, bumping a
    /// per-PE visit counter on each arrival.
    #[derive(Clone)]
    struct PingPong {
        hops_left: usize,
    }
    impl Messenger for PingPong {
        fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
            let k = Key::plain("count");
            let cur = ctx.store_ref().get::<u64>(k).copied().unwrap_or(0);
            ctx.store().insert(k, cur + 1, 8);
            if self.hops_left == 0 {
                return Effect::Done;
            }
            self.hops_left -= 1;
            Effect::Hop((ctx.here() + 1) % ctx.num_nodes())
        }
        fn label(&self) -> String {
            "pingpong".to_string()
        }
        fn snapshot(&self) -> Option<Box<dyn Messenger>> {
            Some(Box::new(self.clone()))
        }
    }

    fn pingpong_cluster() -> Cluster {
        let mut c = Cluster::new(2).unwrap();
        c.inject(0, PingPong { hops_left: 6 });
        c
    }

    fn counts(rep: &SimReport) -> (u64, u64) {
        let k = Key::plain("count");
        (
            rep.stores[0].get::<u64>(k).copied().unwrap_or(0),
            rep.stores[1].get::<u64>(k).copied().unwrap_or(0),
        )
    }

    #[test]
    fn crash_recovery_preserves_results() {
        use crate::fault::FaultPlan;
        let clean = SimExecutor::new(cost()).run(pingpong_cluster()).unwrap();
        assert_eq!(counts(&clean), (4, 3));
        assert!(!clean.faults.any());

        // Crash PE 1 just before its second run: the store rebuild must
        // replay the first visit's write and the messenger must resume
        // from its hop checkpoint.
        let faulted = pingpong_cluster().with_fault_plan(FaultPlan::new().crash_pe(1, 2));
        let rep = SimExecutor::new(cost()).run(faulted).unwrap();
        assert_eq!(counts(&rep), counts(&clean), "recovery must be exact");
        assert_eq!(rep.faults.crashes, 1);
        assert_eq!(rep.faults.redelivered, 1);
        assert!(rep.faults.replayed_writes >= 1);
        assert!(rep.makespan > clean.makespan, "recovery costs virtual time");
    }

    #[test]
    fn crash_without_checkpointing_is_structured() {
        use crate::fault::FaultPlan;
        let c = pingpong_cluster()
            .with_fault_plan(FaultPlan::new().crash_pe(0, 1).without_checkpointing());
        assert!(matches!(
            SimExecutor::new(cost()).run(c),
            Err(RunError::PeCrashed { pe: 0, run: 1 })
        ));
    }

    #[test]
    fn dropped_hop_retries_then_delivers() {
        use crate::fault::FaultPlan;
        let clean = SimExecutor::new(cost()).run(pingpong_cluster()).unwrap();
        let c = pingpong_cluster().with_fault_plan(FaultPlan::new().drop_hop(1, 1));
        let rep = SimExecutor::new(cost()).run(c).unwrap();
        assert_eq!(counts(&rep), counts(&clean));
        assert_eq!(rep.faults.hops_dropped, 1);
        assert_eq!(rep.faults.send_retries, 1);
    }

    #[test]
    fn drop_exhaustion_is_recovery_failure() {
        use crate::fault::FaultPlan;
        let mut plan = FaultPlan::new();
        for nth in 1..=4 {
            plan = plan.drop_hop(1, nth);
        }
        let c = pingpong_cluster().with_fault_plan(plan);
        assert!(matches!(
            SimExecutor::new(cost()).run(c),
            Err(RunError::RecoveryFailed { pe: 1, .. })
        ));
    }

    #[test]
    fn delayed_hop_extends_makespan() {
        use crate::fault::FaultPlan;
        let clean = SimExecutor::new(cost()).run(pingpong_cluster()).unwrap();
        let c = pingpong_cluster().with_fault_plan(FaultPlan::new().delay_hop(1, 1, 2.0));
        let rep = SimExecutor::new(cost()).run(c).unwrap();
        assert_eq!(counts(&rep), counts(&clean));
        assert_eq!(rep.faults.hops_delayed, 1);
        assert!(rep.makespan.as_secs_f64() >= clean.makespan.as_secs_f64() + 1.999);
    }

    #[test]
    fn lost_signal_deadlocks_waiter() {
        use crate::fault::FaultPlan;
        let build = || {
            let mut c = Cluster::new(1).unwrap();
            c.inject(
                0,
                Script::new("producer").then(|ctx| {
                    ctx.signal(Key::plain("go"));
                    Effect::Done
                }),
            );
            c.inject(
                0,
                Script::new("consumer")
                    .then(|_| Effect::WaitEvent(Key::plain("go")))
                    .then(|_| Effect::Done),
            );
            c
        };
        // Sanity: fault-free it terminates.
        SimExecutor::new(cost()).run(build()).unwrap();
        let c = build().with_fault_plan(FaultPlan::new().lose_signal(0, 1));
        assert!(matches!(
            SimExecutor::new(cost()).run(c),
            Err(RunError::Deadlock { .. })
        ));
    }

    #[test]
    fn crash_spares_parked_waiters() {
        use crate::fault::FaultPlan;
        // The consumer parks on PE 0 before the crash; its state lives in
        // the event service and must survive the crash that destroys the
        // producer's delivery (which is then re-delivered and re-run).
        #[derive(Clone)]
        struct Producer {
            fired: bool,
        }
        impl Messenger for Producer {
            fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
                if !self.fired {
                    self.fired = true;
                    return Effect::Hop(ctx.here()); // run boundary filler
                }
                ctx.signal(Key::plain("go"));
                Effect::Done
            }
            fn snapshot(&self) -> Option<Box<dyn Messenger>> {
                Some(Box::new(self.clone()))
            }
        }
        #[derive(Clone)]
        struct Consumer {
            waited: bool,
        }
        impl Messenger for Consumer {
            fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
                if !self.waited {
                    self.waited = true;
                    return Effect::WaitEvent(Key::plain("go"));
                }
                ctx.store().insert(Key::plain("done"), true, 1);
                Effect::Done
            }
            fn snapshot(&self) -> Option<Box<dyn Messenger>> {
                Some(Box::new(self.clone()))
            }
        }
        let mut c = Cluster::new(1).unwrap();
        c.inject(0, Consumer { waited: false });
        c.inject(0, Producer { fired: false });
        c.set_fault_plan(FaultPlan::new().crash_pe(0, 2));
        let rep = SimExecutor::new(cost()).run(c).unwrap();
        assert_eq!(rep.stores[0].get::<bool>(Key::plain("done")), Some(&true));
        assert_eq!(rep.faults.crashes, 1);
        assert_eq!(rep.faults.redelivered, 1, "only the producer is lost");
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use crate::fault::FaultPlan;
        let run = || {
            let c = pingpong_cluster().with_fault_plan(FaultPlan::seeded(0xFA17, 2));
            SimExecutor::new(cost()).with_trace().run(c).unwrap()
        };
        let (r1, r2) = (run(), run());
        assert_eq!(r1.trace.fingerprint(), r2.trace.fingerprint());
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.faults, r2.faults);
    }

    #[test]
    fn metrics_reconcile_with_sim_report() {
        let m = RunMetrics::new(2);
        let rep = SimExecutor::new(cost())
            .with_metrics(Arc::clone(&m))
            .run(pingpong_cluster())
            .unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.total("navp_hops_total") as u64, rep.hops);
        assert_eq!(snap.total("navp_hop_bytes_total") as u64, rep.hop_bytes);
        assert_eq!(snap.total("navp_steps_total") as u64, rep.steps);
        assert_eq!(snap.total("navp_injections_total") as u64, 1);
        navp_metrics::validate_prometheus(&m.registry.render()).expect("valid");
    }

    /// Wire-serializable ping-pong for the durable tests (the plain
    /// [`PingPong`] has snapshots but no wire form).
    #[derive(Clone)]
    struct WirePingPong {
        hops_left: usize,
    }
    impl Messenger for WirePingPong {
        fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
            let k = Key::plain("count");
            let cur = ctx.store_ref().get::<u64>(k).copied().unwrap_or(0);
            ctx.store().insert(k, cur + 1, 8);
            if self.hops_left == 0 {
                return Effect::Done;
            }
            self.hops_left -= 1;
            Effect::Hop((ctx.here() + 1) % ctx.num_nodes())
        }
        fn label(&self) -> String {
            "wirepingpong".to_string()
        }
        fn snapshot(&self) -> Option<Box<dyn Messenger>> {
            Some(Box::new(self.clone()))
        }
        fn wire_snapshot(&self) -> Option<crate::agent::WireSnapshot> {
            let mut w = navp_sim::codec::WireWriter::new();
            w.put_usize(self.hops_left);
            Some(crate::agent::WireSnapshot::new("test.wpp", w.into_vec()))
        }
    }

    /// Minimal durable codec for stores whose values are all `u64`.
    struct ToyCodec;
    impl DurableCodec for ToyCodec {
        fn encode_store(&self, store: &NodeStore) -> Result<Vec<u8>, String> {
            let mut keys: Vec<Key> = store.keys().copied().collect();
            keys.sort();
            let mut w = navp_sim::codec::WireWriter::new();
            for k in keys {
                let v = store
                    .get::<u64>(k)
                    .ok_or_else(|| format!("{k} is not a u64"))?;
                w.put_key(&k);
                w.put_u64(*v);
            }
            Ok(w.into_vec())
        }
        fn decode_store(&self, bytes: &[u8]) -> Result<NodeStore, String> {
            let mut r = navp_sim::codec::WireReader::new(bytes);
            let mut s = NodeStore::new();
            while r.remaining() > 0 {
                let k = r.get_key().map_err(|e| e.to_string())?;
                let v = r.get_u64().map_err(|e| e.to_string())?;
                s.insert(k, v, 8);
            }
            Ok(s)
        }
        fn decode_messenger(
            &self,
            snap: &crate::agent::WireSnapshot,
        ) -> Result<Box<dyn Messenger>, String> {
            match snap.tag.as_str() {
                "test.wpp" => {
                    let mut r = navp_sim::codec::WireReader::new(&snap.bytes);
                    Ok(Box::new(WirePingPong {
                        hops_left: r.get_usize().map_err(|e| e.to_string())?,
                    }))
                }
                other => Err(format!("unknown messenger tag {other:?}")),
            }
        }
    }

    fn wire_cluster() -> Cluster {
        let mut c = Cluster::new(2).unwrap();
        c.inject(0, WirePingPong { hops_left: 6 });
        c
    }

    #[test]
    fn durable_spill_restores_finished_run() {
        let dir = std::env::temp_dir().join(format!("navp-sim-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let clean = SimExecutor::new(cost()).run(wire_cluster()).unwrap();
        let rep = SimExecutor::new(cost())
            .with_durable(&dir, Arc::new(ToyCodec))
            .run(wire_cluster())
            .unwrap();
        assert_eq!(counts(&rep), counts(&clean), "durable mode must not change results");

        let (_, cuts) = crate::durable::read_all_cuts(&dir).unwrap();
        let restored = crate::durable::restore_cluster(&cuts, &ToyCodec).unwrap();
        let rep2 = SimExecutor::new(cost()).run(restored).unwrap();
        assert_eq!(counts(&rep2), counts(&clean), "restored final cut is the final state");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_restore_completes_a_killed_run_bitwise() {
        use crate::fault::FaultPlan;
        let dir = std::env::temp_dir().join(format!("navp-sim-killed-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let clean = SimExecutor::new(cost()).run(wire_cluster()).unwrap();

        // Checkpointing off: the injected crash aborts the whole run
        // mid-computation, the closest in-process analogue of kill -9.
        let c = wire_cluster()
            .with_fault_plan(FaultPlan::new().crash_pe(1, 2).without_checkpointing());
        let err = SimExecutor::new(cost())
            .with_durable(&dir, Arc::new(ToyCodec))
            .run(c)
            .unwrap_err();
        assert!(matches!(err, RunError::PeCrashed { pe: 1, .. }), "{err}");

        // The durable directory holds the last committed boundary;
        // restoring and finishing must reproduce the clean result.
        let (_, cuts) = crate::durable::read_all_cuts(&dir).unwrap();
        let restored = crate::durable::restore_cluster(&cuts, &ToyCodec).unwrap();
        let rep = SimExecutor::new(cost()).run(restored).unwrap();
        assert_eq!(counts(&rep), counts(&clean), "restore must be exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_metrics_count_flushes() {
        let dir = std::env::temp_dir().join(format!("navp-sim-dmx-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let m = RunMetrics::new(2);
        SimExecutor::new(cost())
            .with_durable(&dir, Arc::new(ToyCodec))
            .with_metrics(Arc::clone(&m))
            .run(wire_cluster())
            .unwrap();
        let snap = m.snapshot();
        assert!(snap.total("navp_durable_flushes_total") > 0.0);
        assert!(snap.total("navp_durable_bytes_total") > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paging_charged_when_overloaded() {
        let mut m = cost();
        m.daemon_overhead = 0.0;
        m.mem_capacity = 1000;
        m.fault_bandwidth = 1e3; // 1 KB/s: faults are very visible
        let mut c = Cluster::new(1).unwrap();
        c.store_mut(0).insert(Key::plain("big"), (), 8000); // 8x overload
        c.inject(
            0,
            Script::new("toucher").then(|ctx| {
                ctx.charge_touched(1000);
                Effect::Done
            }),
        );
        let rep = SimExecutor::new(m).run(c).unwrap();
        // miss fraction = 1 - 3/8 = 0.625; 625 bytes at 1 KB/s = 0.625 s
        assert!((rep.makespan.as_secs_f64() - 0.625).abs() < 1e-6);
    }
}
