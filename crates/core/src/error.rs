//! Runtime errors.

use std::fmt;

/// Errors surfaced by the NavP executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A cluster must have at least one PE.
    NoPes,
    /// A messenger hopped to a PE outside the cluster.
    BadHop {
        /// Label of the offending messenger.
        agent: String,
        /// The invalid destination.
        dst: usize,
        /// Cluster size.
        pes: usize,
    },
    /// Every remaining messenger is blocked on an event that nobody can
    /// signal any more.
    Deadlock {
        /// `(label, event)` of each blocked messenger.
        blocked: Vec<(String, String)>,
    },
    /// The multithreaded executor made no progress within its watchdog
    /// timeout (a wall-clock analogue of [`RunError::Deadlock`]).
    Stalled {
        /// Messengers still alive when the watchdog fired.
        live: usize,
    },
    /// A worker thread panicked while running a messenger.
    WorkerPanic(String),
    /// An injected fault crashed a PE and no recovery was possible
    /// (checkpointing disabled in the [`FaultPlan`](crate::FaultPlan)).
    PeCrashed {
        /// The crashed PE.
        pe: usize,
        /// How many messenger runs that PE had completed before crashing.
        run: u64,
    },
    /// A PE crash was injected but the runtime could not restore the
    /// lost state (e.g. a messenger without snapshot support, or the
    /// retry budget for re-delivery was exhausted).
    RecoveryFailed {
        /// The crashed PE.
        pe: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// An operation named a PE outside the cluster.
    PeOutOfRange {
        /// The invalid PE index.
        pe: usize,
        /// Cluster size.
        pes: usize,
    },
    /// A PE process of a distributed executor died or closed its control
    /// connection mid-run (the socket analogue of
    /// [`RunError::PeCrashed`]).
    PeerDisconnected {
        /// The PE whose connection was lost.
        pe: usize,
        /// Human-readable cause (EOF, socket error, exit status…).
        detail: String,
    },
    /// A PE process of a distributed executor was asked to stop
    /// (SIGTERM/SIGINT) and shut down cleanly after flushing its
    /// durable checkpoint state — deliberate termination, not a crash.
    PeStopped {
        /// The PE that stopped.
        pe: usize,
    },
    /// A messenger or store value cannot cross a process boundary: it has
    /// no [`wire_snapshot`](crate::Messenger::wire_snapshot) or no
    /// registered value codec.
    NotSerializable {
        /// Label of the offending messenger or store key.
        agent: String,
    },
    /// A transport-level failure outside any single peer: spawning PE
    /// processes, binding sockets, or a malformed frame on the wire.
    Transport {
        /// Human-readable cause.
        detail: String,
    },
    /// The run was cancelled because it exceeded its wall-clock
    /// deadline (per-job timeouts in a multi-tenant service). Unlike
    /// [`RunError::Stalled`] the run may still have been making
    /// progress — it was just slower than the caller allowed.
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NoPes => write!(f, "cluster must have at least one PE"),
            RunError::BadHop { agent, dst, pes } => {
                write!(f, "messenger {agent} hopped to PE {dst}, cluster has {pes}")
            }
            RunError::Deadlock { blocked } => {
                write!(f, "deadlock: {} messenger(s) blocked forever:", blocked.len())?;
                for (who, on) in blocked.iter().take(8) {
                    write!(f, " [{who} waits {on}]")?;
                }
                if blocked.len() > 8 {
                    write!(f, " …")?;
                }
                Ok(())
            }
            RunError::Stalled { live } => write!(
                f,
                "no progress within watchdog timeout; {live} messenger(s) still live (likely deadlock)"
            ),
            RunError::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
            RunError::PeCrashed { pe, run } => write!(
                f,
                "PE {pe} crashed at run {run} and checkpointing is disabled"
            ),
            RunError::RecoveryFailed { pe, reason } => {
                write!(f, "recovery of crashed PE {pe} failed: {reason}")
            }
            RunError::PeOutOfRange { pe, pes } => {
                write!(f, "PE {pe} out of range, cluster has {pes}")
            }
            RunError::PeerDisconnected { pe, detail } => {
                write!(f, "PE {pe} disconnected mid-run: {detail}")
            }
            RunError::PeStopped { pe } => write!(
                f,
                "PE {pe} was terminated (SIGTERM/SIGINT) and stopped cleanly; \
                 restore the run from its durable checkpoint directory"
            ),
            RunError::NotSerializable { agent } => {
                write!(
                    f,
                    "{agent} cannot cross a process boundary (no wire snapshot / value codec)"
                )
            }
            RunError::Transport { detail } => write!(f, "transport failure: {detail}"),
            RunError::DeadlineExceeded { limit_ms } => {
                write!(f, "run exceeded its {limit_ms} ms deadline and was cancelled")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RunError::NoPes.to_string().contains("at least one"));
        let e = RunError::BadHop {
            agent: "RowCarrier(1)".into(),
            dst: 9,
            pes: 3,
        };
        assert!(e.to_string().contains("RowCarrier(1)"));
        let e = RunError::Deadlock {
            blocked: vec![("A".into(), "EP(0,0)".into())],
        };
        assert!(e.to_string().contains("EP(0,0)"));
        assert!(RunError::Stalled { live: 2 }.to_string().contains("2"));
    }

    #[test]
    fn display_fault_variants() {
        let e = RunError::PeCrashed { pe: 3, run: 17 };
        assert!(e.to_string().contains("PE 3"));
        assert!(e.to_string().contains("run 17"));
        let e = RunError::RecoveryFailed {
            pe: 1,
            reason: "no snapshot for Script".into(),
        };
        assert!(e.to_string().contains("no snapshot"));
        let e = RunError::PeOutOfRange { pe: 5, pes: 4 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn display_net_variants() {
        let e = RunError::PeerDisconnected {
            pe: 2,
            detail: "unexpected EOF".into(),
        };
        assert!(e.to_string().contains("PE 2"));
        assert!(e.to_string().contains("unexpected EOF"));
        let e = RunError::PeStopped { pe: 1 };
        assert!(e.to_string().contains("PE 1"));
        assert!(e.to_string().contains("stopped cleanly"));
        let e = RunError::NotSerializable {
            agent: "PingPong".into(),
        };
        assert!(e.to_string().contains("PingPong"));
        let e = RunError::Transport {
            detail: "connection refused".into(),
        };
        assert!(e.to_string().contains("connection refused"));
        let e = RunError::DeadlineExceeded { limit_ms: 1500 };
        assert!(e.to_string().contains("1500 ms"));
    }
}
