//! Durable on-disk checkpoints: a versioned, checksummed container
//! format that spills each PE's recovery state at run boundaries, so a
//! whole cluster survives `kill -9` of every process.
//!
//! ## What a checkpoint is
//!
//! The in-memory recovery machinery ([`crate::recovery`]) already
//! maintains, at every run boundary, a globally consistent cut of the
//! computation:
//!
//! * the committed node stores (initial store + [`WriteJournal`]
//!   replay),
//! * the [`CheckpointTable`] — one delivery-point snapshot per live,
//!   non-parked messenger,
//! * the event service — banked counts plus parked waiters.
//!
//! A durable checkpoint ([`DurableCut`], one per PE) is exactly that
//! cut serialized with the hand-rolled wire codec
//! ([`navp_sim::codec`], no serde), plus — for the networked executor
//! — per-peer channel sequence counters and a write-ahead outbox of
//! frames that may not have reached their destination when the
//! process died. Restoring ([`restore_cluster`]) turns the cut back
//! into a plain [`Cluster`]: residents and in-flight messengers become
//! injections, parked waiters become [`ResumeWait`] wrappers that
//! re-issue their `WaitEvent`, and banked counts become initial
//! signals. Any executor can then run the restored cluster to
//! completion, bitwise-identical to an uninterrupted run.
//!
//! ## On-disk container
//!
//! Every file (per-PE cut and [`Manifest`]) is wrapped in the same
//! container: an 8-byte magic (`NAVPCKP1`), a `u32` format version, a
//! length-prefixed payload, and a trailing FNV-1a 64-bit checksum over
//! everything before it. Writes are atomic: the bytes go to a `.tmp`
//! sibling, are fsynced, and are renamed over the target — a reader
//! never observes a torn file, and corruption (bit rot, truncation)
//! is rejected with a descriptive [`DurableError`].

use crate::agent::{Effect, Messenger, MsgrCtx, WireSnapshot};
use crate::cluster::Cluster;
use crate::recovery::{CheckpointTable, WriteJournal};
use navp_sim::codec::{WireReader, WireWriter};
use navp_sim::{EventKey, NodeStore};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Container magic: "NAVPCKP1".
pub const MAGIC: &[u8; 8] = b"NAVPCKP1";
/// Current container format version.
pub const VERSION: u32 = 1;

/// Why a durable checkpoint could not be written, read, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// Filesystem failure (create, write, rename, read).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered.
        detail: String,
    },
    /// A required checkpoint file does not exist.
    Missing {
        /// The absent path.
        path: String,
    },
    /// The file does not start with the `NAVPCKP1` magic.
    BadMagic {
        /// The offending path.
        path: String,
    },
    /// The file's format version is not one this build understands.
    BadVersion {
        /// The offending path.
        path: String,
        /// The version found.
        found: u32,
    },
    /// The file is shorter than its header or declared payload — a
    /// torn or truncated write.
    Truncated {
        /// The offending path.
        path: String,
    },
    /// The trailing FNV-1a checksum does not match the file contents —
    /// the bytes were corrupted after commit.
    ChecksumMismatch {
        /// The offending path.
        path: String,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed from the contents.
        computed: u64,
    },
    /// The payload decoded structurally but a store value or messenger
    /// snapshot could not be encoded/decoded.
    Codec {
        /// Human-readable cause.
        detail: String,
    },
    /// The manifest and the per-PE cuts disagree (wrong count, wrong
    /// PE ids, mixed sessions).
    Inconsistent {
        /// Human-readable cause.
        detail: String,
    },
    /// A cut belongs to a different run than the manifest (its session
    /// nonce differs) — stale files from an earlier run.
    StaleSession {
        /// The offending path.
        path: String,
        /// Nonce the manifest expects.
        expected: u64,
        /// Nonce the cut carries.
        found: u64,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { path, detail } => write!(f, "checkpoint I/O on {path}: {detail}"),
            DurableError::Missing { path } => write!(f, "checkpoint file {path} does not exist"),
            DurableError::BadMagic { path } => {
                write!(f, "{path} is not a NavP checkpoint (bad magic)")
            }
            DurableError::BadVersion { path, found } => write!(
                f,
                "{path} uses checkpoint format version {found}, this build reads {VERSION}"
            ),
            DurableError::Truncated { path } => {
                write!(f, "checkpoint {path} is truncated (torn write?)")
            }
            DurableError::ChecksumMismatch {
                path,
                stored,
                computed,
            } => write!(
                f,
                "checkpoint {path} failed its checksum: stored {stored:#018x}, \
                 computed {computed:#018x} — the file is corrupt"
            ),
            DurableError::Codec { detail } => write!(f, "checkpoint codec failure: {detail}"),
            DurableError::Inconsistent { detail } => {
                write!(f, "checkpoint directory inconsistent: {detail}")
            }
            DurableError::StaleSession {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {path} is from a different session (nonce {found:#x}, \
                 manifest has {expected:#x}) — stale file from an earlier run"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

fn io_err(path: &Path, e: std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// A session nonce for a new run's checkpoint directory: derived from
/// the driver's pid and a process-wide counter (no wall clock — the
/// runtime never reads one), then mixed so consecutive nonces differ in
/// every byte. Collisions across driver processes would need the same
/// pid *and* counter, which a recycled pid plus a fresh process cannot
/// produce within one directory's lifetime in practice.
pub fn fresh_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let raw = ((std::process::id() as u64) << 32) | COUNTER.fetch_add(1, Ordering::Relaxed);
    // SplitMix64 finalizer.
    let mut z = raw.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash — the same function the wire layer uses for
/// event homing, reused here as the container checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Atomically commit `payload` to `path` inside the checksummed
/// container: write magic + version + length + payload + checksum to a
/// `.tmp` sibling, fsync, rename. Returns the total bytes on disk.
pub fn write_container(path: &Path, payload: &[u8]) -> Result<u64, DurableError> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 12 + payload.len() + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(&buf).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(buf.len() as u64)
}

/// Read and verify a container, returning its payload. Truncation,
/// foreign files, future versions and checksum failures are each a
/// distinct descriptive error.
pub fn read_container(path: &Path) -> Result<Vec<u8>, DurableError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(DurableError::Missing {
                path: path.display().to_string(),
            })
        }
        Err(e) => return Err(io_err(path, e)),
    };
    let p = || path.display().to_string();
    let header = MAGIC.len() + 4 + 8;
    if bytes.len() < header + 8 {
        return Err(DurableError::Truncated { path: p() });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(DurableError::BadMagic { path: p() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DurableError::BadVersion {
            path: p(),
            found: version,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    if bytes.len() != header + len + 8 {
        return Err(DurableError::Truncated { path: p() });
    }
    let stored = u64::from_le_bytes(bytes[header + len..].try_into().expect("8 bytes"));
    let computed = fnv1a(&bytes[..header + len]);
    if stored != computed {
        return Err(DurableError::ChecksumMismatch {
            path: p(),
            stored,
            computed,
        });
    }
    Ok(bytes[header..header + len].to_vec())
}

/// Serialization bridge between the durable format and the
/// application's type registry (which lives above this crate — see
/// `navp_net::RegistryCodec`).
///
/// Messenger *encoding* needs no codec (every messenger carries its
/// own [`Messenger::wire_snapshot`]); decoding, and both directions
/// for stores, need the tag registry.
pub trait DurableCodec: Send + Sync {
    /// Encode a node store to bytes (deterministically — sorted keys).
    fn encode_store(&self, store: &NodeStore) -> Result<Vec<u8>, String>;
    /// Decode a node store from bytes.
    fn decode_store(&self, bytes: &[u8]) -> Result<NodeStore, String>;
    /// Reconstitute a messenger from its wire snapshot.
    fn decode_messenger(&self, snap: &WireSnapshot) -> Result<Box<dyn Messenger>, String>;
}

/// A live, non-parked messenger in a cut: resident on the PE or in
/// flight toward it.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentMsgr {
    /// The executor's messenger id (restore order is ascending id).
    pub id: u64,
    /// Display label, for diagnostics.
    pub label: String,
    /// Delivery-point state.
    pub snap: WireSnapshot,
}

/// A messenger parked on an event in a cut.
#[derive(Debug, Clone, PartialEq)]
pub struct ParkedWaiter {
    /// The executor's messenger id.
    pub id: u64,
    /// PE the messenger parked on (it resumes there when woken).
    pub origin: u32,
    /// The event it waits for.
    pub key: EventKey,
    /// Its state at the wait point.
    pub snap: WireSnapshot,
}

/// One buffered outbound frame in a networked PE's write-ahead outbox.
#[derive(Debug, Clone, PartialEq)]
pub struct OutFrame {
    /// Destination PE.
    pub dst: u32,
    /// 1-based sequence number on the ordered `(src, dst)` channel.
    pub seq: u64,
    /// The encoded frame body (the net layer interprets it).
    pub bytes: Vec<u8>,
}

/// One PE's slice of a globally consistent run-boundary cut — the unit
/// the executors spill to `pe-<k>.ckpt`.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableCut {
    /// This cut's PE.
    pub pe: u32,
    /// Cluster width.
    pub pes: u32,
    /// Session nonce (must match the directory's [`Manifest`]).
    pub nonce: u64,
    /// Monotone spill counter (later boundary ⇒ larger value).
    pub boundary: u64,
    /// The committed node store, encoded by the [`DurableCodec`].
    pub store: Vec<u8>,
    /// Live messengers owned by this PE, ascending id.
    pub residents: Vec<ResidentMsgr>,
    /// Parked waiters homed on this PE, in FIFO park order.
    pub waiters: Vec<ParkedWaiter>,
    /// Banked event counts homed on this PE.
    pub events: Vec<(EventKey, u64)>,
    /// Frames sent to each peer so far (`sent_to[dst]`); empty for the
    /// in-process executors.
    pub sent_to: Vec<u64>,
    /// Frames received from each peer so far (`recv_from[src]`); empty
    /// for the in-process executors.
    pub recv_from: Vec<u64>,
    /// Write-ahead outbox: frames spilled before transmission whose
    /// delivery is unconfirmed. Reconciled against the receivers'
    /// `recv_from` at restore (net layer).
    pub outbox: Vec<OutFrame>,
}

impl DurableCut {
    /// An empty cut for PE `pe` of `pes` in session `nonce` (no
    /// channel counters — the in-process executors' shape).
    pub fn new(pe: usize, pes: usize, nonce: u64) -> DurableCut {
        DurableCut {
            pe: pe as u32,
            pes: pes as u32,
            nonce,
            boundary: 0,
            store: Vec::new(),
            residents: Vec::new(),
            waiters: Vec::new(),
            events: Vec::new(),
            sent_to: Vec::new(),
            recv_from: Vec::new(),
            outbox: Vec::new(),
        }
    }

    /// Encode to the (container-less) payload form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.pe);
        w.put_u32(self.pes);
        w.put_u64(self.nonce);
        w.put_u64(self.boundary);
        w.put_bytes(&self.store);
        w.put_u32(self.residents.len() as u32);
        for r in &self.residents {
            w.put_u64(r.id);
            w.put_str(&r.label);
            w.put_str(&r.snap.tag);
            w.put_bytes(&r.snap.bytes);
        }
        w.put_u32(self.waiters.len() as u32);
        for p in &self.waiters {
            w.put_u64(p.id);
            w.put_u32(p.origin);
            w.put_key(&p.key);
            w.put_str(&p.snap.tag);
            w.put_bytes(&p.snap.bytes);
        }
        w.put_u32(self.events.len() as u32);
        for (key, count) in &self.events {
            w.put_key(key);
            w.put_u64(*count);
        }
        w.put_u32(self.sent_to.len() as u32);
        for s in &self.sent_to {
            w.put_u64(*s);
        }
        w.put_u32(self.recv_from.len() as u32);
        for r in &self.recv_from {
            w.put_u64(*r);
        }
        w.put_u32(self.outbox.len() as u32);
        for f in &self.outbox {
            w.put_u32(f.dst);
            w.put_u64(f.seq);
            w.put_bytes(&f.bytes);
        }
        w.into_vec()
    }

    /// Decode a payload produced by [`DurableCut::encode`]. Trailing
    /// bytes are rejected.
    pub fn decode(bytes: &[u8]) -> Result<DurableCut, DurableError> {
        let codec = |e: navp_sim::codec::DecodeError| DurableError::Codec {
            detail: format!("cut payload: {e}"),
        };
        let mut r = WireReader::new(bytes);
        let mut cut = DurableCut::new(0, 0, 0);
        (|| {
            cut.pe = r.get_u32()?;
            cut.pes = r.get_u32()?;
            cut.nonce = r.get_u64()?;
            cut.boundary = r.get_u64()?;
            cut.store = r.get_bytes()?;
            for _ in 0..r.get_u32()? {
                cut.residents.push(ResidentMsgr {
                    id: r.get_u64()?,
                    label: r.get_str()?,
                    snap: WireSnapshot {
                        tag: r.get_str()?,
                        bytes: r.get_bytes()?,
                    },
                });
            }
            for _ in 0..r.get_u32()? {
                cut.waiters.push(ParkedWaiter {
                    id: r.get_u64()?,
                    origin: r.get_u32()?,
                    key: r.get_key()?,
                    snap: WireSnapshot {
                        tag: r.get_str()?,
                        bytes: r.get_bytes()?,
                    },
                });
            }
            for _ in 0..r.get_u32()? {
                let key = r.get_key()?;
                let count = r.get_u64()?;
                cut.events.push((key, count));
            }
            for _ in 0..r.get_u32()? {
                cut.sent_to.push(r.get_u64()?);
            }
            for _ in 0..r.get_u32()? {
                cut.recv_from.push(r.get_u64()?);
            }
            for _ in 0..r.get_u32()? {
                cut.outbox.push(OutFrame {
                    dst: r.get_u32()?,
                    seq: r.get_u64()?,
                    bytes: r.get_bytes()?,
                });
            }
            Ok(r.remaining())
        })()
        .map_err(codec)
        .and_then(|rest: usize| {
            if rest != 0 {
                Err(DurableError::Codec {
                    detail: format!("cut payload has {rest} trailing bytes"),
                })
            } else {
                Ok(cut)
            }
        })
    }
}

/// The checkpoint directory's manifest: cluster width plus a session
/// nonce stamped into every cut, so files from an earlier run are
/// detected instead of silently mixed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Cluster width.
    pub pes: usize,
    /// Session nonce shared by every cut of this run.
    pub nonce: u64,
}

/// Path of the manifest inside a checkpoint directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Path of PE `pe`'s cut inside a checkpoint directory.
pub fn cut_path(dir: &Path, pe: usize) -> PathBuf {
    dir.join(format!("pe-{pe}.ckpt"))
}

/// Write the manifest (atomic, checksummed).
pub fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), DurableError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut w = WireWriter::new();
    w.put_usize(m.pes);
    w.put_u64(m.nonce);
    write_container(&manifest_path(dir), &w.into_vec()).map(|_| ())
}

/// Read and verify the manifest.
pub fn read_manifest(dir: &Path) -> Result<Manifest, DurableError> {
    let payload = read_container(&manifest_path(dir))?;
    let mut r = WireReader::new(&payload);
    let parse = |e: navp_sim::codec::DecodeError| DurableError::Codec {
        detail: format!("manifest payload: {e}"),
    };
    let pes = r.get_usize().map_err(parse)?;
    let nonce = r.get_u64().map_err(parse)?;
    if pes == 0 || r.remaining() != 0 {
        return Err(DurableError::Inconsistent {
            detail: format!("manifest declares {pes} PEs"),
        });
    }
    Ok(Manifest { pes, nonce })
}

/// Spill one cut to its `pe-<k>.ckpt` file (atomic, checksummed).
/// Returns the bytes written, for flush metrics.
pub fn write_cut(dir: &Path, cut: &DurableCut) -> Result<u64, DurableError> {
    write_container(&cut_path(dir, cut.pe as usize), &cut.encode())
}

/// Read and verify one PE's cut.
pub fn read_cut(dir: &Path, pe: usize) -> Result<DurableCut, DurableError> {
    DurableCut::decode(&read_container(&cut_path(dir, pe))?)
}

/// Read the manifest plus every PE's cut, verifying session nonces.
pub fn read_all_cuts(dir: &Path) -> Result<(Manifest, Vec<DurableCut>), DurableError> {
    let manifest = read_manifest(dir)?;
    let mut cuts = Vec::with_capacity(manifest.pes);
    for pe in 0..manifest.pes {
        let cut = read_cut(dir, pe)?;
        if cut.pe as usize != pe || cut.pes as usize != manifest.pes {
            return Err(DurableError::Inconsistent {
                detail: format!(
                    "cut file for PE {pe} claims pe={} pes={}",
                    cut.pe, cut.pes
                ),
            });
        }
        if cut.nonce != manifest.nonce {
            return Err(DurableError::StaleSession {
                path: cut_path(dir, pe).display().to_string(),
                expected: manifest.nonce,
                found: cut.nonce,
            });
        }
        cuts.push(cut);
    }
    Ok((manifest, cuts))
}

/// Directory holding run `run`'s checkpoints under `base`. Run `0` is
/// the anonymous single-run namespace and maps to `base` itself — the
/// layout every pre-service driver wrote — while any other id gets its
/// own `run-<id>` subdirectory, so concurrent runs multiplexed onto
/// the same daemons can never collide on manifests, cuts, or outboxes.
pub fn run_dir(base: &Path, run: u64) -> PathBuf {
    if run == 0 {
        base.to_path_buf()
    } else {
        base.join(format!("run-{run}"))
    }
}

/// Run ids that have a `run-<id>` checkpoint subdirectory under
/// `base`, ascending. The anonymous namespace (`base` itself) is not a
/// run and is never listed.
pub fn list_run_dirs(base: &Path) -> Vec<u64> {
    let mut runs = Vec::new();
    let Ok(entries) = std::fs::read_dir(base) else {
        return runs;
    };
    for entry in entries.flatten() {
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("run-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        runs.push(id);
    }
    runs.sort_unstable();
    runs
}

/// Retention for long-lived daemons: prune per-run checkpoint
/// subdirectories oldest-first (service run ids are monotonic, so the
/// lowest id is the oldest run) until at most `keep` completed runs
/// remain. A run for which `is_live` returns true is in flight — its
/// restorable cut is never deleted, regardless of `keep`. The
/// anonymous namespace (`base` itself) is never touched. Returns the
/// run ids whose directories were removed.
pub fn prune_run_dirs(base: &Path, keep: usize, is_live: &dyn Fn(u64) -> bool) -> Vec<u64> {
    let completed: Vec<u64> = list_run_dirs(base)
        .into_iter()
        .filter(|&run| !is_live(run))
        .collect();
    let excess = completed.len().saturating_sub(keep);
    let mut removed = Vec::new();
    for &run in completed.iter().take(excess) {
        if std::fs::remove_dir_all(run_dir(base, run)).is_ok() {
            removed.push(run);
        }
    }
    removed
}

/// Wrapper messenger that restores a parked event-waiter: its first
/// step re-issues the `WaitEvent`, then it delegates every later step
/// to the wrapped messenger. Injecting one at the waiter's origin PE
/// reproduces "parked on `key`" through the ordinary injection path —
/// no executor needs a special restore mode.
pub struct ResumeWait {
    /// The event the wrapped messenger was parked on.
    pub key: EventKey,
    issued: bool,
    inner: Box<dyn Messenger>,
}

impl ResumeWait {
    /// Wrap `inner`, to be parked on `key` again.
    pub fn new(key: EventKey, inner: Box<dyn Messenger>) -> ResumeWait {
        ResumeWait {
            key,
            issued: false,
            inner,
        }
    }

    /// Rebuild from a decoded wire snapshot (`issued` flag + key +
    /// inner snapshot already decoded by the registry layer).
    pub fn from_parts(key: EventKey, issued: bool, inner: Box<dyn Messenger>) -> ResumeWait {
        ResumeWait { key, issued, inner }
    }

    /// The wire tag `navp_net`'s registry registers for this type.
    pub const TAG: &'static str = "navp.ResumeWait";
}

impl Messenger for ResumeWait {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        if !self.issued {
            self.issued = true;
            return Effect::WaitEvent(self.key);
        }
        self.inner.step(ctx)
    }

    fn payload_bytes(&self) -> u64 {
        self.inner.payload_bytes()
    }

    fn label(&self) -> String {
        self.inner.label()
    }

    fn snapshot(&self) -> Option<Box<dyn Messenger>> {
        Some(Box::new(ResumeWait {
            key: self.key,
            issued: self.issued,
            inner: self.inner.snapshot()?,
        }))
    }

    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        let inner = self.inner.wire_snapshot()?;
        let mut w = WireWriter::new();
        w.put_bool(self.issued);
        w.put_key(&self.key);
        w.put_str(&inner.tag);
        w.put_bytes(&inner.bytes);
        Some(WireSnapshot::new(ResumeWait::TAG, w.into_vec()))
    }
}

/// Snapshot the common (in-process) recovery state of one PE into a
/// cut: committed store, live checkpoints owned by the PE, and —
/// supplied by the caller, whose event-service shape differs per
/// executor — waiters and counts.
///
/// `store` must already reflect every *committed* run (the executors
/// call this right after `commit_dirty`). Returns
/// [`DurableError::Codec`] if any live messenger lacks a wire
/// snapshot: durability requires every in-flight type to be
/// serializable, exactly like the networked executor.
#[allow(clippy::too_many_arguments)]
pub fn build_cut(
    pe: usize,
    pes: usize,
    nonce: u64,
    boundary: u64,
    store: &NodeStore,
    ckpt: &CheckpointTable,
    waiters: Vec<ParkedWaiter>,
    events: Vec<(EventKey, u64)>,
    codec: &dyn DurableCodec,
) -> Result<DurableCut, DurableError> {
    let mut cut = DurableCut::new(pe, pes, nonce);
    cut.boundary = boundary;
    cut.store = codec
        .encode_store(store)
        .map_err(|detail| DurableError::Codec { detail })?;
    for (id, owner, label, snap) in ckpt.iter_ordered() {
        if owner != pe {
            continue;
        }
        let snap = snap
            .and_then(|m| m.wire_snapshot())
            .ok_or_else(|| DurableError::Codec {
                detail: format!("messenger {label} (id {id}) has no wire snapshot"),
            })?;
        cut.residents.push(ResidentMsgr {
            id,
            label: label.to_string(),
            snap,
        });
    }
    cut.waiters = waiters;
    cut.events = events;
    Ok(cut)
}

/// Rebuild one PE's committed store: clone of the initial store plus a
/// replay of its write journal — the same recipe crash recovery uses
/// in memory, applied at spill time so the durable store is always the
/// committed one even while the live store races ahead.
pub fn committed_store(initial: &NodeStore, journal: &WriteJournal) -> NodeStore {
    let mut store = initial.clone();
    journal.replay_into(&mut store);
    store
}

/// Reassemble a runnable [`Cluster`] from a full set of cuts.
///
/// Deterministic restore order: event counts first (banked signals),
/// then residents per PE in ascending id, then parked waiters (wrapped
/// in [`ResumeWait`]) in park order. The networked restore path must
/// have reconciled outboxes beforehand — an outbox frame newer than
/// its receiver's `recv_from` counter here is an error, because this
/// layer cannot interpret frame bytes.
pub fn restore_cluster(
    cuts: &[DurableCut],
    codec: &dyn DurableCodec,
) -> Result<Cluster, DurableError> {
    if cuts.is_empty() {
        return Err(DurableError::Inconsistent {
            detail: "no cuts to restore".into(),
        });
    }
    let pes = cuts[0].pes as usize;
    if cuts.len() != pes {
        return Err(DurableError::Inconsistent {
            detail: format!("{} cuts for a {pes}-PE cluster", cuts.len()),
        });
    }
    for (i, cut) in cuts.iter().enumerate() {
        if cut.pe as usize != i || cut.pes as usize != pes || cut.nonce != cuts[0].nonce {
            return Err(DurableError::Inconsistent {
                detail: format!("cut {i} claims pe={} pes={} nonce={:#x}", cut.pe, cut.pes, cut.nonce),
            });
        }
        for f in &cut.outbox {
            let dst = f.dst as usize;
            let seen = cuts
                .get(dst)
                .and_then(|c| c.recv_from.get(i))
                .copied()
                .unwrap_or(0);
            if f.seq > seen {
                return Err(DurableError::Inconsistent {
                    detail: format!(
                        "unreconciled in-flight frame {}→{} seq {} (receiver saw {}); \
                         the net restore path must reconcile outboxes first",
                        i, dst, f.seq, seen
                    ),
                });
            }
        }
    }
    let mut stores = Vec::with_capacity(pes);
    for cut in cuts {
        stores.push(
            codec
                .decode_store(&cut.store)
                .map_err(|detail| DurableError::Codec { detail })?,
        );
    }
    let mut cluster = Cluster::from_stores(stores);
    for cut in cuts {
        for (key, count) in &cut.events {
            for _ in 0..*count {
                cluster.signal_initial(*key);
            }
        }
    }
    for cut in cuts {
        for r in &cut.residents {
            let m = codec
                .decode_messenger(&r.snap)
                .map_err(|detail| DurableError::Codec { detail })?;
            cluster.inject(cut.pe as usize, m);
        }
    }
    for cut in cuts {
        for p in &cut.waiters {
            let inner = codec
                .decode_messenger(&p.snap)
                .map_err(|detail| DurableError::Codec { detail })?;
            cluster.inject(p.origin as usize, ResumeWait::new(p.key, inner));
        }
    }
    Ok(cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::Key;

    #[test]
    fn container_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("navp-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.ckpt");
        let payload = b"hello durable world".to_vec();
        let n = write_container(&path, &payload).unwrap();
        assert_eq!(n, 8 + 4 + 8 + payload.len() as u64 + 8);
        assert_eq!(read_container(&path).unwrap(), payload);
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");

        // Flip one payload byte → checksum mismatch, with both sums in
        // the message.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[22] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_container(&path).unwrap_err();
        assert!(matches!(err, DurableError::ChecksumMismatch { .. }), "{err}");
        assert!(err.to_string().contains("corrupt"), "{err}");

        // Truncate → Truncated.
        std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
        assert!(matches!(
            read_container(&path).unwrap_err(),
            DurableError::Truncated { .. }
        ));

        // Foreign magic → BadMagic; future version → BadVersion.
        std::fs::write(&path, b"NOTACKPTxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            read_container(&path).unwrap_err(),
            DurableError::BadMagic { .. }
        ));
        let mut fresh = Vec::new();
        fresh.extend_from_slice(MAGIC);
        fresh.extend_from_slice(&99u32.to_le_bytes());
        fresh.extend_from_slice(&0u64.to_le_bytes());
        fresh.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &fresh).unwrap();
        assert!(matches!(
            read_container(&path).unwrap_err(),
            DurableError::BadVersion { found: 99, .. }
        ));

        // Absent file → Missing.
        assert!(matches!(
            read_container(&dir.join("nope.ckpt")).unwrap_err(),
            DurableError::Missing { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dir_namespacing() {
        let base = Path::new("/tmp/ckpt");
        assert_eq!(run_dir(base, 0), base, "run 0 is the legacy layout");
        assert_eq!(run_dir(base, 42), base.join("run-42"));
    }

    #[test]
    fn prune_keeps_live_and_newest_runs() {
        let base = std::env::temp_dir().join(format!("navp-prune-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        // Five completed-looking runs plus cuts in the anonymous
        // namespace; run 3 is still in flight.
        for run in 1..=5u64 {
            let dir = run_dir(&base, run);
            write_manifest(&dir, &Manifest { pes: 2, nonce: run }).unwrap();
        }
        write_manifest(&base, &Manifest { pes: 2, nonce: 9 }).unwrap();
        assert_eq!(list_run_dirs(&base), vec![1, 2, 3, 4, 5]);

        let removed = prune_run_dirs(&base, 2, &|run| run == 3);
        // Oldest-first: of the completed runs {1,2,4,5}, keep the
        // newest two (4, 5); the live run 3 survives regardless.
        assert_eq!(removed, vec![1, 2]);
        assert_eq!(list_run_dirs(&base), vec![3, 4, 5]);
        assert!(
            read_manifest(&run_dir(&base, 3)).is_ok(),
            "in-flight run's restorable state untouched"
        );
        assert!(read_manifest(&base).is_ok(), "anonymous namespace untouched");

        // Once run 3 completes, keep=0 clears everything.
        let removed = prune_run_dirs(&base, 0, &|_| false);
        assert_eq!(removed, vec![3, 4, 5]);
        assert!(list_run_dirs(&base).is_empty());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn cut_encode_decode_roundtrip() {
        let mut cut = DurableCut::new(1, 4, 0xD00D_FEED);
        cut.boundary = 17;
        cut.store = vec![1, 2, 3];
        cut.residents.push(ResidentMsgr {
            id: 9,
            label: "carrier".into(),
            snap: WireSnapshot::new("mm.X", vec![4, 5]),
        });
        cut.waiters.push(ParkedWaiter {
            id: 11,
            origin: 2,
            key: Key::at2("EP", 1, 2),
            snap: WireSnapshot::new("mm.Y", vec![6]),
        });
        cut.events.push((Key::at("EC", 3), 2));
        cut.sent_to = vec![0, 5, 0, 1];
        cut.recv_from = vec![2, 0, 0, 0];
        cut.outbox.push(OutFrame {
            dst: 3,
            seq: 1,
            bytes: vec![9, 9],
        });
        let back = DurableCut::decode(&cut.encode()).unwrap();
        assert_eq!(back, cut);

        // Trailing bytes rejected.
        let mut extra = cut.encode();
        extra.push(0);
        assert!(matches!(
            DurableCut::decode(&extra).unwrap_err(),
            DurableError::Codec { .. }
        ));
    }

    #[test]
    fn manifest_and_session_nonce_guard() {
        let dir = std::env::temp_dir().join(format!("navp-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest { pes: 2, nonce: 7 };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), m);

        let mut a = DurableCut::new(0, 2, 7);
        a.boundary = 1;
        write_cut(&dir, &a).unwrap();
        let mut b = DurableCut::new(1, 2, 99); // stale nonce
        b.boundary = 1;
        write_cut(&dir, &b).unwrap();
        let err = read_all_cuts(&dir).unwrap_err();
        assert!(matches!(err, DurableError::StaleSession { .. }), "{err}");
        assert!(err.to_string().contains("different session"), "{err}");

        let mut b = DurableCut::new(1, 2, 7);
        b.boundary = 1;
        write_cut(&dir, &b).unwrap();
        let (m2, cuts) = read_all_cuts(&dir).unwrap();
        assert_eq!(m2, m);
        assert_eq!(cuts.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
