//! Closure-based messengers for tests, examples and small programs.
//!
//! Production carriers (see `navp-mm`) implement [`Messenger`] as explicit
//! structs, because their agent variables are meaningful data (a carried
//! block row). For quick programs, [`Script`] builds a messenger from a
//! chain of closures: each closure is one step — it runs, optionally uses
//! the context, and returns the [`Effect`] that ends the step. When the
//! chain is exhausted the messenger is `Done`.
//!
//! ```
//! use navp::{Cluster, Effect, Key, SimExecutor};
//! use navp::script::Script;
//! use navp_sim::CostModel;
//!
//! let mut cluster = Cluster::new(2).unwrap();
//! cluster.store_mut(1).insert(Key::plain("B"), 21.0f64, 8);
//! cluster.inject(
//!     0,
//!     Script::new("doubler")
//!         .then(|_| Effect::Hop(1)) // chase the data
//!         .then(|ctx| {
//!             let b = *ctx.store().get::<f64>(Key::plain("B")).unwrap();
//!             ctx.store().insert(Key::plain("C"), 2.0 * b, 8);
//!             Effect::Done
//!         }),
//! );
//! let report = SimExecutor::new(CostModel::paper_cluster()).run(cluster).unwrap();
//! assert_eq!(report.stores[1].get::<f64>(Key::plain("C")), Some(&42.0));
//! ```

use crate::agent::{Effect, Messenger, MsgrCtx};
use std::collections::VecDeque;

type StepFn = Box<dyn FnMut(&mut MsgrCtx<'_>) -> Effect + Send + 'static>;

/// A messenger assembled from a sequence of step closures.
pub struct Script {
    name: &'static str,
    payload: u64,
    steps: VecDeque<StepFn>,
}

impl Script {
    /// Start building a script with a display name.
    pub fn new(name: &'static str) -> Script {
        Script {
            name,
            payload: 0,
            steps: VecDeque::new(),
        }
    }

    /// Declare the agent-variable payload this script carries on hops.
    pub fn with_payload(mut self, bytes: u64) -> Script {
        self.payload = bytes;
        self
    }

    /// Append one step. The closure's return value is the navigational
    /// command ending that step; returning [`Effect::Done`] early skips
    /// any remaining steps.
    pub fn then(
        mut self,
        f: impl FnMut(&mut MsgrCtx<'_>) -> Effect + Send + 'static,
    ) -> Script {
        self.steps.push_back(Box::new(f));
        self
    }

    /// Append `n` copies of a step pattern indexed by iteration — a
    /// convenience for the paper's `do mj=0,N-1 { hop(...); compute }`
    /// loops in tests.
    pub fn then_each(
        mut self,
        n: usize,
        mut f: impl FnMut(usize, &mut MsgrCtx<'_>) -> Effect + Send + Clone + 'static,
    ) -> Script {
        for i in 0..n {
            let mut g = f.clone();
            self.steps.push_back(Box::new(move |ctx| g(i, ctx)));
            // keep `f` advancing for closures capturing state by value
            let _ = &mut f;
        }
        self
    }
}

impl Messenger for Script {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        match self.steps.pop_front() {
            None => Effect::Done,
            Some(mut f) => {
                let eff = f(ctx);
                if eff == Effect::Done {
                    self.steps.clear();
                }
                eff
            }
        }
    }

    fn payload_bytes(&self) -> u64 {
        self.payload
    }

    fn label(&self) -> String {
        self.name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::StepOutputs;
    use navp_sim::store::NodeStore;

    fn drive(mut s: Script) -> Vec<Effect> {
        let mut store = NodeStore::new();
        let mut out = StepOutputs::default();
        let mut effs = Vec::new();
        loop {
            let mut ctx = MsgrCtx::new(0, 1, &mut store, &mut out);
            let e = s.step(&mut ctx);
            effs.push(e);
            if e == Effect::Done {
                return effs;
            }
        }
    }

    #[test]
    fn steps_run_in_order_then_done() {
        let s = Script::new("t")
            .then(|_| Effect::Hop(0))
            .then(|_| Effect::Hop(0));
        assert_eq!(
            drive(s),
            vec![Effect::Hop(0), Effect::Hop(0), Effect::Done]
        );
    }

    #[test]
    fn early_done_clears_remaining_steps() {
        let s = Script::new("t")
            .then(|_| Effect::Done)
            .then(|_| panic!("must never run"));
        assert_eq!(drive(s), vec![Effect::Done]);
    }

    #[test]
    fn then_each_indexes() {
        let s = Script::new("t").then_each(3, |i, _ctx| Effect::Hop(i));
        assert_eq!(
            drive(s),
            vec![
                Effect::Hop(0),
                Effect::Hop(1),
                Effect::Hop(2),
                Effect::Done
            ]
        );
    }

    #[test]
    fn payload_and_label() {
        let s = Script::new("carrier").with_payload(1024);
        assert_eq!(s.payload_bytes(), 1024);
        assert_eq!(s.label(), "carrier");
    }
}
