//! The two executors must implement the *same semantics*: any program's
//! observable results — final node-variable contents — must agree between
//! the virtual-time simulator and the real threads, and runtime
//! features (initial events, injection, payload accounting) must behave
//! identically.

use navp::script::Script;
use navp::transform::Itinerary;
use navp::{Cluster, Effect, Key, SimExecutor, ThreadExecutor};
use navp_sim::CostModel;
use std::sync::Arc;

fn both(build: impl Fn() -> Cluster) -> (Vec<navp::NodeStore>, Vec<navp::NodeStore>) {
    let sim = SimExecutor::new(CostModel::paper_cluster())
        .run(build())
        .expect("sim run");
    let thr = ThreadExecutor::new().run(build()).expect("thread run");
    (sim.stores, thr.stores)
}

#[test]
fn initial_events_satisfy_first_wait_on_both() {
    let build = || {
        let mut cl = Cluster::new(1).expect("cluster");
        cl.signal_initial(Key::plain("go"));
        cl.signal_initial(Key::plain("go"));
        cl.inject(
            0,
            Script::new("waiter")
                .then(|_| Effect::WaitEvent(Key::plain("go")))
                .then(|_| Effect::WaitEvent(Key::plain("go")))
                .then(|ctx| {
                    ctx.store().insert(Key::plain("woke"), 2u32, 4);
                    Effect::Done
                }),
        );
        cl
    };
    let (sim, thr) = both(build);
    assert_eq!(sim[0].get::<u32>(Key::plain("woke")), Some(&2));
    assert_eq!(thr[0].get::<u32>(Key::plain("woke")), Some(&2));
}

#[test]
fn chained_producers_consumers_agree() {
    // A ring of producer/consumer pairs across 4 PEs with token-passing.
    let build = || {
        let pes = 4;
        let mut cl = Cluster::new(pes).expect("cluster");
        cl.signal_initial(Key::at("token", 0));
        for pe in 0..pes {
            cl.inject(
                pe,
                Script::new("worker")
                    .then(move |_| Effect::WaitEvent(Key::at("token", pe)))
                    .then(move |ctx| {
                        let so_far = ctx
                            .store()
                            .get::<u64>(Key::plain("sum"))
                            .copied()
                            .unwrap_or(0);
                        ctx.store().insert(Key::plain("sum"), so_far + pe as u64, 8);
                        ctx.signal(Key::at("token", (pe + 1) % pes));
                        Effect::Done
                    }),
            );
        }
        cl
    };
    let (sim, thr) = both(build);
    for pe in 0..4 {
        assert_eq!(
            sim[pe].get::<u64>(Key::plain("sum")),
            thr[pe].get::<u64>(Key::plain("sum")),
            "PE {pe} disagrees"
        );
    }
}

#[test]
fn itinerary_carriers_agree_across_executors() {
    let build = || {
        let mut cl = Cluster::new(3).expect("cluster");
        for pe in 0..3 {
            cl.store_mut(pe).insert(Key::plain("v"), (pe * pe) as f64, 8);
        }
        let acc = Arc::new(std::sync::Mutex::new(0.0f64));
        let mut it = Itinerary::new("walker");
        for pe in [2, 0, 1] {
            let acc = acc.clone();
            it = it.then_at(pe, move |ctx| {
                let v = *ctx.store().get::<f64>(Key::plain("v")).expect("placed");
                *acc.lock().unwrap() += v;
            });
        }
        let acc2 = acc.clone();
        let it = it.then_at(1, move |ctx| {
            let total = *acc2.lock().unwrap();
            ctx.store().insert(Key::plain("total"), total, 8);
        });
        cl.inject(2, it.into_messenger());
        cl
    };
    let (sim, thr) = both(build);
    assert_eq!(sim[1].get::<f64>(Key::plain("total")), Some(&5.0));
    assert_eq!(thr[1].get::<f64>(Key::plain("total")), Some(&5.0));
}

#[test]
fn heavy_contention_reaches_same_totals() {
    // 20 messengers all incrementing counters on 2 PEs through hops;
    // the final totals are deterministic even though thread scheduling
    // is not.
    let build = || {
        let mut cl = Cluster::new(2).expect("cluster");
        for a in 0..20usize {
            cl.inject(
                a % 2,
                Script::new("inc").then_each(6, |_, ctx| {
                    let here = ctx.here();
                    let n = ctx
                        .store()
                        .get::<u64>(Key::plain("count"))
                        .copied()
                        .unwrap_or(0);
                    ctx.store().insert(Key::plain("count"), n + 1, 8);
                    Effect::Hop(1 - here)
                }),
            );
        }
        cl
    };
    let (sim, thr) = both(build);
    let total =
        |stores: &[navp::NodeStore]| -> u64 {
            stores
                .iter()
                .map(|s| s.get::<u64>(Key::plain("count")).copied().unwrap_or(0))
                .sum()
        };
    assert_eq!(total(&sim), 120);
    assert_eq!(total(&thr), 120);
}
