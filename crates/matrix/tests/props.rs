//! Property-based tests for the matrix substrate.

use navp_matrix::{gen, BlockData, BlockedMatrix, Dist1D, Grid2D, Matrix};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=8, 1usize..=8, any::<u64>()).prop_map(|(r, c, seed)| {
        let sq = gen::seeded_matrix(r.max(c), seed);
        sq.submatrix(0, 0, r, c)
    })
}

proptest! {
    #[test]
    fn multiply_matches_naive(a in small_matrix(), seed in any::<u64>()) {
        let k = a.cols();
        let b = gen::seeded_matrix(k.max(5), seed).submatrix(0, 0, k, 5);
        let fast = a.multiply(&b).unwrap();
        let slow = a.multiply_naive(&b).unwrap();
        prop_assert!(fast.max_abs_diff(&slow) < 1e-10);
    }

    #[test]
    fn transpose_of_product((n, sa, sb) in (1usize..=8, any::<u64>(), any::<u64>())) {
        // (AB)^T = B^T A^T
        let a = gen::seeded_matrix(n, sa);
        let b = gen::seeded_matrix(n, sb);
        let lhs = a.multiply(&b).unwrap().transpose();
        let rhs = b.transpose().multiply(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn block_roundtrip((nb, ab, seed) in (1usize..=6, 1usize..=5, any::<u64>())) {
        let n = nb * ab;
        let m = gen::seeded_matrix(n, seed);
        let bm = BlockedMatrix::from_matrix(&m, ab).unwrap();
        prop_assert_eq!(bm.nb(), nb);
        prop_assert_eq!(bm.to_matrix().unwrap(), m);
    }

    #[test]
    fn blocked_product_independent_of_block_order(
        (n, sa, sb) in (1usize..=12, any::<u64>(), any::<u64>())
    ) {
        let a = gen::seeded_matrix(n, sa);
        let b = gen::seeded_matrix(n, sb);
        let reference = a.multiply(&b).unwrap();
        for ab in 1..=n {
            if n % ab != 0 {
                continue;
            }
            let pa = BlockedMatrix::from_matrix(&a, ab).unwrap();
            let pb = BlockedMatrix::from_matrix(&b, ab).unwrap();
            let got = pa.multiply_blocked(&pb).unwrap().to_matrix().unwrap();
            prop_assert!(reference.max_abs_diff(&got) < 1e-9, "block order {}", ab);
        }
    }

    #[test]
    fn take_block_preserves_shape((nb, ab) in (1usize..=4, 1usize..=4)) {
        let n = nb * ab;
        let mut bm = BlockedMatrix::zeros(n, ab).unwrap();
        let blk = bm.take_block(nb - 1, 0);
        prop_assert_eq!(blk.shape(), (ab, ab));
        prop_assert!(bm.block(nb - 1, 0).is_phantom());
        prop_assert_eq!(bm.block(nb - 1, 0).shape(), (ab, ab));
    }

    #[test]
    fn phantom_and_real_costs_agree((r, c) in (1usize..=64, 1usize..=64)) {
        let real = BlockData::zeros(r, c);
        let phantom = BlockData::phantom(r, c);
        prop_assert_eq!(real.bytes(), phantom.bytes());
        prop_assert_eq!(
            BlockData::gemm_cost(&real, &real.clone()),
            BlockData::gemm_cost(&phantom, &phantom.clone())
        );
    }

    #[test]
    fn dist1d_is_a_partition((per, pes) in (1usize..=6, 1usize..=6)) {
        let nb = per * pes;
        let d = Dist1D::new(nb, pes).unwrap();
        let mut count = vec![0usize; nb];
        for p in 0..pes {
            for b in d.blocks_of(p) {
                count[b] += 1;
                prop_assert_eq!(d.pe_of(b), p);
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn grid_roundtrip((r, c) in (1usize..=9, 1usize..=9)) {
        let g = Grid2D::new(r, c).unwrap();
        for node in 0..g.len() {
            let (v, h) = g.coords(node);
            prop_assert_eq!(g.node(v, h), node);
        }
    }

    #[test]
    fn frobenius_triangle_inequality((n, sa, sb) in (1usize..=8, any::<u64>(), any::<u64>())) {
        let a = gen::seeded_matrix(n, sa);
        let b = gen::seeded_matrix(n, sb);
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        prop_assert!(sum.frobenius() <= a.frobenius() + b.frobenius() + 1e-9);
    }
}
