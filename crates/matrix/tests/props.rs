//! Property-style tests for the matrix substrate, run as deterministic
//! sweeps over seeded case sets (no external property-testing crate).

use navp_matrix::{gen, BlockData, BlockedMatrix, Dist1D, Grid2D, Matrix};

/// SplitMix64 — deterministic case generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]`.
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

fn small_matrix(rng: &mut Rng) -> Matrix {
    let r = rng.in_range(1, 8);
    let c = rng.in_range(1, 8);
    let sq = gen::seeded_matrix(r.max(c), rng.next_u64());
    sq.submatrix(0, 0, r, c)
}

#[test]
fn multiply_matches_naive() {
    let mut rng = Rng(0xA11CE);
    for _ in 0..32 {
        let a = small_matrix(&mut rng);
        let k = a.cols();
        let b = gen::seeded_matrix(k.max(5), rng.next_u64()).submatrix(0, 0, k, 5);
        let fast = a.multiply(&b).unwrap();
        let slow = a.multiply_naive(&b).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-10);
    }
}

#[test]
fn transpose_of_product() {
    // (AB)^T = B^T A^T
    let mut rng = Rng(0xB0B);
    for _ in 0..32 {
        let n = rng.in_range(1, 8);
        let a = gen::seeded_matrix(n, rng.next_u64());
        let b = gen::seeded_matrix(n, rng.next_u64());
        let lhs = a.multiply(&b).unwrap().transpose();
        let rhs = b.transpose().multiply(&a.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }
}

#[test]
fn block_roundtrip() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..32 {
        let nb = rng.in_range(1, 6);
        let ab = rng.in_range(1, 5);
        let n = nb * ab;
        let m = gen::seeded_matrix(n, rng.next_u64());
        let bm = BlockedMatrix::from_matrix(&m, ab).unwrap();
        assert_eq!(bm.nb(), nb);
        assert_eq!(bm.to_matrix().unwrap(), m);
    }
}

#[test]
fn blocked_product_independent_of_block_order() {
    let mut rng = Rng(0xD00D);
    for _ in 0..8 {
        let n = rng.in_range(1, 12);
        let a = gen::seeded_matrix(n, rng.next_u64());
        let b = gen::seeded_matrix(n, rng.next_u64());
        let reference = a.multiply(&b).unwrap();
        for ab in 1..=n {
            if !n.is_multiple_of(ab) {
                continue;
            }
            let pa = BlockedMatrix::from_matrix(&a, ab).unwrap();
            let pb = BlockedMatrix::from_matrix(&b, ab).unwrap();
            let got = pa.multiply_blocked(&pb).unwrap().to_matrix().unwrap();
            assert!(reference.max_abs_diff(&got) < 1e-9, "block order {}", ab);
        }
    }
}

#[test]
fn take_block_preserves_shape() {
    for nb in 1..=4usize {
        for ab in 1..=4usize {
            let n = nb * ab;
            let mut bm = BlockedMatrix::zeros(n, ab).unwrap();
            let blk = bm.take_block(nb - 1, 0);
            assert_eq!(blk.shape(), (ab, ab));
            assert!(bm.block(nb - 1, 0).is_phantom());
            assert_eq!(bm.block(nb - 1, 0).shape(), (ab, ab));
        }
    }
}

#[test]
fn phantom_and_real_costs_agree() {
    let mut rng = Rng(0xFACADE);
    for _ in 0..32 {
        let r = rng.in_range(1, 64);
        let c = rng.in_range(1, 64);
        let real = BlockData::zeros(r, c);
        let phantom = BlockData::phantom(r, c);
        assert_eq!(real.bytes(), phantom.bytes());
        assert_eq!(
            BlockData::gemm_cost(&real, &real.clone()),
            BlockData::gemm_cost(&phantom, &phantom.clone())
        );
    }
}

#[test]
fn dist1d_is_a_partition() {
    for per in 1..=6usize {
        for pes in 1..=6usize {
            let nb = per * pes;
            let d = Dist1D::new(nb, pes).unwrap();
            let mut count = vec![0usize; nb];
            for p in 0..pes {
                for b in d.blocks_of(p) {
                    count[b] += 1;
                    assert_eq!(d.pe_of(b), p);
                }
            }
            assert!(count.iter().all(|&c| c == 1));
        }
    }
}

#[test]
fn grid_roundtrip() {
    for r in 1..=9usize {
        for c in 1..=9usize {
            let g = Grid2D::new(r, c).unwrap();
            for node in 0..g.len() {
                let (v, h) = g.coords(node);
                assert_eq!(g.node(v, h), node);
            }
        }
    }
}

#[test]
fn frobenius_triangle_inequality() {
    let mut rng = Rng(0xF00D);
    for _ in 0..32 {
        let n = rng.in_range(1, 8);
        let a = gen::seeded_matrix(n, rng.next_u64());
        let b = gen::seeded_matrix(n, rng.next_u64());
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        assert!(sum.frobenius() <= a.frobenius() + b.frobenius() + 1e-9);
    }
}
