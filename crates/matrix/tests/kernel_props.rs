//! Property tests for the packed, tiled GEMM kernel: the fast path must
//! agree with the naive reference on every tail-path combination, must
//! accumulate (not overwrite), and must be bitwise deterministic.

use navp_matrix::gen::seeded_matrix;
use navp_matrix::kernel::{gemm_acc, gemm_acc_naive, MC, MR, NC, NR};
use navp_matrix::Matrix;

/// Dimensions drawn to exercise every edge of the blocking scheme:
/// below/at/above the `MR x NR` micro-tile, primes that leave ragged
/// tails, and one step past a power-of-two boundary.
const DIMS: [usize; 10] = [1, 2, 3, 5, 7, 8, 13, 17, 32, 33];

fn test_operand(rows: usize, cols: usize, seed: u64) -> Matrix {
    let n = rows.max(cols);
    seeded_matrix(n, seed).submatrix(0, 0, rows, cols)
}

/// `m, k, n` sweep over `DIMS^3`: the packed kernel must match the
/// reference kernel on every non-square shape, to rounding.
#[test]
fn packed_matches_naive_on_all_tail_shapes() {
    for (ci, &m) in DIMS.iter().enumerate() {
        for (cj, &k) in DIMS.iter().enumerate() {
            for (ck, &n) in DIMS.iter().enumerate() {
                let seed = (ci * 100 + cj * 10 + ck) as u64 + 1;
                let a = test_operand(m, k, seed);
                let b = test_operand(k, n, seed.wrapping_mul(0x9E37_79B9));
                let mut fast = vec![0.0; m * n];
                let mut slow = vec![0.0; m * n];
                gemm_acc(&mut fast, a.as_slice(), b.as_slice(), m, k, n);
                gemm_acc_naive(&mut slow, a.as_slice(), b.as_slice(), m, k, n);
                let fast = Matrix::from_vec(m, n, fast).unwrap();
                let slow = Matrix::from_vec(m, n, slow).unwrap();
                assert!(
                    fast.max_abs_diff(&slow) < 1e-10 * (1 + k) as f64,
                    "kernel mismatch at m={m} k={k} n={n}"
                );
            }
        }
    }
}

/// Shapes larger than one packing panel: multiple KC depth panels,
/// multiple MC row panels, multiple NC column panels.
#[test]
fn packed_matches_naive_past_panel_boundaries() {
    for (m, k, n) in [
        (MC + MR + 1, 300, NR + 3),
        (MR, 2 * 256 + 17, NC + NR + 1),
        (2 * MC, 256 + 1, 2 * NR),
    ] {
        let a = test_operand(m, k, 7);
        let b = test_operand(k, n, 8);
        let mut fast = vec![0.0; m * n];
        let mut slow = vec![0.0; m * n];
        gemm_acc(&mut fast, a.as_slice(), b.as_slice(), m, k, n);
        gemm_acc_naive(&mut slow, a.as_slice(), b.as_slice(), m, k, n);
        let fast = Matrix::from_vec(m, n, fast).unwrap();
        let slow = Matrix::from_vec(m, n, slow).unwrap();
        assert!(
            fast.max_abs_diff(&slow) < 1e-9 * k as f64,
            "kernel mismatch at m={m} k={k} n={n}"
        );
    }
}

/// The kernel is `c += a*b`, never `c = a*b`: pre-filled `c` must keep
/// its prior contents in the sum, on every tail shape.
#[test]
fn packed_kernel_accumulates_into_prefilled_c() {
    for &(m, k, n) in &[(1, 1, 1), (5, 7, 13), (17, 33, 8), (33, 13, 32)] {
        let a = test_operand(m, k, 21);
        let b = test_operand(k, n, 22);
        let prefill = 0.75_f64;
        let mut acc = vec![prefill; m * n];
        gemm_acc(&mut acc, a.as_slice(), b.as_slice(), m, k, n);
        let mut from_zero = vec![0.0; m * n];
        gemm_acc(&mut from_zero, a.as_slice(), b.as_slice(), m, k, n);
        for (i, (got, base)) in acc.iter().zip(&from_zero).enumerate() {
            // The packed kernel adds one finished partial sum per KC
            // panel to c; with k < KC that is exactly one add, so the
            // relation is exact, not approximate.
            assert_eq!(
                got.to_bits(),
                (prefill + base).to_bits(),
                "m={m} k={k} n={n} index {i}"
            );
        }
    }
}

/// Two identical calls produce bitwise-identical results — the property
/// every cross-implementation parity test leans on.
#[test]
fn packed_kernel_is_bitwise_deterministic() {
    for &(m, k, n) in &[(13, 17, 7), (33, 33, 33), (MC + 1, 300, NR + 1)] {
        let a = test_operand(m, k, 31);
        let b = test_operand(k, n, 32);
        let run = || {
            let mut c = vec![1.0 / 3.0; m * n];
            gemm_acc(&mut c, a.as_slice(), b.as_slice(), m, k, n);
            c
        };
        let (one, two) = (run(), run());
        assert!(
            one.iter().zip(&two).all(|(x, y)| x.to_bits() == y.to_bits()),
            "nondeterministic at m={m} k={k} n={n}"
        );
    }
}
