//! Deterministic test-matrix generators.
//!
//! Seeded so every executor and every implementation multiplies the *same*
//! inputs, letting integration tests compare results across paradigms.

use crate::dense::Matrix;

/// SplitMix64: a tiny, high-quality, dependency-free PRNG. Every stream
/// is fully determined by its seed, which is all these generators need.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-1, 1)` using the top 53 bits.
    fn next_unit(&mut self) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        2.0 * u - 1.0
    }
}

/// A square matrix of order `n` with entries uniform in `[-1, 1)`,
/// reproducible from `seed`.
pub fn seeded_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64(seed);
    Matrix::from_fn(n, n, |_, _| rng.next_unit())
}

/// A well-conditioned structured matrix: `m[i][j] = sin(i+1) * cos(j+1) + δ_ij`.
/// Useful when a test wants entries that depend on position (to catch
/// misplaced blocks) without randomness.
pub fn structured_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        ((i + 1) as f64).sin() * ((j + 1) as f64).cos() + if i == j { 1.0 } else { 0.0 }
    })
}

/// The "position tag" matrix `m[i][j] = (i * n + j) as f64`. Each entry is
/// unique, so any block placed at the wrong coordinates changes the product.
pub fn indexed_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| (i * n + j) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible_and_seed_sensitive() {
        let a = seeded_matrix(16, 7);
        let b = seeded_matrix(16, 7);
        let c = seeded_matrix(16, 8);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn structured_entries_positional() {
        let m = structured_matrix(4);
        assert!((m[(0, 0)] - (1f64.sin() * 1f64.cos() + 1.0)).abs() < 1e-12);
        assert!((m[(2, 1)] - 3f64.sin() * 2f64.cos()).abs() < 1e-12);
    }

    #[test]
    fn indexed_entries_unique() {
        let m = indexed_matrix(5);
        assert_eq!(m[(3, 4)], 19.0);
        let mut seen: Vec<f64> = m.as_slice().to_vec();
        seen.sort_by(f64::total_cmp);
        seen.dedup();
        assert_eq!(seen.len(), 25);
    }
}
