//! The block multiply kernel.
//!
//! Every implementation in the case study — sequential, the six NavP
//! stages, Gentleman, Cannon and SUMMA — bottoms out in the same
//! `C += A * B` kernel on contiguous row-major blocks, so measured
//! differences between them come from *data movement and scheduling*,
//! never from kernel differences. That mirrors the paper, where all
//! implementations share the same compiled block multiply.
//!
//! ## The packed, tiled hot path
//!
//! [`gemm_acc`] is a cache-blocked, register-blocked, packing GEMM in
//! the BLIS/Goto style:
//!
//! * the iteration space is tiled `NC x KC x MC` so one `KC x NC` panel
//!   of `B` stays L2-resident while `MC x KC` panels of `A` stream
//!   through it;
//! * both panels are repacked into contiguous micro-panels (`MR`-row
//!   panels of `A`, `NR`-column panels of `B`) held in thread-local
//!   buffers that are reused across calls, so steady-state packing does
//!   no allocation;
//! * the innermost [`MR`]`x`[`NR`] micro-kernel keeps all `MR * NR`
//!   accumulators in registers and is written so LLVM autovectorizes
//!   it; on x86-64 with AVX2+FMA an explicit intrinsics variant is
//!   selected once per process via runtime feature detection;
//! * ragged edges are handled by zero-padding the packed micro-panels
//!   and writing back only the valid `mr x nr` window, so every tile
//!   runs the same unrolled code.
//!
//! Determinism: for a fixed shape `(m, k, n)` on a fixed machine the
//! summation order is a pure function of the blocking constants — every
//! `c[i][j]` accumulates its `k` terms in ascending order, one partial
//! sum per `KC` panel — so repeated runs are bitwise identical, and all
//! implementations that share this kernel stay bitwise comparable to
//! each other. The order *differs* from the historical i-k-j kernel
//! (kept as [`gemm_acc_naive`]), which is why cross-implementation
//! parity tests compare runs against each other, never against frozen
//! bit patterns.

use std::cell::RefCell;

/// Rows per micro-tile (register blocking in `m`).
pub const MR: usize = 4;
/// Columns per micro-tile (register blocking in `n`).
pub const NR: usize = 8;
/// Rows of the packed `A` panel (L1/L2 blocking in `m`).
pub const MC: usize = 64;
/// Depth of the packed panels (blocking in `k`).
pub const KC: usize = 256;
/// Columns of the packed `B` panel (L2/L3 blocking in `n`).
pub const NC: usize = 512;

thread_local! {
    /// Reused packing buffers: `(packed A, packed B)`. One pair per
    /// thread, grown to the high-water mark and never shrunk, so the
    /// steady state of a run does no allocation in the kernel.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `c += a * b` for contiguous row-major operands:
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// This is the shared hot path of every implementation; see the module
/// docs for the blocking scheme. Results are deterministic for a fixed
/// shape on a fixed machine, but the accumulation order differs from
/// [`gemm_acc_naive`], so the two kernels agree only to rounding.
///
/// # Panics
/// Panics when the slice lengths do not match the stated shape.
pub fn gemm_acc(c: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong length");
    assert_eq!(b.len(), k * n, "b has wrong length");
    assert_eq!(c.len(), m * n, "c has wrong length");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let micro = micro_kernel_fn();
    PACK_BUFS.with(|bufs| {
        let (pack_a, pack_b) = &mut *bufs.borrow_mut();
        // Tile footprints for this call (zero-padded to whole
        // micro-panels so the micro-kernel never branches on edges).
        let a_panel = MC.min(m).next_multiple_of(MR) * KC.min(k);
        let b_panel = KC.min(k) * NC.min(n).next_multiple_of(NR);
        if pack_a.len() < a_panel {
            pack_a.resize(a_panel, 0.0);
        }
        if pack_b.len() < b_panel {
            pack_b.resize(b_panel, 0.0);
        }
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b_panel(pack_b, b, n, pc, jc, kc, nc);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a_panel(pack_a, a, k, ic, pc, mc, kc);
                    macro_kernel(c, n, ic, jc, mc, nc, kc, pack_a, pack_b, micro);
                }
            }
        }
    });
}

/// Pack `a[ic..ic+mc][pc..pc+kc]` (lead dim `lda`) into `MR`-row
/// micro-panels: panel `p` holds, for each `kk`, the `MR` column-`kk`
/// entries of rows `ic + p*MR ..`, zero-padded past `mc`.
fn pack_a_panel(dst: &mut [f64], a: &[f64], lda: usize, ic: usize, pc: usize, mc: usize, kc: usize) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let base = p * MR * kc;
        let rows = MR.min(mc - p * MR);
        for kk in 0..kc {
            let out = &mut dst[base + kk * MR..base + kk * MR + MR];
            for r in 0..rows {
                out[r] = a[(ic + p * MR + r) * lda + pc + kk];
            }
            out[rows..].fill(0.0);
        }
    }
}

/// Pack `b[pc..pc+kc][jc..jc+nc]` (lead dim `ldb`) into `NR`-column
/// micro-panels: panel `q` holds, for each `kk`, `NR` consecutive
/// entries of row `pc + kk`, zero-padded past `nc`.
fn pack_b_panel(dst: &mut [f64], b: &[f64], ldb: usize, pc: usize, jc: usize, kc: usize, nc: usize) {
    let panels = nc.div_ceil(NR);
    for q in 0..panels {
        let base = q * NR * kc;
        let cols = NR.min(nc - q * NR);
        for kk in 0..kc {
            let src = (pc + kk) * ldb + jc + q * NR;
            let out = &mut dst[base + kk * NR..base + kk * NR + NR];
            out[..cols].copy_from_slice(&b[src..src + cols]);
            out[cols..].fill(0.0);
        }
    }
}

/// Run the micro-kernel over every `MR x NR` tile of the packed panels,
/// accumulating into the valid window of `c` (lead dim `ldc`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    c: &mut [f64],
    ldc: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    pack_a: &[f64],
    pack_b: &[f64],
    micro: MicroKernel,
) {
    let mut acc = [0.0f64; MR * NR];
    for q in 0..nc.div_ceil(NR) {
        let nr = NR.min(nc - q * NR);
        let bp = &pack_b[q * NR * kc..(q + 1) * NR * kc];
        for p in 0..mc.div_ceil(MR) {
            let mr = MR.min(mc - p * MR);
            let ap = &pack_a[p * MR * kc..(p + 1) * MR * kc];
            acc.fill(0.0);
            micro(kc, ap, bp, &mut acc);
            // Write back only the valid window; the padded lanes hold
            // products of zero-padding and are discarded.
            for r in 0..mr {
                let row = (ic + p * MR + r) * ldc + jc + q * NR;
                let dst = &mut c[row..row + nr];
                let src = &acc[r * NR..r * NR + nr];
                for (cv, &av) in dst.iter_mut().zip(src) {
                    *cv += av;
                }
            }
        }
    }
}

/// Signature of the `MR x NR` micro-kernel over packed panels:
/// `acc += ap * bp` with `ap` laid out `kc x MR` and `bp` `kc x NR`.
type MicroKernel = fn(usize, &[f64], &[f64], &mut [f64; MR * NR]);

/// Portable micro-kernel; fixed trip counts let LLVM unroll and
/// autovectorize the `MR x NR` update.
fn micro_kernel_generic(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; MR * NR]) {
    for kk in 0..kc {
        let ar: &[f64; MR] = ap[kk * MR..kk * MR + MR].try_into().expect("packed A");
        let br: &[f64; NR] = bp[kk * NR..kk * NR + NR].try_into().expect("packed B");
        for r in 0..MR {
            let av = ar[r];
            for j in 0..NR {
                acc[r * NR + j] += av * br[j];
            }
        }
    }
}

/// AVX2+FMA micro-kernel: 4x8 doubles = 8 YMM accumulators, two FMA
/// chains per row per step. Selected at runtime when the CPU supports
/// it; the choice is stable for the life of the process, so results
/// stay deterministic on a given machine.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_avx2_impl(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; MR * NR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut c00 = _mm256_setzero_pd();
    let mut c01 = _mm256_setzero_pd();
    let mut c10 = _mm256_setzero_pd();
    let mut c11 = _mm256_setzero_pd();
    let mut c20 = _mm256_setzero_pd();
    let mut c21 = _mm256_setzero_pd();
    let mut c30 = _mm256_setzero_pd();
    let mut c31 = _mm256_setzero_pd();
    let mut a_ptr = ap.as_ptr();
    let mut b_ptr = bp.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_pd(b_ptr);
        let b1 = _mm256_loadu_pd(b_ptr.add(4));
        let a0 = _mm256_broadcast_sd(&*a_ptr);
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a0, b1, c01);
        let a1 = _mm256_broadcast_sd(&*a_ptr.add(1));
        c10 = _mm256_fmadd_pd(a1, b0, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let a2 = _mm256_broadcast_sd(&*a_ptr.add(2));
        c20 = _mm256_fmadd_pd(a2, b0, c20);
        c21 = _mm256_fmadd_pd(a2, b1, c21);
        let a3 = _mm256_broadcast_sd(&*a_ptr.add(3));
        c30 = _mm256_fmadd_pd(a3, b0, c30);
        c31 = _mm256_fmadd_pd(a3, b1, c31);
        a_ptr = a_ptr.add(MR);
        b_ptr = b_ptr.add(NR);
    }
    let out = acc.as_mut_ptr();
    _mm256_storeu_pd(out, c00);
    _mm256_storeu_pd(out.add(4), c01);
    _mm256_storeu_pd(out.add(8), c10);
    _mm256_storeu_pd(out.add(12), c11);
    _mm256_storeu_pd(out.add(16), c20);
    _mm256_storeu_pd(out.add(20), c21);
    _mm256_storeu_pd(out.add(24), c30);
    _mm256_storeu_pd(out.add(28), c31);
}

#[cfg(target_arch = "x86_64")]
fn micro_kernel_avx2(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; MR * NR]) {
    // Safety: only reachable after `is_x86_feature_detected!` confirmed
    // avx2 and fma; slice bounds are asserted by the packers.
    unsafe { micro_kernel_avx2_impl(kc, ap, bp, acc) }
}

/// Pick the micro-kernel once per process (stable ⇒ deterministic).
fn micro_kernel_fn() -> MicroKernel {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static PICK: OnceLock<MicroKernel> = OnceLock::new();
        *PICK.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                micro_kernel_avx2
            } else {
                micro_kernel_generic
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        micro_kernel_generic
    }
}

/// The historical i-k-j triple loop, kept as the reference kernel the
/// packed path is benchmarked and property-tested against. The
/// innermost loop streams a row of `b` against a row of `c` with a
/// scalar of `a` in a register — the access pattern the paper's
/// Section 5 credits for NavP's (and the sequential code's) cache
/// behaviour.
///
/// # Panics
/// Panics when the slice lengths do not match the stated shape.
pub fn gemm_acc_naive(c: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong length");
    assert_eq!(b.len(), k * n, "b has wrong length");
    assert_eq!(c.len(), m * n, "c has wrong length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// Number of floating-point operations `gemm_acc` performs for an
/// `m x k` by `k x n` block pair (one multiply and one add per update).
#[inline]
pub const fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// `c += a * b` where all three operands are square `order x order` blocks.
/// Convenience wrapper used by the block algorithms.
pub fn gemm_acc_square(c: &mut [f64], a: &[f64], b: &[f64], order: usize) {
    gemm_acc(c, a, b, order, order, order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn kernel_matches_naive() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * j) as f64 - 3.0);
        let b = Matrix::from_fn(6, 5, |i, j| (i + j) as f64 * 0.25);
        let want = a.multiply_naive(&b).unwrap();
        let mut c = vec![0.0; 4 * 5];
        gemm_acc(&mut c, a.as_slice(), b.as_slice(), 4, 6, 5);
        let got = Matrix::from_vec(4, 5, c).unwrap();
        assert!(want.max_abs_diff(&got) < 1e-12);
    }

    #[test]
    fn packed_and_reference_kernels_agree() {
        // Shapes straddling every blocking boundary: micro-tile tails,
        // multiple KC panels, multiple MC rows.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (MR, KC + 3, NR), (MC + 1, 2 * KC + 1, NR + 1)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, n, |i, j| 0.5 - ((i + 2 * j) % 9) as f64 * 0.125);
            let mut c_fast = vec![0.5; m * n];
            let mut c_ref = vec![0.5; m * n];
            gemm_acc(&mut c_fast, a.as_slice(), b.as_slice(), m, k, n);
            gemm_acc_naive(&mut c_ref, a.as_slice(), b.as_slice(), m, k, n);
            let fast = Matrix::from_vec(m, n, c_fast).unwrap();
            let refm = Matrix::from_vec(m, n, c_ref).unwrap();
            assert!(
                fast.max_abs_diff(&refm) < 1e-9 * (k as f64),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn kernel_accumulates() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let mut c = vec![1.0; 9];
        gemm_acc_square(&mut c, a.as_slice(), b.as_slice(), 3);
        for (idx, v) in c.iter().enumerate() {
            assert_eq!(*v, 1.0 + idx as f64);
        }
    }

    #[test]
    fn kernel_is_deterministic() {
        let a = Matrix::from_fn(33, 17, |i, j| (i as f64 - j as f64) / 3.0);
        let b = Matrix::from_fn(17, 13, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let run = || {
            let mut c = vec![0.25; 33 * 13];
            gemm_acc(&mut c, a.as_slice(), b.as_slice(), 33, 17, 13);
            c
        };
        let (one, two) = (run(), run());
        assert!(one
            .iter()
            .zip(&two)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn flops_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(128, 128, 128), 2 * 128u64.pow(3));
    }

    #[test]
    #[should_panic(expected = "a has wrong length")]
    fn kernel_rejects_bad_lengths() {
        let mut c = vec![0.0; 4];
        gemm_acc(&mut c, &[0.0; 3], &[0.0; 4], 2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "a has wrong length")]
    fn naive_kernel_rejects_bad_lengths() {
        let mut c = vec![0.0; 4];
        gemm_acc_naive(&mut c, &[0.0; 3], &[0.0; 4], 2, 2, 2);
    }

    #[test]
    fn zero_a_leaves_c_unchanged() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut c = vec![7.0; 4];
        gemm_acc_square(&mut c, a.as_slice(), b.as_slice(), 2);
        assert!(c.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let mut c: Vec<f64> = vec![];
        gemm_acc(&mut c, &[], &[], 0, 0, 0);
        gemm_acc(&mut c, &[], &[], 0, 5, 0);
        let mut c = vec![3.0; 4];
        gemm_acc(&mut c, &[], &[], 2, 0, 2);
        assert!(c.iter().all(|&x| x == 3.0));
    }
}
