//! The block multiply kernel.
//!
//! Every implementation in the case study — sequential, the six NavP
//! stages, Gentleman, Cannon and SUMMA — bottoms out in the same
//! `C += A * B` kernel on contiguous row-major blocks, so measured
//! differences between them come from *data movement and scheduling*,
//! never from kernel differences. That mirrors the paper, where all
//! implementations share the same compiled block multiply.

/// `c += a * b` for contiguous row-major operands:
/// `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// Loop order is i-k-j: the innermost loop streams a row of `b` against a
/// row of `c` with a scalar of `a` in a register, which vectorizes well and
/// keeps one operand cache-resident — the access pattern the paper's
/// Section 5 credits for NavP's (and the sequential code's) cache behaviour.
///
/// # Panics
/// Panics (via `debug_assert` in release-checked slicing) when the slice
/// lengths do not match the stated shape.
pub fn gemm_acc(c: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong length");
    assert_eq!(b.len(), k * n, "b has wrong length");
    assert_eq!(c.len(), m * n, "c has wrong length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// Number of floating-point operations `gemm_acc` performs for an
/// `m x k` by `k x n` block pair (one multiply and one add per update).
#[inline]
pub const fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// `c += a * b` where all three operands are square `order x order` blocks.
/// Convenience wrapper used by the block algorithms.
pub fn gemm_acc_square(c: &mut [f64], a: &[f64], b: &[f64], order: usize) {
    gemm_acc(c, a, b, order, order, order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn kernel_matches_naive() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * j) as f64 - 3.0);
        let b = Matrix::from_fn(6, 5, |i, j| (i + j) as f64 * 0.25);
        let want = a.multiply_naive(&b).unwrap();
        let mut c = vec![0.0; 4 * 5];
        gemm_acc(&mut c, a.as_slice(), b.as_slice(), 4, 6, 5);
        let got = Matrix::from_vec(4, 5, c).unwrap();
        assert!(want.max_abs_diff(&got) < 1e-12);
    }

    #[test]
    fn kernel_accumulates() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let mut c = vec![1.0; 9];
        gemm_acc_square(&mut c, a.as_slice(), b.as_slice(), 3);
        for (idx, v) in c.iter().enumerate() {
            assert_eq!(*v, 1.0 + idx as f64);
        }
    }

    #[test]
    fn flops_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(128, 128, 128), 2 * 128u64.pow(3));
    }

    #[test]
    #[should_panic(expected = "a has wrong length")]
    fn kernel_rejects_bad_lengths() {
        let mut c = vec![0.0; 4];
        gemm_acc(&mut c, &[0.0; 3], &[0.0; 4], 2, 2, 2);
    }

    #[test]
    fn zero_a_leaves_c_unchanged() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut c = vec![7.0; 4];
        gemm_acc_square(&mut c, a.as_slice(), b.as_slice(), 2);
        assert!(c.iter().all(|&x| x == 7.0));
    }
}
