//! Matrices decomposed into *algorithmic blocks*.
//!
//! The paper distinguishes **distribution blocks** (the chunk of a matrix
//! resident on one PE) from **algorithmic blocks** (the unit a migrating
//! carrier moves and the kernel multiplies). [`BlockedMatrix`] stores a
//! square matrix as an `nb x nb` grid of `ab x ab` blocks, where
//! `nb = n / ab`.
//!
//! Blocks are [`BlockData`]: either `Real` (actual `f64` payload, used when
//! verifying correctness) or `Phantom` (logical shape only, used when a
//! simulation replays the paper's problem sizes — order up to 9216 — purely
//! under the cost model).

use crate::dense::Matrix;
use crate::error::MatrixError;
use crate::kernel;
use std::sync::Arc;

/// The payload of one algorithmic block.
///
/// Real payloads live behind an [`Arc`] so cloning a block — which
/// happens on every messenger snapshot, checkpoint, and journal commit
/// — is a reference bump. The payload is only copied when a shared
/// block is actually accumulated into ([`BlockData::gemm_acc`] un-shares
/// via [`Arc::make_mut`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BlockData {
    /// A real block with data; arithmetic actually happens.
    Real(Arc<Matrix>),
    /// A placeholder with the logical shape of a block; arithmetic is
    /// skipped but costs (flops, bytes) are still accounted by callers.
    Phantom {
        /// Logical number of rows.
        rows: usize,
        /// Logical number of columns.
        cols: usize,
    },
}

impl BlockData {
    /// A real block wrapping `m` (single shared owner; no copy).
    pub fn real(m: Matrix) -> Self {
        BlockData::Real(Arc::new(m))
    }

    /// A real block of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BlockData::real(Matrix::zeros(rows, cols))
    }

    /// A phantom block of the given logical shape.
    pub fn phantom(rows: usize, cols: usize) -> Self {
        BlockData::Phantom { rows, cols }
    }

    /// Logical `(rows, cols)` regardless of payload kind.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            BlockData::Real(m) => m.shape(),
            BlockData::Phantom { rows, cols } => (*rows, *cols),
        }
    }

    /// `true` for [`BlockData::Phantom`].
    pub fn is_phantom(&self) -> bool {
        matches!(self, BlockData::Phantom { .. })
    }

    /// Payload size in bytes a carrier pays to move this block. Phantom
    /// blocks report the bytes their *logical* payload would occupy, so
    /// simulations charge identical communication costs in both modes.
    pub fn bytes(&self) -> u64 {
        let (r, c) = self.shape();
        (r * c * std::mem::size_of::<f64>()) as u64
    }

    /// Flops of a `self += a * b` block update with these logical shapes.
    pub fn gemm_cost(a: &BlockData, b: &BlockData) -> u64 {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        kernel::gemm_flops(m, k, n)
    }

    /// `self += a * b`.
    ///
    /// Performs real arithmetic only when all three blocks are `Real`;
    /// shape compatibility is checked in both modes so phantom runs catch
    /// the same indexing bugs real runs would.
    pub fn gemm_acc(&mut self, a: &BlockData, b: &BlockData) -> Result<(), MatrixError> {
        let (m, ka) = a.shape();
        let (kb, n) = b.shape();
        let (cm, cn) = self.shape();
        if ka != kb || cm != m || cn != n {
            return Err(MatrixError::ShapeMismatch {
                op: "block gemm_acc",
                lhs: (m, ka),
                rhs: (kb, n),
            });
        }
        match (self, a, b) {
            (BlockData::Real(c), BlockData::Real(a), BlockData::Real(b)) => {
                // Un-share `c` if a checkpoint still references it; the
                // accumulation then happens in place on the sole owner.
                let c = Arc::make_mut(c);
                kernel::gemm_acc(c.as_mut_slice(), a.as_slice(), b.as_slice(), m, ka, n);
                Ok(())
            }
            // Mixing real and phantom blocks is a configuration error in
            // the caller, but the cost model still lines up, so treat any
            // phantom operand as a phantom update.
            _ => Ok(()),
        }
    }

    /// Borrow the real payload, or fail for phantom blocks.
    pub fn as_real(&self) -> Result<&Matrix, MatrixError> {
        match self {
            BlockData::Real(m) => Ok(m.as_ref()),
            BlockData::Phantom { .. } => Err(MatrixError::PhantomData("as_real")),
        }
    }
}

/// A square matrix of order `n` stored as a grid of `ab x ab` algorithmic
/// blocks (`ab` must divide `n`). Block `(bi, bj)` covers rows
/// `bi*ab..(bi+1)*ab` and columns `bj*ab..(bj+1)*ab` of the full matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedMatrix {
    n: usize,
    ab: usize,
    nb: usize,
    blocks: Vec<BlockData>,
}

impl BlockedMatrix {
    /// Decompose `m` (square) into `ab x ab` real blocks.
    pub fn from_matrix(m: &Matrix, ab: usize) -> Result<Self, MatrixError> {
        let (r, c) = m.shape();
        if r != c {
            return Err(MatrixError::ShapeMismatch {
                op: "from_matrix (square required)",
                lhs: (r, c),
                rhs: (r, r),
            });
        }
        let mut bm = BlockedMatrix::zeros(r, ab)?;
        for bi in 0..bm.nb {
            for bj in 0..bm.nb {
                let blk = m.submatrix(bi * ab, bj * ab, ab, ab);
                bm.blocks[bi * bm.nb + bj] = BlockData::real(blk);
            }
        }
        Ok(bm)
    }

    /// An all-zero real blocked matrix of order `n`.
    pub fn zeros(n: usize, ab: usize) -> Result<Self, MatrixError> {
        Self::check(n, ab)?;
        let nb = n / ab;
        Ok(BlockedMatrix {
            n,
            ab,
            nb,
            blocks: (0..nb * nb).map(|_| BlockData::zeros(ab, ab)).collect(),
        })
    }

    /// A phantom blocked matrix of order `n` — shapes and costs only.
    pub fn phantom(n: usize, ab: usize) -> Result<Self, MatrixError> {
        Self::check(n, ab)?;
        let nb = n / ab;
        Ok(BlockedMatrix {
            n,
            ab,
            nb,
            blocks: (0..nb * nb).map(|_| BlockData::phantom(ab, ab)).collect(),
        })
    }

    fn check(n: usize, ab: usize) -> Result<(), MatrixError> {
        if n == 0 || ab == 0 {
            return Err(MatrixError::Degenerate("matrix or block order is zero"));
        }
        if !n.is_multiple_of(ab) {
            return Err(MatrixError::IndivisibleBlock { n, block: ab });
        }
        Ok(())
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Algorithmic block order.
    pub fn block_order(&self) -> usize {
        self.ab
    }

    /// Number of blocks per side (`n / ab`).
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// `true` when every block is phantom.
    pub fn is_phantom(&self) -> bool {
        self.blocks.iter().all(BlockData::is_phantom)
    }

    /// Borrow block `(bi, bj)`.
    ///
    /// # Panics
    /// Panics when the block index is out of range.
    pub fn block(&self, bi: usize, bj: usize) -> &BlockData {
        assert!(bi < self.nb && bj < self.nb, "block index out of range");
        &self.blocks[bi * self.nb + bj]
    }

    /// Mutably borrow block `(bi, bj)`.
    ///
    /// # Panics
    /// Panics when the block index is out of range.
    pub fn block_mut(&mut self, bi: usize, bj: usize) -> &mut BlockData {
        assert!(bi < self.nb && bj < self.nb, "block index out of range");
        &mut self.blocks[bi * self.nb + bj]
    }

    /// Move block `(bi, bj)` out, leaving a phantom of the same shape —
    /// the blocked-matrix analogue of a carrier picking up its payload.
    pub fn take_block(&mut self, bi: usize, bj: usize) -> BlockData {
        let (r, c) = self.block(bi, bj).shape();
        std::mem::replace(
            &mut self.blocks[bi * self.nb + bj],
            BlockData::phantom(r, c),
        )
    }

    /// Store `data` into slot `(bi, bj)`.
    pub fn put_block(&mut self, bi: usize, bj: usize, data: BlockData) {
        assert!(bi < self.nb && bj < self.nb, "block index out of range");
        self.blocks[bi * self.nb + bj] = data;
    }

    /// Reassemble the full dense matrix. Fails if any block is phantom.
    pub fn to_matrix(&self) -> Result<Matrix, MatrixError> {
        let mut out = Matrix::zeros(self.n, self.n);
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                let blk = self.block(bi, bj).as_real()?;
                out.set_submatrix(bi * self.ab, bj * self.ab, blk);
            }
        }
        Ok(out)
    }

    /// Blocked product `C = self * rhs` executed sequentially in the
    /// paper's Figure 2 loop order lifted to blocks (i, j, k over blocks).
    ///
    /// This is the **sequential baseline** every distributed implementation
    /// is verified against and timed relative to.
    pub fn multiply_blocked(&self, rhs: &BlockedMatrix) -> Result<BlockedMatrix, MatrixError> {
        if self.n != rhs.n || self.ab != rhs.ab {
            return Err(MatrixError::ShapeMismatch {
                op: "multiply_blocked",
                lhs: (self.n, self.ab),
                rhs: (rhs.n, rhs.ab),
            });
        }
        let mut c = if self.is_phantom() || rhs.is_phantom() {
            BlockedMatrix::phantom(self.n, self.ab)?
        } else {
            BlockedMatrix::zeros(self.n, self.ab)?
        };
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                for bk in 0..self.nb {
                    let (a, b) = (self.block(bi, bk), rhs.block(bk, bj));
                    // Split borrow: c's block is disjoint from a and b.
                    c.blocks[bi * c.nb + bj].gemm_acc(a, b)?;
                }
            }
        }
        Ok(c)
    }

    /// Total flops of a blocked multiply of this order/blocking.
    pub fn multiply_flops(&self) -> u64 {
        2 * (self.n as u64).pow(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn construction_checks() {
        assert!(BlockedMatrix::zeros(6, 2).is_ok());
        assert!(matches!(
            BlockedMatrix::zeros(6, 4),
            Err(MatrixError::IndivisibleBlock { .. })
        ));
        assert!(BlockedMatrix::zeros(0, 1).is_err());
        assert!(BlockedMatrix::phantom(8, 0).is_err());
    }

    #[test]
    fn roundtrip_matrix_blocks() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let bm = BlockedMatrix::from_matrix(&m, 2).unwrap();
        assert_eq!(bm.nb(), 3);
        assert_eq!(bm.block(1, 2).as_real().unwrap()[(0, 0)], m[(2, 4)]);
        assert_eq!(bm.to_matrix().unwrap(), m);
    }

    #[test]
    fn blocked_multiply_matches_dense() {
        let a = gen::seeded_matrix(12, 42);
        let b = gen::seeded_matrix(12, 43);
        let want = a.multiply(&b).unwrap();
        for ab in [1, 2, 3, 4, 6, 12] {
            let ba = BlockedMatrix::from_matrix(&a, ab).unwrap();
            let bb = BlockedMatrix::from_matrix(&b, ab).unwrap();
            let got = ba.multiply_blocked(&bb).unwrap().to_matrix().unwrap();
            assert!(
                want.max_abs_diff(&got) < 1e-10,
                "mismatch at block order {ab}"
            );
        }
    }

    #[test]
    fn phantom_multiply_is_shape_only() {
        let a = BlockedMatrix::phantom(8, 2).unwrap();
        let b = BlockedMatrix::phantom(8, 2).unwrap();
        let c = a.multiply_blocked(&b).unwrap();
        assert!(c.is_phantom());
        assert!(c.to_matrix().is_err());
        assert_eq!(c.multiply_flops(), 2 * 8u64.pow(3));
    }

    #[test]
    fn take_and_put_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut bm = BlockedMatrix::from_matrix(&m, 2).unwrap();
        let blk = bm.take_block(0, 1);
        assert!(!blk.is_phantom());
        assert!(bm.block(0, 1).is_phantom());
        bm.put_block(0, 1, blk);
        assert_eq!(bm.to_matrix().unwrap(), m);
    }

    #[test]
    fn block_bytes_and_cost() {
        let a = BlockData::phantom(128, 128);
        assert_eq!(a.bytes(), 128 * 128 * 8);
        let b = BlockData::phantom(128, 128);
        assert_eq!(BlockData::gemm_cost(&a, &b), 2 * 128u64.pow(3));
    }

    #[test]
    fn gemm_acc_shape_errors() {
        let mut c = BlockData::zeros(2, 2);
        let a = BlockData::zeros(2, 3);
        let b = BlockData::zeros(4, 2);
        assert!(c.gemm_acc(&a, &b).is_err());
    }
}
