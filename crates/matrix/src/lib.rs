//! Dense-matrix substrate for the NavP (Navigational Programming) case study.
//!
//! The ICPP 2005 paper parallelizes dense matrix multiplication `C = A * B`
//! at two granularities:
//!
//! * **distribution blocks** — the unit of data placement on a PE
//!   (a processing element owns a contiguous band of rows/columns), and
//! * **algorithmic blocks** — the unit carried by a migrating computation
//!   and multiplied by the kernel (paper block orders: 128 and 256).
//!
//! This crate provides both: [`Matrix`] is a plain row-major dense matrix
//! with a cache-friendly blocked kernel, [`BlockedMatrix`] is a matrix
//! decomposed into algorithmic blocks, and [`dist`] maps blocks onto
//! one- and two-dimensional PE grids exactly the way the paper's figures
//! (Fig. 4–14) distribute them.
//!
//! Because the benchmark harness re-runs the paper's experiments at the
//! original problem sizes (up to order 9216) under a *cost model* rather
//! than on real 2003 hardware, block payloads come in two flavours
//! ([`BlockData`]): `Real` blocks hold `f64` data and are actually
//! multiplied, while `Phantom` blocks carry only their logical shape so a
//! simulation can account for flops and bytes without touching memory.

#![warn(missing_docs)]

pub mod block;
pub mod dense;
pub mod dist;
pub mod error;
pub mod gen;
pub mod kernel;
pub mod stagger;

pub use block::{BlockData, BlockedMatrix};
pub use dense::Matrix;
pub use dist::{Dist1D, Dist2D, Grid2D};
pub use error::MatrixError;
