//! Initial staggering (skewing) schemes.
//!
//! Systolic matrix multiplication must first *stagger* the operand
//! matrices so that each PE starts with an aligned `A(i,k)`/`B(k,j)` pair.
//! Gentleman's and Cannon's algorithms use **forward staggering**: row `i`
//! of `A` shifts `i` steps west and column `j` of `B` shifts `j` steps
//! north. The paper's NavP program instead uses **reverse staggering**
//! (Section 5, item 3): a row's chain of blocks is both shifted *and
//! reverse-ordered*, which the authors' technical report shows needs at
//! most two communication phases against forward staggering's three.
//!
//! This module implements both placements, verifies their alignment
//! algebra, and provides a communication-phase scheduler used by the
//! staggering ablation benchmark.

use crate::error::MatrixError;

/// Destination PE `(v, h)` of block `A(i, j)` under **forward** staggering
/// on a `p x p` torus: shift row `i` by `i` to the west.
#[inline]
pub fn forward_a(i: usize, j: usize, p: usize) -> (usize, usize) {
    (i, (j + p - i % p) % p)
}

/// Destination PE of block `B(i, j)` under **forward** staggering:
/// shift column `j` by `j` to the north.
#[inline]
pub fn forward_b(i: usize, j: usize, p: usize) -> (usize, usize) {
    ((i + p - j % p) % p, j)
}

/// Destination PE of block `A(i, j)` under **reverse** staggering, the
/// placement the NavP full-DPC program computes from first
/// (`hop(node(mi, (N-1-mi-mk+mj) % N))` with `mj = 0` in Figure 15).
#[inline]
pub fn reverse_a(i: usize, j: usize, p: usize) -> (usize, usize) {
    (i, (2 * p - 1 - i - j) % p)
}

/// Destination PE of block `B(i, j)` under **reverse** staggering
/// (`hop(node((N-1-mj-mk+mi) % N, mj))` with `mi = 0` in Figure 15).
#[inline]
pub fn reverse_b(i: usize, j: usize, p: usize) -> (usize, usize) {
    ((2 * p - 1 - i - j) % p, j)
}

/// Which operand a staggering transfer moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A-matrix block.
    A,
    /// B-matrix block.
    B,
}

/// One block transfer of the initial staggering: `block` starts on the PE
/// matching its own coordinates and must reach `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Operand being moved.
    pub op: Operand,
    /// Block coordinates `(i, j)`.
    pub block: (usize, usize),
    /// Source PE `(v, h)` — always `(i, j)` for the home placement.
    pub src: (usize, usize),
    /// Destination PE `(v, h)`.
    pub dst: (usize, usize),
}

/// All non-local transfers needed to stagger both operands of a `p x p`
/// block matrix from the home placement (`(i, j)` on PE `(i, j)`), under
/// the given placement functions.
pub fn transfers(
    p: usize,
    place_a: fn(usize, usize, usize) -> (usize, usize),
    place_b: fn(usize, usize, usize) -> (usize, usize),
) -> Result<Vec<Transfer>, MatrixError> {
    if p == 0 {
        return Err(MatrixError::Degenerate("zero-order torus"));
    }
    let mut out = Vec::with_capacity(2 * p * p);
    for i in 0..p {
        for j in 0..p {
            let da = place_a(i, j, p);
            if da != (i, j) {
                out.push(Transfer {
                    op: Operand::A,
                    block: (i, j),
                    src: (i, j),
                    dst: da,
                });
            }
            let db = place_b(i, j, p);
            if db != (i, j) {
                out.push(Transfer {
                    op: Operand::B,
                    block: (i, j),
                    src: (i, j),
                    dst: db,
                });
            }
        }
    }
    Ok(out)
}

/// Forward-staggering transfer list for a `p x p` torus.
pub fn forward_transfers(p: usize) -> Result<Vec<Transfer>, MatrixError> {
    transfers(p, forward_a, forward_b)
}

/// Reverse-staggering transfer list for a `p x p` torus.
pub fn reverse_transfers(p: usize) -> Result<Vec<Transfer>, MatrixError> {
    transfers(p, reverse_a, reverse_b)
}

/// Schedule transfers into *communication phases* under the one-port,
/// full-duplex model of the paper: in one phase every PE sends at most one
/// block and receives at most one block (the switch itself is
/// collision-free). Local moves never appear in `transfers`.
///
/// Returns the phase index assigned to each transfer and the total number
/// of phases. Greedy smallest-feasible-phase assignment; for the staggering
/// patterns in this crate (per-PE degree ≤ 2) greedy is optimal, and a
/// `max_degree` lower bound is exposed for checking.
pub fn schedule_phases(transfers: &[Transfer], p: usize) -> (Vec<usize>, usize) {
    let n = p * p;
    // send_busy[phase][pe], recv_busy[phase][pe] tracked sparsely.
    let mut send_busy: Vec<Vec<bool>> = Vec::new();
    let mut recv_busy: Vec<Vec<bool>> = Vec::new();
    let mut phases = Vec::with_capacity(transfers.len());
    let mut max_phase = 0;
    for t in transfers {
        let s = t.src.0 * p + t.src.1;
        let d = t.dst.0 * p + t.dst.1;
        let mut ph = 0;
        loop {
            if ph == send_busy.len() {
                send_busy.push(vec![false; n]);
                recv_busy.push(vec![false; n]);
            }
            if !send_busy[ph][s] && !recv_busy[ph][d] {
                send_busy[ph][s] = true;
                recv_busy[ph][d] = true;
                phases.push(ph);
                max_phase = max_phase.max(ph + 1);
                break;
            }
            ph += 1;
        }
    }
    (phases, max_phase)
}

/// Lower bound on the number of phases: the maximum, over PEs, of blocks
/// it must send or receive.
pub fn phase_lower_bound(transfers: &[Transfer], p: usize) -> usize {
    let n = p * p;
    let mut send = vec![0usize; n];
    let mut recv = vec![0usize; n];
    for t in transfers {
        send[t.src.0 * p + t.src.1] += 1;
        recv[t.dst.0 * p + t.dst.1] += 1;
    }
    send.iter().chain(recv.iter()).copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// After staggering, the A block and B block meeting on a PE must share
    /// the same inner index k — otherwise the first multiply is wrong.
    fn alignment_holds(
        p: usize,
        place_a: fn(usize, usize, usize) -> (usize, usize),
        place_b: fn(usize, usize, usize) -> (usize, usize),
    ) {
        let mut a_at = vec![None; p * p];
        let mut b_at = vec![None; p * p];
        for i in 0..p {
            for k in 0..p {
                let (v, h) = place_a(i, k, p);
                assert!(a_at[v * p + h].is_none(), "two A blocks on one PE");
                a_at[v * p + h] = Some((i, k));
            }
        }
        for k in 0..p {
            for j in 0..p {
                let (v, h) = place_b(k, j, p);
                assert!(b_at[v * p + h].is_none(), "two B blocks on one PE");
                b_at[v * p + h] = Some((k, j));
            }
        }
        for node in 0..p * p {
            let (v, h) = (node / p, node % p);
            let (ai, ak) = a_at[node].expect("PE without A block");
            let (bk, bj) = b_at[node].expect("PE without B block");
            assert_eq!(ai, v, "A row must stay in its PE row");
            assert_eq!(bj, h, "B col must stay in its PE col");
            assert_eq!(ak, bk, "A and B inner indices must align");
        }
    }

    #[test]
    fn forward_staggering_aligns() {
        for p in 1..=6 {
            alignment_holds(p, forward_a, forward_b);
        }
    }

    #[test]
    fn reverse_staggering_aligns() {
        for p in 1..=6 {
            alignment_holds(p, reverse_a, reverse_b);
        }
    }

    #[test]
    fn reverse_a_is_an_involution_per_row() {
        // Reversing a reversed row restores it: (i,j) -> (i,j') -> (i,j).
        for p in 1..=7 {
            for i in 0..p {
                for j in 0..p {
                    let (_, j1) = reverse_a(i, j, p);
                    let (_, j2) = reverse_a(i, j1, p);
                    assert_eq!(j2, j);
                }
            }
        }
    }

    #[test]
    fn transfers_exclude_local_moves() {
        let p = 4;
        for ts in [forward_transfers(p).unwrap(), reverse_transfers(p).unwrap()] {
            assert!(ts.iter().all(|t| t.src != t.dst));
        }
    }

    #[test]
    fn reverse_has_more_locality_than_forward() {
        // The NavP claim distilled: reverse staggering leaves at least as
        // many blocks in place and schedules in no more phases.
        for p in 2..=9 {
            let f = forward_transfers(p).unwrap();
            let r = reverse_transfers(p).unwrap();
            let (_, fp) = schedule_phases(&f, p);
            let (_, rp) = schedule_phases(&r, p);
            assert!(
                rp <= fp,
                "p={p}: reverse phases {rp} > forward phases {fp}"
            );
        }
    }

    #[test]
    fn schedule_respects_one_port_model() {
        let p = 5;
        let ts = forward_transfers(p).unwrap();
        let (assign, nphases) = schedule_phases(&ts, p);
        assert_eq!(assign.len(), ts.len());
        let mut used: HashSet<(usize, usize, bool)> = HashSet::new();
        for (t, &ph) in ts.iter().zip(&assign) {
            assert!(ph < nphases);
            assert!(used.insert((ph, t.src.0 * p + t.src.1, true)), "send clash");
            assert!(used.insert((ph, t.dst.0 * p + t.dst.1, false)), "recv clash");
        }
        assert!(nphases >= phase_lower_bound(&ts, p));
    }

    #[test]
    fn trivial_torus_needs_no_staggering() {
        assert!(forward_transfers(1).unwrap().is_empty());
        assert!(reverse_transfers(1).unwrap().is_empty());
        assert!(transfers(0, forward_a, forward_b).is_err());
    }
}
