//! Error type shared by the matrix substrate.

use std::fmt;

/// Errors produced by matrix construction and blocked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A blocked decomposition was requested with a block order that does
    /// not evenly divide the matrix order. The paper always chooses block
    /// orders that divide the matrix order (e.g. 128 | 1536), and keeping
    /// that restriction keeps every carrier's payload uniform.
    IndivisibleBlock {
        /// Matrix order.
        n: usize,
        /// Requested algorithmic block order.
        block: usize,
    },
    /// A zero dimension or zero PE count was supplied.
    Degenerate(&'static str),
    /// An operation that needs real data was applied to a phantom block.
    PhantomData(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndivisibleBlock { n, block } => write!(
                f,
                "block order {block} does not divide matrix order {n}"
            ),
            MatrixError::Degenerate(what) => write!(f, "degenerate argument: {what}"),
            MatrixError::PhantomData(op) => {
                write!(f, "operation `{op}` requires real block data, got phantom")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("gemm") && s.contains("2x3") && s.contains("4x5"));

        let e = MatrixError::IndivisibleBlock { n: 100, block: 7 };
        assert!(e.to_string().contains("7") && e.to_string().contains("100"));

        let e = MatrixError::PhantomData("to_matrix");
        assert!(e.to_string().contains("to_matrix"));
    }
}
