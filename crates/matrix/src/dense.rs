//! Row-major dense `f64` matrices.

use crate::error::MatrixError;
use crate::kernel;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// This is the workhorse value type of the reproduction: full matrices in
/// examples and tests, and individual *algorithmic blocks* inside
/// [`crate::BlockedMatrix`]. It deliberately stays simple — contiguous
/// storage, no strides — because every distributed algorithm in the paper
/// moves whole blocks.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// Returns an error when the buffer length does not match the shape.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Size of the stored data in bytes — the cost a migrating computation
    /// pays to carry this matrix as an agent variable.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Set every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy the `rows x cols` sub-matrix whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the requested window exceeds the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "submatrix out of bounds");
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + cols];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Write `block` into this matrix with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for i in 0..block.rows {
            let dst_start = (r0 + i) * self.cols + c0;
            self.data[dst_start..dst_start + block.cols].copy_from_slice(block.row(i));
        }
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Plain triple-loop product `self * rhs` in the paper's Figure 2 order
    /// (i, j, k with a scalar accumulator). Used as the correctness oracle.
    pub fn multiply_naive(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "multiply_naive",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut c = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut t = 0.0;
                for k in 0..self.cols {
                    t += self[(i, k)] * rhs[(k, j)];
                }
                c[(i, j)] = t;
            }
        }
        Ok(c)
    }

    /// Cache-friendly product `self * rhs` using the i-k-j kernel.
    ///
    /// This is the summation order every distributed implementation in this
    /// repository uses inside a block, so block algorithms reproduce its
    /// results bit-for-bit when their block order equals the matrix order.
    pub fn multiply(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "multiply",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut c = Matrix::zeros(self.rows, rhs.cols);
        kernel::gemm_acc(
            &mut c.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(c)
    }

    /// `self += rhs` element-wise.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<(), MatrixError> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Largest absolute element-wise difference `max |self - rhs|`.
    ///
    /// Returns `f64::INFINITY` when the shapes differ, which makes it safe
    /// to use directly in assertions.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        if self.shape() != rhs.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_from_fn() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }

        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as f64);
        let id = Matrix::identity(4);
        assert_eq!(a.multiply(&id).unwrap(), a);
        assert_eq!(id.multiply(&a).unwrap(), a);
    }

    #[test]
    fn naive_and_kernel_products_agree() {
        let a = Matrix::from_fn(5, 7, |i, j| (i as f64) - 0.5 * j as f64);
        let b = Matrix::from_fn(7, 3, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let c1 = a.multiply_naive(&b).unwrap();
        let c2 = a.multiply(&b).unwrap();
        assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    #[test]
    fn multiply_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.multiply(&b),
            Err(MatrixError::ShapeMismatch { .. })
        ));
        assert!(a.multiply_naive(&b).is_err());
    }

    #[test]
    fn submatrix_roundtrip() {
        let a = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let blk = a.submatrix(2, 3, 2, 2);
        assert_eq!(blk[(0, 0)], 15.0);
        assert_eq!(blk[(1, 1)], 22.0);

        let mut b = Matrix::zeros(6, 6);
        b.set_submatrix(2, 3, &blk);
        assert_eq!(b[(2, 3)], 15.0);
        assert_eq!(b[(3, 4)], 22.0);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 31 + j * 7) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn add_assign_and_diff() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        a.add_assign(&b).unwrap();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 1)], 3.0);
        assert_eq!(a.max_abs_diff(&a), 0.0);
        assert_eq!(a.max_abs_diff(&Matrix::zeros(3, 3)), f64::INFINITY);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_reflects_payload() {
        assert_eq!(Matrix::zeros(4, 8).bytes(), 4 * 8 * 8);
    }
}
