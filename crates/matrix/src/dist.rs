//! Mapping blocks onto PE grids.
//!
//! The paper's experiments use a 1-D PE network (Tables 1 and 2) and a 2-D
//! PE network (Tables 3 and 4). Data placement is by *distribution block*:
//! a PE owns a contiguous band of block rows and/or block columns. The
//! ScaLAPACK stand-in additionally uses a block-cyclic map.

use crate::error::MatrixError;

/// A 2-D grid of PEs with row-major node numbering, matching the paper's
/// `(HnodeID, VnodeID)` identifiers: `HnodeID` grows west→east (columns),
/// `VnodeID` grows north→south (rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid2D {
    /// Number of PE rows (extent of `VnodeID`).
    pub rows: usize,
    /// Number of PE columns (extent of `HnodeID`).
    pub cols: usize,
}

impl Grid2D {
    /// Construct a grid; both extents must be nonzero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, MatrixError> {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::Degenerate("grid extent is zero"));
        }
        Ok(Grid2D { rows, cols })
    }

    /// A 1-D west→east network of `pes` PEs (a single grid row).
    pub fn line(pes: usize) -> Result<Self, MatrixError> {
        Grid2D::new(1, pes)
    }

    /// Total number of PEs.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the grid has exactly one PE.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat node id of PE `(v, h)` — `v` is the row (`VnodeID`), `h` the
    /// column (`HnodeID`).
    ///
    /// # Panics
    /// Panics when the coordinate is outside the grid.
    pub fn node(&self, v: usize, h: usize) -> usize {
        assert!(v < self.rows && h < self.cols, "PE coordinate out of grid");
        v * self.cols + h
    }

    /// Inverse of [`Grid2D::node`]: `(VnodeID, HnodeID)` of a flat id.
    ///
    /// # Panics
    /// Panics when the id is outside the grid.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.len(), "node id out of grid");
        (node / self.cols, node % self.cols)
    }
}

/// Contiguous banding of `nb` block indices over `pes` PEs
/// (`pes` must divide `nb`): PE `p` owns block indices
/// `p*nb/pes .. (p+1)*nb/pes`. This is the paper's distribution-block map
/// in one dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dist1D {
    nb: usize,
    pes: usize,
    per_pe: usize,
}

impl Dist1D {
    /// Build a banded map of `nb` blocks over `pes` PEs.
    pub fn new(nb: usize, pes: usize) -> Result<Self, MatrixError> {
        if nb == 0 || pes == 0 {
            return Err(MatrixError::Degenerate("empty distribution"));
        }
        if !nb.is_multiple_of(pes) {
            return Err(MatrixError::IndivisibleBlock { n: nb, block: pes });
        }
        Ok(Dist1D {
            nb,
            pes,
            per_pe: nb / pes,
        })
    }

    /// Number of block indices.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of PEs.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Blocks owned by each PE.
    pub fn per_pe(&self) -> usize {
        self.per_pe
    }

    /// Owning PE of block index `b`.
    ///
    /// # Panics
    /// Panics when `b >= nb`.
    pub fn pe_of(&self, b: usize) -> usize {
        assert!(b < self.nb, "block index out of range");
        b / self.per_pe
    }

    /// The range of block indices owned by PE `p`.
    ///
    /// # Panics
    /// Panics when `p >= pes`.
    pub fn blocks_of(&self, p: usize) -> std::ops::Range<usize> {
        assert!(p < self.pes, "PE index out of range");
        p * self.per_pe..(p + 1) * self.per_pe
    }
}

/// Two independent banded maps: block rows over PE-grid rows and block
/// columns over PE-grid columns. `owner(bi, bj)` is the PE holding
/// distribution cell containing algorithmic block `(bi, bj)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dist2D {
    /// Banding of block rows over grid rows.
    pub row: Dist1D,
    /// Banding of block columns over grid columns.
    pub col: Dist1D,
}

impl Dist2D {
    /// Build a 2-D banded map of `nb x nb` blocks over `grid`.
    pub fn new(nb: usize, grid: Grid2D) -> Result<Self, MatrixError> {
        Ok(Dist2D {
            row: Dist1D::new(nb, grid.rows)?,
            col: Dist1D::new(nb, grid.cols)?,
        })
    }

    /// PE grid coordinate `(v, h)` owning block `(bi, bj)`.
    pub fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        (self.row.pe_of(bi), self.col.pe_of(bj))
    }
}

/// Block-cyclic 2-D map, as used by ScaLAPACK: block `(bi, bj)` lives on
/// PE `(bi mod grid.rows, bj mod grid.cols)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CyclicDist2D {
    /// The PE grid blocks are wrapped onto.
    pub grid: Grid2D,
}

impl CyclicDist2D {
    /// PE grid coordinate owning block `(bi, bj)`.
    pub fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        (bi % self.grid.rows, bj % self.grid.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_node_coords_roundtrip() {
        let g = Grid2D::new(3, 4).unwrap();
        assert_eq!(g.len(), 12);
        for v in 0..3 {
            for h in 0..4 {
                assert_eq!(g.coords(g.node(v, h)), (v, h));
            }
        }
        assert!(Grid2D::new(0, 3).is_err());
    }

    #[test]
    fn line_grid() {
        let g = Grid2D::line(5).unwrap();
        assert_eq!((g.rows, g.cols), (1, 5));
        assert_eq!(g.node(0, 3), 3);
    }

    #[test]
    #[should_panic(expected = "PE coordinate out of grid")]
    fn grid_node_bounds() {
        Grid2D::new(2, 2).unwrap().node(2, 0);
    }

    #[test]
    fn dist1d_banding() {
        let d = Dist1D::new(12, 3).unwrap();
        assert_eq!(d.per_pe(), 4);
        assert_eq!(d.pe_of(0), 0);
        assert_eq!(d.pe_of(3), 0);
        assert_eq!(d.pe_of(4), 1);
        assert_eq!(d.pe_of(11), 2);
        assert_eq!(d.blocks_of(1), 4..8);
        assert!(Dist1D::new(10, 3).is_err());
        assert!(Dist1D::new(0, 3).is_err());
    }

    #[test]
    fn dist1d_partition_is_exact() {
        let d = Dist1D::new(24, 8).unwrap();
        let mut owned = [0usize; 24];
        for p in 0..8 {
            for b in d.blocks_of(p) {
                owned[b] += 1;
                assert_eq!(d.pe_of(b), p);
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn dist2d_owner() {
        let g = Grid2D::new(3, 3).unwrap();
        let d = Dist2D::new(6, g).unwrap();
        assert_eq!(d.owner(0, 5), (0, 2));
        assert_eq!(d.owner(4, 3), (2, 1));
    }

    #[test]
    fn cyclic_owner_wraps() {
        let d = CyclicDist2D {
            grid: Grid2D::new(2, 3).unwrap(),
        };
        assert_eq!(d.owner(4, 7), (0, 1));
        assert_eq!(d.owner(5, 5), (1, 2));
    }
}
