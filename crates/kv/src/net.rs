//! Wire codecs for the key-value workload, and [`register_net`], which
//! installs the decode half of every kv messenger and store value into
//! the global type-tag registry.
//!
//! Operation streams are *never* serialized: a carrier's ops are a pure
//! function of `(KvConfig, batch)`, so the wire snapshot carries the
//! config and regenerates them on the receiving PE. What does travel is
//! exactly what the NavP model says travels — the agent variables: the
//! accumulated result buffer, in-flight scan hits, and the cursors.

use std::time::Duration;

use navp_net::codec::{DecodeError, WireReader, WireWriter};
use navp_net::registry::{register_messenger, register_value, ValueCodec};
use navp_sim::store::StoreValue;

use crate::carrier::{BatchCarrier, BatchResult, Compactor, DscKvCarrier, ScanState};
use crate::config::KvConfig;
use crate::shard::Shard;
use crate::workload::batch_ops;

/// Registry tag of [`BatchCarrier`].
pub const BATCH_TAG: &str = "kv.Batch";
/// Registry tag of [`DscKvCarrier`].
pub const DSC_TAG: &str = "kv.Dsc";
/// Registry tag of [`Compactor`].
pub const COMPACTOR_TAG: &str = "kv.Compactor";
/// Registry tag of [`Shard`].
pub const SHARD_TAG: &str = "kv.Shard";
/// Registry tag of [`BatchResult`].
pub const RESULT_TAG: &str = "kv.Res";

pub(crate) fn put_cfg(w: &mut WireWriter, cfg: &KvConfig) {
    w.put_usize(cfg.ops);
    w.put_usize(cfg.batches);
    w.put_usize(cfg.value_len);
    w.put_u64(cfg.keys_per_batch);
    w.put_usize(cfg.scan_limit);
    w.put_u64(cfg.seed);
    match cfg.watchdog {
        Some(wd) => {
            w.put_bool(true);
            w.put_u64(wd.as_nanos() as u64);
        }
        None => w.put_bool(false),
    }
    w.put_bool(cfg.trace);
    w.put_bool(cfg.metrics);
}

/// Hard caps on decoded workload sizes. Ops are *regenerated* from
/// the config on decode, so without a ceiling a corrupt (or hostile)
/// frame with a huge-but-self-consistent `ops` would make the decoder
/// do unbounded work and allocation before any run starts. Orders of
/// magnitude above any real configuration, orders below any danger.
const MAX_WIRE_OPS: usize = 1 << 24;
/// Companion cap for per-value payload bytes.
const MAX_WIRE_VALUE_LEN: usize = 1 << 20;

pub(crate) fn get_cfg(r: &mut WireReader<'_>) -> Result<KvConfig, DecodeError> {
    let ops = r.get_usize()?;
    let batches = r.get_usize()?;
    if ops == 0 || batches == 0 || batches > ops || ops > MAX_WIRE_OPS {
        return Err(DecodeError::BadValue("kv workload shape"));
    }
    let value_len = r.get_usize()?;
    if value_len == 0 || value_len > MAX_WIRE_VALUE_LEN {
        return Err(DecodeError::BadValue("kv value length"));
    }
    let keys_per_batch = r.get_u64()?;
    if keys_per_batch == 0 {
        return Err(DecodeError::BadValue("kv keyspace"));
    }
    let scan_limit = r.get_usize()?;
    let seed = r.get_u64()?;
    let watchdog = if r.get_bool()? {
        Some(Duration::from_nanos(r.get_u64()?))
    } else {
        None
    };
    Ok(KvConfig {
        ops,
        batches,
        value_len,
        keys_per_batch,
        scan_limit,
        seed,
        watchdog,
        trace: r.get_bool()?,
        metrics: r.get_bool()?,
    })
}

fn put_scan(w: &mut WireWriter, st: &Option<ScanState>) {
    match st {
        Some(s) => {
            w.put_bool(true);
            w.put_u64(s.start);
            w.put_u64(s.end);
            w.put_usize(s.limit);
            w.put_usize(s.next_pe);
            w.put_u32(s.acc.len() as u32);
            for &(k, d) in &s.acc {
                w.put_u64(k);
                w.put_u64(d);
            }
        }
        None => w.put_bool(false),
    }
}

fn get_scan(r: &mut WireReader<'_>) -> Result<Option<ScanState>, DecodeError> {
    if !r.get_bool()? {
        return Ok(None);
    }
    let start = r.get_u64()?;
    let end = r.get_u64()?;
    let limit = r.get_usize()?;
    let next_pe = r.get_usize()?;
    let n = r.get_u32()?;
    if r.remaining() < n as usize * 16 {
        return Err(DecodeError::BadLength {
            declared: n as u64 * 16,
            available: r.remaining() as u64,
        });
    }
    let mut acc = Vec::with_capacity(n as usize);
    for _ in 0..n {
        acc.push((r.get_u64()?, r.get_u64()?));
    }
    Ok(Some(ScanState {
        start,
        end,
        limit,
        next_pe,
        acc,
    }))
}

pub(crate) fn encode_batch_carrier(c: &BatchCarrier) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_cfg(&mut w, &c.cfg);
    w.put_usize(c.pes);
    w.put_usize(c.batch);
    w.put_usize(c.home);
    w.put_usize(c.pos);
    w.put_bytes(&c.results);
    w.put_u64(c.scanned);
    put_scan(&mut w, &c.scan);
    w.put_bool(c.deposited);
    w.into_vec()
}

pub(crate) fn decode_batch_carrier(r: &mut WireReader<'_>) -> Result<BatchCarrier, DecodeError> {
    let cfg = get_cfg(r)?;
    let pes = r.get_usize()?;
    let batch = r.get_usize()?;
    if pes == 0 || batch >= cfg.batches {
        return Err(DecodeError::BadValue("kv carrier shape"));
    }
    let home = r.get_usize()?;
    if home >= pes {
        return Err(DecodeError::BadValue("kv carrier home"));
    }
    let ops = batch_ops(&cfg, batch);
    let pos = r.get_usize()?;
    if pos > ops.len() {
        return Err(DecodeError::BadValue("kv carrier cursor"));
    }
    Ok(BatchCarrier {
        cfg,
        pes,
        batch,
        home,
        ops,
        pos,
        results: r.get_bytes()?,
        scanned: r.get_u64()?,
        scan: get_scan(r)?,
        deposited: r.get_bool()?,
    })
}

pub(crate) fn encode_dsc_carrier(c: &DscKvCarrier) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_cfg(&mut w, &c.cfg);
    w.put_usize(c.pes);
    w.put_usize(c.home);
    w.put_usize(c.next_batch);
    match &c.inner {
        Some(inner) => {
            w.put_bool(true);
            w.put_bytes(&encode_batch_carrier(inner));
        }
        None => w.put_bool(false),
    }
    w.into_vec()
}

pub(crate) fn decode_dsc_carrier(r: &mut WireReader<'_>) -> Result<DscKvCarrier, DecodeError> {
    let cfg = get_cfg(r)?;
    let pes = r.get_usize()?;
    let home = r.get_usize()?;
    if pes == 0 || home >= pes {
        return Err(DecodeError::BadValue("kv dsc shape"));
    }
    let next_batch = r.get_usize()?;
    if next_batch > cfg.batches {
        return Err(DecodeError::BadValue("kv dsc cursor"));
    }
    let inner = if r.get_bool()? {
        let bytes = r.get_bytes()?;
        let mut ir = WireReader::new(&bytes);
        Some(decode_batch_carrier(&mut ir)?)
    } else {
        None
    };
    Ok(DscKvCarrier {
        cfg,
        pes,
        home,
        next_batch,
        inner,
    })
}

pub(crate) fn encode_compactor(c: &Compactor) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_usize(c.pes);
    w.put_usize(c.rounds);
    w.put_usize(c.cursor);
    w.put_u64(c.reclaimed);
    w.into_vec()
}

pub(crate) fn decode_compactor(r: &mut WireReader<'_>) -> Result<Compactor, DecodeError> {
    let pes = r.get_usize()?;
    let rounds = r.get_usize()?;
    let cursor = r.get_usize()?;
    if pes == 0 || cursor >= pes {
        return Err(DecodeError::BadValue("kv compactor cursor"));
    }
    Ok(Compactor {
        pes,
        rounds,
        cursor,
        reclaimed: r.get_u64()?,
    })
}

pub(crate) fn put_shard(w: &mut WireWriter, s: &Shard) {
    w.put_u64(s.compactions());
    let log = s.log_records();
    w.put_u32(log.len() as u32);
    for (key, rec) in log {
        w.put_u64(*key);
        match rec {
            Some(v) => {
                w.put_bool(true);
                w.put_bytes(v);
            }
            None => w.put_bool(false),
        }
    }
}

pub(crate) fn get_shard(r: &mut WireReader<'_>) -> Result<Shard, DecodeError> {
    let compactions = r.get_u64()?;
    let n = r.get_u32()? as usize;
    // Each record costs at least key + presence byte; reject declared
    // lengths the buffer cannot possibly hold before allocating.
    if r.remaining() < n * 9 {
        return Err(DecodeError::BadLength {
            declared: n as u64 * 9,
            available: r.remaining() as u64,
        });
    }
    let mut log = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.get_u64()?;
        let rec = if r.get_bool()? {
            Some(r.get_bytes()?)
        } else {
            None
        };
        log.push((key, rec));
    }
    Ok(Shard::replay(log, compactions))
}

/// Install the kv workload's wire codecs: the three messengers plus the
/// `kv.Shard` / `kv.Res` store-value codecs. Idempotent; the itinerary
/// launcher the pipe/phase steps use is `mm.Launcher`, installed by
/// [`navp_mm::register_net`], which this calls too — one call makes a
/// process able to host the whole workload.
pub fn register_net() {
    navp_mm::register_net();
    register_messenger(BATCH_TAG, |r| Ok(Box::new(decode_batch_carrier(r)?)));
    register_messenger(DSC_TAG, |r| Ok(Box::new(decode_dsc_carrier(r)?)));
    register_messenger(COMPACTOR_TAG, |r| Ok(Box::new(decode_compactor(r)?)));
    register_value(ValueCodec {
        tag: SHARD_TAG,
        try_encode: |v| {
            v.as_any().downcast_ref::<Shard>().map(|s| {
                let mut w = WireWriter::new();
                put_shard(&mut w, s);
                w.into_vec()
            })
        },
        decode: |r| Ok(Box::new(get_shard(r)?) as Box<dyn StoreValue>),
    });
    register_value(ValueCodec {
        tag: RESULT_TAG,
        try_encode: |v| {
            v.as_any().downcast_ref::<BatchResult>().map(|res| {
                let mut w = WireWriter::new();
                w.put_bytes(&res.bytes);
                w.put_u64(res.ops);
                w.put_u64(res.scanned);
                w.into_vec()
            })
        },
        decode: |r| {
            let res = BatchResult {
                bytes: r.get_bytes()?,
                ops: r.get_u64()?,
                scanned: r.get_u64()?,
            };
            Ok(Box::new(res) as Box<dyn StoreValue>)
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp::Messenger;
    use navp_net::registry::{decode_messenger, decode_value, encode_messenger, encode_value};

    #[test]
    fn messengers_round_trip_through_the_registry() {
        register_net();
        let cfg = KvConfig::new(60, 3);
        let mut batch = BatchCarrier::new(cfg, 4, 1, 0);
        batch.pos = 2;
        batch.results = vec![1, 2, 3];
        batch.scan = Some(ScanState {
            start: 5,
            end: 10,
            limit: 4,
            next_pe: 2,
            acc: vec![(6, 77), (7, 88)],
        });
        let wire = encode_messenger(&batch).expect("encode batch");
        let back = decode_messenger(&wire).expect("decode batch");
        let snap = back.wire_snapshot().expect("re-snapshot");
        assert_eq!(snap.tag, BATCH_TAG);
        assert_eq!(snap.bytes, encode_batch_carrier(&batch));

        let mut dsc = DscKvCarrier::new(cfg, 4, 0);
        dsc.next_batch = 2;
        dsc.inner = Some(BatchCarrier::new(cfg, 4, 1, 0));
        let wire = encode_messenger(&dsc).expect("encode dsc");
        let back = decode_messenger(&wire).expect("decode dsc");
        assert_eq!(back.wire_snapshot().unwrap().bytes, encode_dsc_carrier(&dsc));

        let comp = Compactor::new(4, 2);
        let wire = encode_messenger(&comp).expect("encode compactor");
        let back = decode_messenger(&wire).expect("decode compactor");
        assert_eq!(back.wire_snapshot().unwrap().bytes, encode_compactor(&comp));
    }

    #[test]
    fn shard_and_result_values_round_trip() {
        register_net();
        let mut shard = Shard::new();
        for k in 0..32u64 {
            shard.put(k, vec![k as u8; 24]);
        }
        for k in 0..8u64 {
            shard.delete(k * 3);
        }
        let (tag, bytes) = encode_value(&shard).expect("encode shard");
        assert_eq!(tag, SHARD_TAG);
        let back = decode_value(tag, &bytes).expect("decode shard");
        assert_eq!(back.as_any().downcast_ref::<Shard>(), Some(&shard));

        let res = BatchResult {
            bytes: vec![9, 8, 7],
            ops: 12,
            scanned: 3,
        };
        let (tag, bytes) = encode_value(&res).expect("encode result");
        assert_eq!(tag, RESULT_TAG);
        let back = decode_value(tag, &bytes).expect("decode result");
        assert_eq!(back.as_any().downcast_ref::<BatchResult>(), Some(&res));
    }

    #[test]
    fn decoders_reject_malformed_shapes() {
        let cfg = KvConfig::new(10, 2);
        let mut w = WireWriter::new();
        put_cfg(&mut w, &cfg);
        w.put_usize(4); // pes
        w.put_usize(9); // batch out of range
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert!(decode_batch_carrier(&mut r).is_err());
    }
}
