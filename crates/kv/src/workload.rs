//! Deterministic workload generation and the sequential reference model.
//!
//! Every operation is a pure function of `(KvConfig, batch index)`, via a
//! SplitMix64 stream seeded per batch. Two invariants make the whole
//! journey bitwise-reproducible:
//!
//! 1. **Disjoint key regions.** Batch `b` only ever touches keys in
//!    `[region_base(b), region_base(b) + keys_per_batch)`, and scans are
//!    clipped to that region. Operations from different batches therefore
//!    commute, so any interleaving the executors produce — one migrating
//!    messenger, a pipeline of them, or phase-shifted entry points with a
//!    compactor roving underneath — yields the same results.
//! 2. **Ordered merge.** Within a batch, operations execute strictly in
//!    generation order, and per-batch result buffers are concatenated in
//!    batch order by the collector.

use std::collections::BTreeMap;

use navp::durable::fnv1a;
use navp::SplitMix64;
use navp_net::codec::WireWriter;

use crate::config::KvConfig;

/// Uniform value in `[0, n)` (`n` clamped to at least 1) off the fault
/// machinery's [`SplitMix64`] — the workload shares the runtime's PRNG
/// rather than growing a private one.
fn below(rng: &mut SplitMix64, n: u64) -> u64 {
    rng.next_u64() % n.max(1)
}

/// One key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Write `value` under `key`.
    Put {
        /// Target key.
        key: u64,
        /// Payload.
        value: Vec<u8>,
    },
    /// Read the value under `key`.
    Get {
        /// Target key.
        key: u64,
    },
    /// Remove `key`.
    Delete {
        /// Target key.
        key: u64,
    },
    /// Collect up to `limit` live entries with key in `[start, end)`,
    /// ascending. `end` is always the op's batch region end.
    Scan {
        /// First key of the range (inclusive).
        start: u64,
        /// End of the range (exclusive).
        end: u64,
        /// Result cap.
        limit: usize,
    },
}

impl Op {
    /// The key deciding which PE serves this op. Scans start their tour
    /// at PE 0 regardless, so they report their range start here only
    /// for labeling.
    pub fn key(&self) -> u64 {
        match self {
            Op::Put { key, .. } | Op::Get { key } | Op::Delete { key } => *key,
            Op::Scan { start, .. } => *start,
        }
    }
}

/// First key of batch `b`'s private region. Regions are `2^32` apart so
/// they can never collide for any practical `keys_per_batch`.
pub fn region_base(b: usize) -> u64 {
    ((b as u64) + 1) << 32
}

/// The PE owning `key`: a SplitMix64-style finalizer over the key,
/// reduced mod `pes`. Hash (not range) partitioning, so every batch's
/// region spreads across the whole mesh.
pub fn owner_of(key: u64, pes: usize) -> usize {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % pes.max(1)
}

/// Generate batch `b`'s operation stream. Mix: ~50% put, ~20% get,
/// ~15% delete, ~15% scan, with gets/deletes biased toward keys already
/// written so hits dominate misses.
pub fn batch_ops(cfg: &KvConfig, b: usize) -> Vec<Op> {
    assert!(b < cfg.batches, "batch {b} out of range");
    let mut rng = SplitMix64::new(
        cfg.seed ^ (b as u64).wrapping_mul(0xA076_1D64_78BD_642F),
    );
    let base = region_base(b);
    let end = base + cfg.keys_per_batch;
    let len = cfg.batch_len(b);
    let mut written: Vec<u64> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = below(&mut rng, 100);
        let op = if roll < 50 || written.is_empty() {
            let key = base + below(&mut rng, cfg.keys_per_batch);
            let mut value = vec![0u8; cfg.value_len];
            for chunk in value.chunks_mut(8) {
                let w = rng.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&w[..n]);
            }
            written.push(key);
            Op::Put { key, value }
        } else if roll < 70 {
            let key = if below(&mut rng, 10) < 7 {
                written[below(&mut rng, written.len() as u64) as usize]
            } else {
                base + below(&mut rng, cfg.keys_per_batch)
            };
            Op::Get { key }
        } else if roll < 85 {
            let key = if below(&mut rng, 10) < 7 {
                written[below(&mut rng, written.len() as u64) as usize]
            } else {
                base + below(&mut rng, cfg.keys_per_batch)
            };
            Op::Delete { key }
        } else {
            let start = base + below(&mut rng, cfg.keys_per_batch);
            Op::Scan {
                start,
                end,
                limit: cfg.scan_limit,
            }
        };
        ops.push(op);
    }
    ops
}

/// Result-record tags in the per-batch result buffer.
pub mod result_tag {
    /// A put's record: key + prev-existed flag.
    pub const PUT: u8 = 1;
    /// A get's record: key + found flag + value if found.
    pub const GET: u8 = 2;
    /// A delete's record: key + existed flag.
    pub const DELETE: u8 = 3;
    /// A scan's record: start + count + (key, value-digest) pairs.
    pub const SCAN: u8 = 4;
}

/// Append a put result to a batch's result buffer.
pub fn write_put_result(w: &mut WireWriter, key: u64, prev: bool) {
    w.put_u8(result_tag::PUT);
    w.put_u64(key);
    w.put_bool(prev);
}

/// Append a get result to a batch's result buffer.
pub fn write_get_result(w: &mut WireWriter, key: u64, value: Option<&Vec<u8>>) {
    w.put_u8(result_tag::GET);
    w.put_u64(key);
    w.put_bool(value.is_some());
    if let Some(v) = value {
        w.put_bytes(v);
    }
}

/// Append a delete result to a batch's result buffer.
pub fn write_delete_result(w: &mut WireWriter, key: u64, existed: bool) {
    w.put_u8(result_tag::DELETE);
    w.put_u64(key);
    w.put_bool(existed);
}

/// Append a scan result to a batch's result buffer. Entries must
/// already be in ascending key order; values are recorded as FNV-1a
/// digests to keep messenger payloads proportional to hits, not data.
pub fn write_scan_result(w: &mut WireWriter, start: u64, entries: &[(u64, u64)]) {
    w.put_u8(result_tag::SCAN);
    w.put_u64(start);
    w.put_u32(entries.len() as u32);
    for &(k, digest) in entries {
        w.put_u64(k);
        w.put_u64(digest);
    }
}

/// What a whole run must produce: the concatenated per-batch result
/// buffers followed by a digest of the merged live store contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvProduct {
    /// Per-batch result buffers, concatenated in batch order.
    pub results: Vec<u8>,
    /// FNV-1a over all live `(key, value)` pairs across every shard,
    /// merged in global key order.
    pub store_digest: u64,
}

impl KvProduct {
    /// Canonical byte serialization — the bitwise-parity oracle that
    /// tests, the fuzzer, and the job service checksum all compare.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.results.clone();
        out.extend_from_slice(&self.store_digest.to_le_bytes());
        out
    }

    /// FNV-1a checksum of [`KvProduct::to_bytes`].
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }
}

/// Execute the whole workload sequentially against one flat map — the
/// independent oracle the navigational runs are verified against. This
/// deliberately shares no code with [`Shard`](crate::shard::Shard): no
/// log, no tombstones, no compaction, just a `BTreeMap`.
pub fn expected(cfg: &KvConfig) -> KvProduct {
    let mut map: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut w = WireWriter::new();
    for b in 0..cfg.batches {
        for op in batch_ops(cfg, b) {
            match op {
                Op::Put { key, value } => {
                    let prev = map.insert(key, value).is_some();
                    write_put_result(&mut w, key, prev);
                }
                Op::Get { key } => {
                    write_get_result(&mut w, key, map.get(&key));
                }
                Op::Delete { key } => {
                    let existed = map.remove(&key).is_some();
                    write_delete_result(&mut w, key, existed);
                }
                Op::Scan { start, end, limit } => {
                    let entries: Vec<(u64, u64)> = map
                        .range(start..end)
                        .take(limit)
                        .map(|(&k, v)| (k, fnv1a(v)))
                        .collect();
                    write_scan_result(&mut w, start, &entries);
                }
            }
        }
    }
    let mut digest_buf = Vec::new();
    for (k, v) in &map {
        digest_buf.extend_from_slice(&k.to_le_bytes());
        digest_buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        digest_buf.extend_from_slice(v);
    }
    KvProduct {
        results: w.into_vec(),
        store_digest: fnv1a(&digest_buf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = KvConfig::new(200, 4);
        assert_eq!(batch_ops(&cfg, 2), batch_ops(&cfg, 2));
        assert_ne!(batch_ops(&cfg, 1), batch_ops(&cfg, 2));
        let other = cfg.with_seed(7);
        assert_ne!(batch_ops(&cfg, 1), batch_ops(&other, 1));
    }

    #[test]
    fn regions_are_disjoint_and_scans_clipped() {
        let cfg = KvConfig::new(400, 4);
        for b in 0..cfg.batches {
            let base = region_base(b);
            let end = base + cfg.keys_per_batch;
            for op in batch_ops(&cfg, b) {
                match op {
                    Op::Scan { start, end: e, .. } => {
                        assert!(start >= base && start < end);
                        assert_eq!(e, end);
                    }
                    other => {
                        let k = other.key();
                        assert!(k >= base && k < end, "key {k} escapes region");
                    }
                }
            }
        }
    }

    #[test]
    fn owner_spreads_keys() {
        let cfg = KvConfig::new(300, 3);
        let mut seen = [0usize; 4];
        for b in 0..cfg.batches {
            for op in batch_ops(&cfg, b) {
                if !matches!(op, Op::Scan { .. }) {
                    seen[owner_of(op.key(), 4)] += 1;
                }
            }
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "hash partitioning left a PE empty: {seen:?}"
        );
    }

    #[test]
    fn expected_is_reproducible() {
        let cfg = KvConfig::new(150, 3);
        let a = expected(&cfg);
        let b = expected(&cfg);
        assert_eq!(a, b);
        assert!(!a.results.is_empty());
    }
}
