//! Problem definition for the key-value workload.
//!
//! A [`KvConfig`] pins down the *entire* workload — every operation in
//! every batch is a pure function of the config — so the same run can be
//! regenerated on any PE, any executor, or any process without shipping
//! the operation stream over the wire. This mirrors how the matrix
//! workload derives its operands from `(seed, n)` rather than
//! serializing matrices into every messenger.

use std::time::Duration;

/// Configuration of one key-value run: a seeded stream of
/// put/get/scan/delete operations split into client batches over a
/// hash-partitioned keyspace.
///
/// Determinism contract: two runs with equal configs execute the exact
/// same operations and (because batches own disjoint key regions)
/// produce bitwise-identical results on every executor and every
/// journey step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Total number of operations across all batches.
    pub ops: usize,
    /// Number of client batches the operations are split into. Each
    /// batch owns a disjoint key region so concurrent batches commute.
    pub batches: usize,
    /// Payload size in bytes of each value written by a put.
    pub value_len: usize,
    /// Number of distinct keys each batch draws from.
    pub keys_per_batch: u64,
    /// Maximum number of entries a scan returns.
    pub scan_limit: usize,
    /// Root seed of the workload generator.
    pub seed: u64,
    /// Per-PE watchdog for the real executors (`None` = executor
    /// default, overridable via `NAVP_WATCHDOG_MS`).
    pub watchdog: Option<Duration>,
    /// Record a wall-clock trace on the real executors.
    pub trace: bool,
    /// Collect live metrics during the run.
    pub metrics: bool,
}

impl KvConfig {
    /// A workload of `ops` operations in `batches` batches with the
    /// default value size, keyspace, scan limit, and seed.
    pub fn new(ops: usize, batches: usize) -> KvConfig {
        assert!(ops > 0, "workload needs at least one op");
        assert!(batches > 0, "workload needs at least one batch");
        assert!(
            batches <= ops,
            "more batches ({batches}) than ops ({ops})"
        );
        KvConfig {
            ops,
            batches,
            value_len: 32,
            keys_per_batch: 256,
            scan_limit: 16,
            seed: 0x5eed_cafe,
            watchdog: None,
            trace: false,
            metrics: false,
        }
    }

    /// Override the workload seed.
    pub fn with_seed(mut self, seed: u64) -> KvConfig {
        self.seed = seed;
        self
    }

    /// Override the value payload size.
    pub fn with_value_len(mut self, len: usize) -> KvConfig {
        assert!(len > 0, "values must be non-empty");
        self.value_len = len;
        self
    }

    /// Override the per-batch keyspace size.
    pub fn with_keys_per_batch(mut self, keys: u64) -> KvConfig {
        assert!(keys > 0, "keyspace must be non-empty");
        self.keys_per_batch = keys;
        self
    }

    /// Override the scan result cap.
    pub fn with_scan_limit(mut self, limit: usize) -> KvConfig {
        self.scan_limit = limit;
        self
    }

    /// Override the per-PE watchdog used by the real executors.
    pub fn with_watchdog(mut self, timeout: Duration) -> KvConfig {
        self.watchdog = Some(timeout);
        self
    }

    /// Request a wall-clock trace from the real executors.
    pub fn with_trace(mut self, on: bool) -> KvConfig {
        self.trace = on;
        self
    }

    /// Request live metrics collection.
    pub fn with_metrics(mut self, on: bool) -> KvConfig {
        self.metrics = on;
        self
    }

    /// Operations assigned to batch `b`: batch `ops / batches` rounded
    /// so the first `ops % batches` batches take one extra op.
    pub fn batch_len(&self, b: usize) -> usize {
        let base = self.ops / self.batches;
        let extra = self.ops % self.batches;
        base + usize::from(b < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_lengths_sum_to_ops() {
        for (ops, batches) in [(10, 3), (8, 8), (100, 7), (1, 1)] {
            let cfg = KvConfig::new(ops, batches);
            let total: usize = (0..batches).map(|b| cfg.batch_len(b)).sum();
            assert_eq!(total, ops);
        }
    }

    #[test]
    #[should_panic(expected = "more batches")]
    fn more_batches_than_ops_rejected() {
        KvConfig::new(2, 3);
    }
}
