//! `navp-kv`: a second workload proving the NavP journey beyond GEMM.
//!
//! The paper's thesis is a *methodology* — incremental parallelization
//! by distributing data, making the sequential computation migrate to
//! it, then cutting the migrating computation into pipelined, finally
//! phase-shifted, messengers. The matrix case study (`navp-mm`)
//! demonstrates it on a regular, compute-bound kernel. This crate
//! demonstrates the same journey on an *irregular, data-dependent*
//! workload: a log-structured key-value store.
//!
//! * Each PE owns a hash-partitioned [`Shard`](shard::Shard): an
//!   append-only log plus an in-memory index.
//! * Clients are seeded batches of get/put/scan/delete operations
//!   ([`workload`]); a [`BatchCarrier`](carrier::BatchCarrier)
//!   navigates to whichever PE owns each key, mutates locally, and
//!   accumulates results as agent variables.
//! * Background log compaction is a low-priority roving messenger
//!   ([`Compactor`](carrier::Compactor)) that overlaps with serving in
//!   the final journey step.
//!
//! The four steps — [`run_kv_seq`], [`run_kv_dsc`], [`run_kv_pipe`],
//! [`run_kv_phase`] — produce bitwise-identical products across the
//! sim, thread, and networked executors *and across each other*,
//! because batches own disjoint key regions and compaction is
//! observation-neutral. The workload integrates with the rest of the
//! repo end to end: wire codecs ([`net::register_net`]) make it run on
//! real `navp-pe` daemons and inside durable checkpoints, the fault
//! fuzzer drives it via [`fuzz`], and the `navp-serve` job service
//! schedules kv jobs next to GEMM jobs on one mesh.

#![warn(missing_docs)]

pub mod carrier;
pub mod config;
pub mod fuzz;
pub mod net;
pub mod runner;
pub mod shard;
pub mod stages;
pub mod workload;

pub use carrier::{BatchCarrier, BatchResult, Compactor, DscKvCarrier};
pub use config::KvConfig;
pub use fuzz::{fuzz_kv_stage, replay_kv_repro};
pub use net::register_net;
pub use runner::{
    run_kv_dsc, run_kv_net, run_kv_net_faulted, run_kv_phase, run_kv_pipe,
    run_kv_restored_threads, run_kv_seq, run_kv_sim, run_kv_sim_faulted, run_kv_threads,
    run_kv_threads_durable, run_kv_threads_faulted, run_kv_threads_unverified, KvError,
    KvRunOutput, KvStage,
};
pub use shard::Shard;
pub use stages::KvRunStats;
pub use workload::{expected, KvProduct};
