//! The per-PE shard: an append-only log plus an in-memory index.
//!
//! Each PE owns exactly one [`Shard`] holding the keys that hash to it.
//! Writes append a record to the log and repoint the index; deletes
//! append a tombstone; reads and scans go through the index only. The
//! log therefore accumulates dead bytes (overwritten records and
//! tombstones) until [`Shard::compact`] rewrites it from the live index
//! — which changes the log layout but, by construction, never changes
//! anything an operation can observe. That observation-neutrality is
//! what lets the phase-shifted journey step run compaction *concurrently*
//! with serving and still produce bitwise-identical results.

use std::collections::BTreeMap;

use navp::durable::fnv1a;

/// One log record: a key and either a value (put) or `None` (tombstone).
pub type LogRecord = (u64, Option<Vec<u8>>);

/// A log-structured key-value shard. Stored in a PE's `NodeStore` under
/// [`shard_key`](crate::stages::shard_key) and serialized whole for
/// durable checkpoints and networked store distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Shard {
    /// Append-only log; `index` points at the live record per key.
    log: Vec<LogRecord>,
    /// Live keys, each mapped to its latest log position.
    index: BTreeMap<u64, usize>,
    /// Bytes of live records (reachable from the index).
    live_bytes: u64,
    /// Bytes of dead records (overwritten, deleted, and tombstones).
    dead_bytes: u64,
    /// How many times this shard has been compacted.
    compactions: u64,
}

/// Size accounting for one record: key + presence byte + payload.
fn record_bytes(value: Option<&Vec<u8>>) -> u64 {
    9 + value.map_or(0, |v| v.len() as u64)
}

impl Shard {
    /// A fresh, empty shard.
    pub fn new() -> Shard {
        Shard::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the shard holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total log length including dead records and tombstones.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Bytes of live records.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes of dead records awaiting compaction.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// How many times [`Shard::compact`] has run.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Approximate in-memory footprint, used for store accounting.
    pub fn approx_bytes(&self) -> u64 {
        self.live_bytes + self.dead_bytes + (self.index.len() as u64) * 16
    }

    /// Write `value` under `key`. Returns whether the key already
    /// existed (its old record becomes dead).
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> bool {
        let existed = self.retire(key);
        self.live_bytes += record_bytes(Some(&value));
        self.log.push((key, Some(value)));
        self.index.insert(key, self.log.len() - 1);
        existed
    }

    /// Read the live value under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&Vec<u8>> {
        let pos = *self.index.get(&key)?;
        self.log[pos].1.as_ref()
    }

    /// Delete `key`. If it was live, a tombstone is appended (so the
    /// log alone reconstructs the shard) and `true` is returned; a
    /// delete of an absent key leaves the log untouched.
    pub fn delete(&mut self, key: u64) -> bool {
        if !self.retire(key) {
            return false;
        }
        self.index.remove(&key);
        self.dead_bytes += record_bytes(None);
        self.log.push((key, None));
        true
    }

    /// Live entries with `start <= key < end`, ascending, at most
    /// `limit` of them.
    pub fn scan(&self, start: u64, end: u64, limit: usize) -> Vec<(u64, &Vec<u8>)> {
        self.index
            .range(start..end)
            .take(limit)
            .map(|(&k, &pos)| (k, self.log[pos].1.as_ref().expect("index points at value")))
            .collect()
    }

    /// Rewrite the log keeping only live records (in key order) and
    /// drop all dead bytes. Observation-neutral: the index contents —
    /// and therefore every get/scan result and [`Shard::digest`] — are
    /// unchanged. Returns the number of bytes reclaimed.
    pub fn compact(&mut self) -> u64 {
        let reclaimed = self.dead_bytes;
        let mut log = Vec::with_capacity(self.index.len());
        let mut index = BTreeMap::new();
        for (&key, &pos) in &self.index {
            log.push((key, self.log[pos].1.clone()));
            index.insert(key, log.len() - 1);
        }
        self.log = log;
        self.index = index;
        self.dead_bytes = 0;
        self.compactions += 1;
        reclaimed
    }

    /// Iterate live `(key, value)` pairs in key order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u64, &Vec<u8>)> + '_ {
        self.index
            .iter()
            .map(|(&k, &pos)| (k, self.log[pos].1.as_ref().expect("index points at value")))
    }

    /// FNV-1a digest of the live contents in key order. Independent of
    /// log layout, so compaction never changes it.
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::new();
        for (k, v) in self.iter_live() {
            buf.extend_from_slice(&k.to_le_bytes());
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v);
        }
        fnv1a(&buf)
    }

    /// Reconstruct a shard by replaying `log` in order (the decode half
    /// of the wire codec). The index and byte counters are derived, not
    /// trusted, so a decoded shard is always internally consistent.
    pub fn replay(log: Vec<LogRecord>, compactions: u64) -> Shard {
        let mut s = Shard::new();
        for (key, rec) in log {
            match rec {
                Some(v) => {
                    s.put(key, v);
                }
                None => {
                    s.delete(key);
                }
            }
        }
        s.compactions = compactions;
        s
    }

    /// Raw log records, for the wire codec.
    pub fn log_records(&self) -> &[LogRecord] {
        &self.log
    }

    /// Mark the live record under `key` (if any) dead. Returns whether
    /// one existed.
    fn retire(&mut self, key: u64) -> bool {
        if let Some(&pos) = self.index.get(&key) {
            let bytes = record_bytes(self.log[pos].1.as_ref());
            self.live_bytes -= bytes;
            self.dead_bytes += bytes;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let mut s = Shard::new();
        assert!(!s.put(1, vec![10, 11]));
        assert!(s.put(1, vec![12]));
        assert_eq!(s.get(1), Some(&vec![12]));
        assert!(s.delete(1));
        assert!(!s.delete(1));
        assert_eq!(s.get(1), None);
        assert_eq!(s.len(), 0);
        assert!(s.log_len() > 0, "log keeps history until compaction");
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut s = Shard::new();
        for k in [5u64, 1, 9, 3, 7] {
            s.put(k, vec![k as u8]);
        }
        let hits: Vec<u64> = s.scan(2, 8, 2).into_iter().map(|(k, _)| k).collect();
        assert_eq!(hits, vec![3, 5]);
    }

    #[test]
    fn compaction_preserves_digest_and_reclaims() {
        let mut s = Shard::new();
        for k in 0..50u64 {
            s.put(k, vec![0u8; 16]);
        }
        for k in 0..50u64 {
            if k % 3 == 0 {
                s.delete(k);
            } else {
                s.put(k, vec![1u8; 16]);
            }
        }
        let before = s.digest();
        let dead = s.dead_bytes();
        assert!(dead > 0);
        let reclaimed = s.compact();
        assert_eq!(reclaimed, dead);
        assert_eq!(s.dead_bytes(), 0);
        assert_eq!(s.digest(), before);
        assert_eq!(s.log_len(), s.len());
        assert_eq!(s.compactions(), 1);
    }

    #[test]
    fn replay_reconstructs_counters() {
        let mut s = Shard::new();
        for k in 0..20u64 {
            s.put(k, vec![k as u8; 8]);
        }
        for k in 0..10u64 {
            s.delete(k * 2);
        }
        let replayed = Shard::replay(s.log_records().to_vec(), s.compactions());
        assert_eq!(replayed, s);
    }
}
