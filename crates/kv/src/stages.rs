//! The four journey steps as cluster builders, plus the result
//! collector.
//!
//! Mirroring the matrix case study, each step is the *same* workload
//! under a progressively more parallel navigational structure:
//!
//! * **seq** — one PE, one shard, one messenger: the original
//!   sequential program.
//! * **dsc** — distributed sequential computing: the shards spread over
//!   the mesh, but still a single migrating messenger serving batches
//!   in order.
//! * **pipe** — one carrier per batch, all entering at PE 0 through a
//!   [`Launcher`] so batches pipeline through the mesh.
//! * **phase** — carriers enter at phase-shifted home PEs (batch `b` at
//!   PE `b % pes`) so entry itself is spread, with the roving
//!   [`Compactor`] overlapping log compaction with serving.
//!
//! Because batches commute (disjoint key regions) and compaction is
//! observation-neutral, all four steps produce the same
//! [`KvProduct`](crate::workload::KvProduct) — verified bitwise by
//! `tests/kv.rs` across all three executors.

use navp::{Cluster, Key, NodeStore, RunError};
use navp_mm::launch::{Launcher, Stop};

use crate::carrier::{result_key, BatchCarrier, BatchResult, Compactor, DscKvCarrier, SHARD_KEY};
use crate::config::KvConfig;
use crate::shard::Shard;
use crate::workload::KvProduct;

/// Rounds the phase step's compactor makes over the mesh.
pub const COMPACTOR_ROUNDS: usize = 2;

/// Store key of the PE-local shard (re-exported for tests and docs).
pub fn shard_key() -> Key {
    SHARD_KEY
}

/// Seed every PE of `cl` with an empty shard.
fn seed_shards(cl: &mut Cluster, pes: usize) -> Result<(), RunError> {
    for pe in 0..pes {
        let shard = Shard::new();
        let bytes = shard.approx_bytes();
        cl.try_store_mut(pe)?.insert(SHARD_KEY, shard, bytes);
    }
    Ok(())
}

/// The sequential step: one PE holds the whole store, one messenger
/// serves every batch locally. Always a 1-PE cluster regardless of the
/// requested mesh size.
pub fn seq_cluster(cfg: &KvConfig) -> Result<Cluster, RunError> {
    let mut cl = Cluster::new(1)?;
    seed_shards(&mut cl, 1)?;
    cl.try_inject(0, DscKvCarrier::new(*cfg, 1, 0))?;
    Ok(cl)
}

/// The DSC step: shards distributed over `pes` PEs, one migrating
/// messenger serving batches in order, home PE 0.
pub fn dsc_cluster(cfg: &KvConfig, pes: usize) -> Result<Cluster, RunError> {
    let mut cl = Cluster::new(pes)?;
    seed_shards(&mut cl, pes)?;
    cl.try_inject(0, DscKvCarrier::new(*cfg, pes, 0))?;
    Ok(cl)
}

/// The pipelined step: one carrier per batch, all launched at PE 0, so
/// batch `b+1` starts serving while batch `b` is still navigating.
pub fn pipe_cluster(cfg: &KvConfig, pes: usize) -> Result<Cluster, RunError> {
    let mut cl = Cluster::new(pes)?;
    seed_shards(&mut cl, pes)?;
    let carriers: Vec<Box<dyn navp::Messenger>> = (0..cfg.batches)
        .map(|b| Box::new(BatchCarrier::new(*cfg, pes, b, 0)) as Box<dyn navp::Messenger>)
        .collect();
    let launcher = Launcher::new(
        "kv-pipe-launcher",
        vec![Stop {
            pe: 0,
            inject: carriers,
            signal: Vec::new(),
        }],
    );
    let entry = launcher.first_pe();
    cl.try_inject(entry, launcher)?;
    Ok(cl)
}

/// The phase-shifted step: batch `b` enters (and deposits results) at
/// PE `b % pes`, and a [`Compactor`] roves underneath the serving
/// traffic.
pub fn phase_cluster(cfg: &KvConfig, pes: usize) -> Result<Cluster, RunError> {
    let mut cl = Cluster::new(pes)?;
    seed_shards(&mut cl, pes)?;
    let mut stops: Vec<Stop> = (0..cfg.batches)
        .map(|b| Stop::inject_one(b % pes, BatchCarrier::new(*cfg, pes, b, b % pes)))
        .collect();
    stops.push(Stop::inject_one(0, Compactor::new(pes, COMPACTOR_ROUNDS)));
    let launcher = Launcher::new("kv-phase-launcher", stops);
    let entry = launcher.first_pe();
    cl.try_inject(entry, launcher)?;
    Ok(cl)
}

/// Aggregate run statistics derived from the final stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvRunStats {
    /// Operations executed across all batches.
    pub ops: u64,
    /// Entries returned by scans across all batches.
    pub scanned: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Live bytes across all shards at the end of the run.
    pub live_bytes: u64,
    /// Dead (un-compacted) bytes across all shards at the end.
    pub dead_bytes: u64,
}

/// Assemble the run's [`KvProduct`] and [`KvRunStats`] from the final
/// per-PE stores: per-batch result buffers concatenated in batch order
/// (an ordered merge, wherever each batch finished), plus a digest of
/// the union of live shard contents in global key order.
pub fn collect(
    stores: &[NodeStore],
    cfg: &KvConfig,
    res_home: impl Fn(usize) -> usize,
) -> Result<(KvProduct, KvRunStats), String> {
    let mut stats = KvRunStats::default();
    let mut results = Vec::new();
    for b in 0..cfg.batches {
        let home = res_home(b);
        let res: &BatchResult = stores
            .get(home)
            .and_then(|s| s.get(result_key(b)))
            .ok_or_else(|| format!("batch {b} result missing at PE {home}"))?;
        results.extend_from_slice(&res.bytes);
        stats.ops += res.ops;
        stats.scanned += res.scanned;
    }
    let mut merged: Vec<(u64, &Vec<u8>)> = Vec::new();
    for (pe, store) in stores.iter().enumerate() {
        let shard: &Shard = store
            .get(SHARD_KEY)
            .ok_or_else(|| format!("shard missing at PE {pe}"))?;
        stats.compactions += shard.compactions();
        stats.live_bytes += shard.live_bytes();
        stats.dead_bytes += shard.dead_bytes();
        merged.extend(shard.iter_live());
    }
    // Keys are globally unique (each live key lives in exactly one
    // shard), so a sort is a true ordered merge.
    merged.sort_unstable_by_key(|&(k, _)| k);
    let mut digest_buf = Vec::new();
    for (k, v) in merged {
        digest_buf.extend_from_slice(&k.to_le_bytes());
        digest_buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        digest_buf.extend_from_slice(v);
    }
    Ok((
        KvProduct {
            results,
            store_digest: navp::durable::fnv1a(&digest_buf),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::expected;
    use navp::{SimExecutor, ThreadExecutor};
    use navp_sim::CostModel;

    fn sim_product(cl: Cluster, cfg: &KvConfig, home: impl Fn(usize) -> usize) -> KvProduct {
        let exec = SimExecutor::new(CostModel::paper_cluster());
        let rep = exec.run(cl).expect("sim run");
        collect(&rep.stores, cfg, home).expect("collect").0
    }

    #[test]
    fn all_steps_match_the_reference_on_sim() {
        let cfg = KvConfig::new(240, 6);
        let want = expected(&cfg);
        let seq = sim_product(seq_cluster(&cfg).unwrap(), &cfg, |_| 0);
        assert_eq!(seq, want, "seq diverges from reference");
        let dsc = sim_product(dsc_cluster(&cfg, 4).unwrap(), &cfg, |_| 0);
        assert_eq!(dsc, want, "dsc diverges from reference");
        let pipe = sim_product(pipe_cluster(&cfg, 4).unwrap(), &cfg, |_| 0);
        assert_eq!(pipe, want, "pipe diverges from reference");
        let phase = sim_product(phase_cluster(&cfg, 4).unwrap(), &cfg, |b| b % 4);
        assert_eq!(phase, want, "phase diverges from reference");
    }

    #[test]
    fn phase_compacts_while_serving() {
        let cfg = KvConfig::new(400, 8).with_value_len(64);
        let exec = SimExecutor::new(CostModel::paper_cluster());
        let rep = exec.run(phase_cluster(&cfg, 4).unwrap()).expect("sim run");
        let (product, stats) = collect(&rep.stores, &cfg, |b| b % 4).expect("collect");
        assert_eq!(product, expected(&cfg));
        assert_eq!(stats.compactions, (COMPACTOR_ROUNDS * 4) as u64);
    }

    #[test]
    fn threads_match_sim_bitwise() {
        let cfg = KvConfig::new(200, 5);
        let want = expected(&cfg);
        let exec = ThreadExecutor::new();
        let rep = exec.run(pipe_cluster(&cfg, 3).unwrap()).expect("threads");
        let (product, _) = collect(&rep.stores, &cfg, |_| 0).expect("collect");
        assert_eq!(product, want);
    }
}
