//! The key-value messengers: batch carriers, the DSC wrapper, and the
//! roving compactor.
//!
//! A [`BatchCarrier`] is the kv analogue of the matrix workload's
//! `RowCarrier`: it carries one client batch through the mesh, hopping
//! to whichever PE owns the next operation's key and executing every
//! consecutive locally-served operation inside a single `step` (the
//! executor only regains control when the computation locus actually
//! moves). Scans tour every PE in order and merge their per-shard hits
//! before recording a result. When the batch is exhausted the carrier
//! returns to its home PE and deposits a [`BatchResult`].
//!
//! [`DscKvCarrier`] is the distributed-sequential-computing step: one
//! messenger that runs every batch, in order, by delegating to an inner
//! [`BatchCarrier`] — exactly the shape of the paper's first
//! transformation, where the sequential program starts migrating but
//! nothing overlaps yet.
//!
//! [`Compactor`] is the background maintenance messenger: it roves
//! round-robin over the PEs compacting each shard it visits. It is
//! "low-priority" in the NavP sense — it yields the PE after every
//! shard by hopping, so serving messengers interleave freely — and it
//! is safe to overlap with serving because compaction is
//! observation-neutral (see [`Shard::compact`]).

use navp::durable::fnv1a;
use navp::{Effect, Messenger, MsgrCtx, NodeId, WireSnapshot};
use navp_net::codec::WireWriter;

use crate::config::KvConfig;
use crate::shard::Shard;
use crate::workload::{
    batch_ops, owner_of, write_delete_result, write_get_result, write_put_result,
    write_scan_result, Op,
};

/// Store key of the PE-local shard. Every PE holds exactly one shard,
/// so no subscript is needed — each PE's store is its own namespace.
pub const SHARD_KEY: navp::Key = navp::Key::plain("KVShard");

/// Store key of batch `b`'s deposited result.
pub fn result_key(b: usize) -> navp::Key {
    navp::Key::at("KVRes", b)
}

/// The value a finished batch deposits at its home PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// The batch's result buffer: one record per operation, in
    /// operation order (see [`crate::workload::result_tag`]).
    pub bytes: Vec<u8>,
    /// Operations executed.
    pub ops: u64,
    /// Total entries returned by this batch's scans.
    pub scanned: u64,
}

/// In-flight state of a scan touring the mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScanState {
    /// Range start (inclusive).
    pub(crate) start: u64,
    /// Range end (exclusive) — the batch's region end.
    pub(crate) end: u64,
    /// Global result cap.
    pub(crate) limit: usize,
    /// Next PE to visit; the tour runs 0..pes.
    pub(crate) next_pe: usize,
    /// Hits gathered so far as `(key, value digest)`.
    pub(crate) acc: Vec<(u64, u64)>,
}

/// Carries one client batch through the mesh (see module docs).
#[derive(Debug, Clone)]
pub struct BatchCarrier {
    pub(crate) cfg: KvConfig,
    pub(crate) pes: usize,
    pub(crate) batch: usize,
    pub(crate) home: usize,
    /// Regenerated from `(cfg, batch)`, never serialized.
    pub(crate) ops: Vec<Op>,
    pub(crate) pos: usize,
    pub(crate) results: Vec<u8>,
    pub(crate) scanned: u64,
    pub(crate) scan: Option<ScanState>,
    pub(crate) deposited: bool,
}

impl BatchCarrier {
    /// A carrier for batch `batch` on a `pes`-wide mesh, depositing its
    /// results at `home` when done.
    pub fn new(cfg: KvConfig, pes: usize, batch: usize, home: usize) -> BatchCarrier {
        assert!(pes > 0 && home < pes);
        let ops = batch_ops(&cfg, batch);
        BatchCarrier {
            cfg,
            pes,
            batch,
            home,
            ops,
            pos: 0,
            results: Vec::new(),
            scanned: 0,
            scan: None,
            deposited: false,
        }
    }

    /// Batch index this carrier serves.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn shard<'a>(ctx: &'a mut MsgrCtx<'_>) -> &'a mut Shard {
        ctx.store()
            .get_mut::<Shard>(SHARD_KEY)
            .expect("every PE is seeded with a shard")
    }
}

impl Messenger for BatchCarrier {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        loop {
            // A scan in flight visits PEs strictly in order, then merges.
            if let Some(st) = &mut self.scan {
                if ctx.here() != st.next_pe {
                    return Effect::Hop(st.next_pe as NodeId);
                }
                let (start, end, limit) = (st.start, st.end, st.limit);
                let mut touched = 0u64;
                let hits: Vec<(u64, u64)> = Self::shard(ctx)
                    .scan(start, end, limit)
                    .into_iter()
                    .map(|(k, v)| {
                        touched += 9 + v.len() as u64;
                        (k, fnv1a(v))
                    })
                    .collect();
                ctx.charge_touched(touched);
                ctx.charge_flops(32 + 8 * hits.len() as u64);
                let st = self.scan.as_mut().expect("scan still active");
                st.acc.extend(hits);
                st.next_pe += 1;
                if st.next_pe < self.pes {
                    return Effect::Hop(st.next_pe as NodeId);
                }
                // Toured every shard: ordered merge. Per-shard hits are
                // already sorted; a global sort + truncate yields the
                // first `limit` keys of the union.
                st.acc.sort_unstable_by_key(|&(k, _)| k);
                st.acc.truncate(st.limit);
                let mut w = WireWriter::over(std::mem::take(&mut self.results));
                write_scan_result(&mut w, st.start, &st.acc);
                self.scanned += st.acc.len() as u64;
                self.results = w.into_vec();
                self.scan = None;
                self.pos += 1;
                continue;
            }

            // Batch exhausted: go home and deposit the result buffer.
            if self.pos == self.ops.len() {
                if !self.deposited {
                    if ctx.here() != self.home {
                        return Effect::Hop(self.home as NodeId);
                    }
                    let res = BatchResult {
                        bytes: std::mem::take(&mut self.results),
                        ops: self.ops.len() as u64,
                        scanned: self.scanned,
                    };
                    let bytes = res.bytes.len() as u64 + 16;
                    ctx.store().insert(result_key(self.batch), res, bytes);
                    self.deposited = true;
                }
                return Effect::Done;
            }

            // Next operation. Scans start a mesh tour; point operations
            // navigate to the owner and execute locally.
            match self.ops[self.pos].clone() {
                Op::Scan { start, end, limit } => {
                    self.scan = Some(ScanState {
                        start,
                        end,
                        limit,
                        next_pe: 0,
                        acc: Vec::new(),
                    });
                }
                op => {
                    let target = owner_of(op.key(), self.pes);
                    if ctx.here() != target {
                        return Effect::Hop(target as NodeId);
                    }
                    debug_assert_eq!(ctx.here(), target);
                    let mut w = WireWriter::over(std::mem::take(&mut self.results));
                    match op {
                        Op::Put { key, value } => {
                            let touched = 9 + value.len() as u64;
                            let prev = Self::shard(ctx).put(key, value);
                            write_put_result(&mut w, key, prev);
                            ctx.charge_touched(touched);
                        }
                        Op::Get { key } => {
                            let value = Self::shard(ctx).get(key).cloned();
                            ctx.charge_touched(9 + value.as_ref().map_or(0, |v| v.len() as u64));
                            write_get_result(&mut w, key, value.as_ref());
                        }
                        Op::Delete { key } => {
                            let existed = Self::shard(ctx).delete(key);
                            write_delete_result(&mut w, key, existed);
                            ctx.charge_touched(9);
                        }
                        Op::Scan { .. } => unreachable!("handled above"),
                    }
                    ctx.charge_flops(32);
                    self.results = w.into_vec();
                    self.pos += 1;
                }
            }
        }
    }

    fn payload_bytes(&self) -> u64 {
        // Agent variables that actually travel: the accumulated result
        // buffer, in-flight scan hits, and a little fixed state.
        self.results.len() as u64
            + self.scan.as_ref().map_or(0, |s| 16 * s.acc.len() as u64)
            + 64
    }

    fn label(&self) -> String {
        format!("KvBatch({})", self.batch)
    }

    fn snapshot(&self) -> Option<Box<dyn Messenger>> {
        Some(Box::new(self.clone()))
    }

    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        Some(WireSnapshot::new(
            crate::net::BATCH_TAG,
            crate::net::encode_batch_carrier(self),
        ))
    }
}

/// The DSC step: one migrating messenger that serves every batch in
/// order — distributed data, sequential control flow.
#[derive(Debug, Clone)]
pub struct DscKvCarrier {
    pub(crate) cfg: KvConfig,
    pub(crate) pes: usize,
    pub(crate) home: usize,
    pub(crate) next_batch: usize,
    pub(crate) inner: Option<BatchCarrier>,
}

impl DscKvCarrier {
    /// One messenger serving all of `cfg`'s batches over `pes` PEs,
    /// depositing every result at `home`.
    pub fn new(cfg: KvConfig, pes: usize, home: usize) -> DscKvCarrier {
        assert!(pes > 0 && home < pes);
        DscKvCarrier {
            cfg,
            pes,
            home,
            next_batch: 0,
            inner: None,
        }
    }
}

impl Messenger for DscKvCarrier {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        loop {
            if let Some(c) = &mut self.inner {
                match c.step(ctx) {
                    Effect::Done => self.inner = None,
                    other => return other,
                }
            } else if self.next_batch == self.cfg.batches {
                if ctx.here() != self.home {
                    return Effect::Hop(self.home as NodeId);
                }
                return Effect::Done;
            } else {
                self.inner = Some(BatchCarrier::new(
                    self.cfg,
                    self.pes,
                    self.next_batch,
                    self.home,
                ));
                self.next_batch += 1;
            }
        }
    }

    fn payload_bytes(&self) -> u64 {
        self.inner.as_ref().map_or(64, |c| c.payload_bytes())
    }

    fn label(&self) -> String {
        match &self.inner {
            Some(c) => format!("KvDsc[{}]", c.batch),
            None => "KvDsc".to_string(),
        }
    }

    fn snapshot(&self) -> Option<Box<dyn Messenger>> {
        Some(Box::new(self.clone()))
    }

    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        Some(WireSnapshot::new(
            crate::net::DSC_TAG,
            crate::net::encode_dsc_carrier(self),
        ))
    }
}

/// Background compaction as a roving messenger: `rounds` round-robin
/// passes over all PEs, compacting the local shard on each visit and
/// hopping away immediately after so serving work interleaves.
#[derive(Debug, Clone)]
pub struct Compactor {
    pub(crate) pes: usize,
    pub(crate) rounds: usize,
    pub(crate) cursor: usize,
    pub(crate) reclaimed: u64,
}

impl Compactor {
    /// A compactor making `rounds` passes over `pes` PEs, starting at
    /// PE 0.
    pub fn new(pes: usize, rounds: usize) -> Compactor {
        assert!(pes > 0);
        Compactor {
            pes,
            rounds,
            cursor: 0,
            reclaimed: 0,
        }
    }

    /// Bytes reclaimed so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }
}

impl Messenger for Compactor {
    fn step(&mut self, ctx: &mut MsgrCtx<'_>) -> Effect {
        loop {
            if self.rounds == 0 {
                return Effect::Done;
            }
            if ctx.here() != self.cursor {
                return Effect::Hop(self.cursor as NodeId);
            }
            if let Some(shard) = ctx.store().get_mut::<Shard>(SHARD_KEY) {
                let live = shard.live_bytes();
                self.reclaimed += shard.compact();
                ctx.charge_touched(live);
            }
            self.cursor += 1;
            if self.cursor == self.pes {
                self.cursor = 0;
                self.rounds -= 1;
            }
            if self.rounds > 0 && self.cursor != ctx.here() {
                return Effect::Hop(self.cursor as NodeId);
            }
        }
    }

    fn payload_bytes(&self) -> u64 {
        32
    }

    fn label(&self) -> String {
        "KvCompactor".to_string()
    }

    fn snapshot(&self) -> Option<Box<dyn Messenger>> {
        Some(Box::new(self.clone()))
    }

    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        Some(WireSnapshot::new(
            crate::net::COMPACTOR_TAG,
            crate::net::encode_compactor(self),
        ))
    }
}
