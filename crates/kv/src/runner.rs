//! Uniform entry points over the kv journey steps.
//!
//! Same shape as the matrix runner: "run step X at mesh width P on
//! executor E" is written exactly once, so the tests, the bench
//! harness, the fuzzer, the job service, and the examples all drive the
//! workload through the same functions and therefore measure the same
//! code.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use navp::{Cluster, FaultPlan, FaultStats, SimExecutor, ThreadExecutor};
use navp_metrics::{MetricsSnapshot, RunMetrics};
use navp_mm::runner::NetOpts;
use navp_net::{restore_from_dir, NetExecutor, NetPeStats, RegistryCodec};
use navp_sim::{CostModel, Trace};
use navp_trace::TraceReport;

use crate::config::KvConfig;
use crate::stages::{self, KvRunStats};
use crate::workload::{expected, KvProduct};

/// The kv journey steps, in paper order: the same incremental
/// transformations the matrix case study walks, applied to a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KvStage {
    /// One PE, one shard, one messenger — the sequential program.
    Seq,
    /// Distributed shards, one migrating messenger (DSC).
    Dsc,
    /// One carrier per batch, pipelined through PE 0.
    Pipe,
    /// Phase-shifted entry PEs plus a roving background compactor.
    Phase,
}

impl KvStage {
    /// Journey order.
    pub const ALL: [KvStage; 4] = [KvStage::Seq, KvStage::Dsc, KvStage::Pipe, KvStage::Phase];

    /// Stable name used by CLIs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            KvStage::Seq => "kv_seq",
            KvStage::Dsc => "kv_dsc",
            KvStage::Pipe => "kv_pipe",
            KvStage::Phase => "kv_phase",
        }
    }

    /// Parse a stage name (with or without the `kv_` prefix).
    pub fn parse(s: &str) -> Option<KvStage> {
        match s.trim_start_matches("kv_") {
            "seq" => Some(KvStage::Seq),
            "dsc" => Some(KvStage::Dsc),
            "pipe" => Some(KvStage::Pipe),
            "phase" => Some(KvStage::Phase),
            _ => None,
        }
    }

    /// PEs the step actually uses for a requested mesh width: the
    /// sequential step always runs on one PE.
    pub fn effective_pes(&self, pes: usize) -> usize {
        match self {
            KvStage::Seq => 1,
            _ => pes,
        }
    }

    /// Home PE where batch `b` deposits its results.
    pub fn res_home(&self, pes: usize, b: usize) -> usize {
        match self {
            KvStage::Phase => b % pes,
            _ => 0,
        }
    }
}

impl fmt::Display for KvStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What can go wrong driving a kv run.
#[derive(Debug)]
pub enum KvError {
    /// NavP executor error.
    Navp(navp::RunError),
    /// The final stores were missing results or shards.
    Incomplete(String),
    /// Invalid stage/mesh combination.
    Shape(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Navp(e) => write!(f, "NavP runtime error: {e}"),
            KvError::Incomplete(s) => write!(f, "incomplete run: {s}"),
            KvError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<navp::RunError> for KvError {
    fn from(e: navp::RunError) -> Self {
        KvError::Navp(e)
    }
}

/// What a kv run produced.
pub struct KvRunOutput {
    /// Virtual makespan (sim executor only).
    pub virt_seconds: Option<f64>,
    /// Wall-clock duration (real executors only).
    pub wall: Option<Duration>,
    /// The run's product: ordered results plus the merged store digest.
    pub product: KvProduct,
    /// Whether the product matches the sequential reference model.
    /// `None` when verification was skipped (benchmarks).
    pub verified: Option<bool>,
    /// Aggregate counters read off the final stores.
    pub stats: KvRunStats,
    /// Inter-PE messenger transfers.
    pub transfers: u64,
    /// Bytes those transfers carried (wire bytes on the net executor).
    pub bytes: u64,
    /// Recorded trace, when requested.
    pub trace: Option<Trace>,
    /// Derived trace metrics, when a wall-clock trace was recorded.
    pub trace_report: Option<TraceReport>,
    /// Fault-machinery counters.
    pub faults: Option<FaultStats>,
    /// Per-PE socket statistics (net executor only).
    pub per_pe_net: Option<Vec<NetPeStats>>,
    /// Metrics snapshot, when requested.
    pub metrics: Option<MetricsSnapshot>,
}

impl fmt::Debug for KvRunOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvRunOutput")
            .field("virt_seconds", &self.virt_seconds)
            .field("wall", &self.wall)
            .field("verified", &self.verified)
            .field("stats", &self.stats)
            .field("transfers", &self.transfers)
            .field("bytes", &self.bytes)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

fn build_cluster(stage: KvStage, cfg: &KvConfig, pes: usize) -> Result<Cluster, KvError> {
    if pes == 0 {
        return Err(KvError::Shape("mesh width must be at least 1".into()));
    }
    let cl = match stage {
        KvStage::Seq => stages::seq_cluster(cfg)?,
        KvStage::Dsc => stages::dsc_cluster(cfg, pes)?,
        KvStage::Pipe => stages::pipe_cluster(cfg, pes)?,
        KvStage::Phase => stages::phase_cluster(cfg, pes)?,
    };
    Ok(cl)
}

fn collect(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    stores: &[navp::NodeStore],
) -> Result<(KvProduct, KvRunStats), KvError> {
    let pes = stage.effective_pes(pes);
    stages::collect(stores, cfg, |b| stage.res_home(pes, b)).map_err(KvError::Incomplete)
}

fn verify(cfg: &KvConfig, product: &KvProduct, check: bool) -> Option<bool> {
    check.then(|| *product == expected(cfg))
}

/// The registry-backed durable codec for in-process durable kv runs;
/// registers every kv (and launcher) wire codec first.
fn durable_codec() -> Arc<dyn navp::durable::DurableCodec> {
    crate::net::register_net();
    Arc::new(RegistryCodec::new())
}

/// The thread executor a config asks for: explicit `cfg.watchdog`, else
/// `NAVP_WATCHDOG_MS`, else the executor's built-in default.
fn thread_executor(cfg: &KvConfig) -> ThreadExecutor {
    let exec = ThreadExecutor::new().with_trace(cfg.trace);
    if let Some(wd) = cfg.watchdog {
        return exec.with_watchdog(wd);
    }
    if let Some(ms) = std::env::var("NAVP_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        return exec.with_watchdog(Duration::from_millis(ms));
    }
    exec
}

/// The networked executor a config asks for, with the same watchdog
/// resolution as [`thread_executor`].
fn net_executor(cfg: &KvConfig, opts: &NetOpts) -> NetExecutor {
    let mut exec = NetExecutor::new()
        .with_trace(cfg.trace)
        .with_metrics(cfg.metrics);
    if let Some(bin) = &opts.pe_bin {
        exec = exec.with_pe_bin(bin.clone());
    }
    if !opts.join.is_empty() {
        exec = exec.join_addrs(opts.join.clone());
    }
    if let Some(grace) = opts.grace {
        exec = exec.with_grace(grace);
    }
    if let Some(dir) = &opts.durable_dir {
        exec = exec.with_durable_dir(dir.clone());
    }
    if opts.run_id != 0 {
        exec = exec.with_run_id(opts.run_id);
    }
    if let Some(deadline) = opts.deadline {
        exec = exec.with_deadline(deadline);
    }
    if let Some(wd) = cfg.watchdog {
        return exec.with_watchdog(wd);
    }
    if let Some(ms) = std::env::var("NAVP_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        return exec.with_watchdog(Duration::from_millis(ms));
    }
    exec
}

fn warn_trace_dropped(dropped: u64) {
    if dropped > 0 {
        eprintln!(
            "warning: trace buffer overflowed — {dropped} events dropped; \
             the trace and its report are partial"
        );
    }
}

/// Run a kv step under the virtual cost model.
pub fn run_kv_sim(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    cost: &CostModel,
    with_trace: bool,
) -> Result<KvRunOutput, KvError> {
    run_kv_sim_inner(stage, cfg, pes, cost, with_trace, None)
}

/// As [`run_kv_sim`], with `plan`'s faults injected during the run.
pub fn run_kv_sim_faulted(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    cost: &CostModel,
    plan: FaultPlan,
) -> Result<KvRunOutput, KvError> {
    run_kv_sim_inner(stage, cfg, pes, cost, false, Some(plan))
}

fn run_kv_sim_inner(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    cost: &CostModel,
    with_trace: bool,
    plan: Option<FaultPlan>,
) -> Result<KvRunOutput, KvError> {
    let mut cl = build_cluster(stage, cfg, pes)?;
    if let Some(plan) = plan {
        cl.set_fault_plan(plan);
    }
    let mut exec = SimExecutor::new(*cost);
    if with_trace {
        exec = exec.with_trace();
    }
    let met = cfg.metrics.then(|| RunMetrics::new(stage.effective_pes(pes)));
    if let Some(m) = &met {
        exec = exec.with_metrics(Arc::clone(m));
    }
    let rep = exec.run(cl)?;
    let (product, stats) = collect(stage, cfg, pes, &rep.stores)?;
    let verified = verify(cfg, &product, true);
    Ok(KvRunOutput {
        virt_seconds: Some(rep.makespan.as_secs_f64()),
        wall: None,
        product,
        verified,
        stats,
        transfers: rep.hops,
        bytes: rep.hop_bytes,
        trace: with_trace.then_some(rep.trace),
        trace_report: None,
        faults: Some(rep.faults),
        per_pe_net: None,
        metrics: met.map(|m| m.snapshot()),
    })
}

/// Run a kv step on real threads (wall-clock), verifying the product
/// against the sequential reference model.
pub fn run_kv_threads(stage: KvStage, cfg: &KvConfig, pes: usize) -> Result<KvRunOutput, KvError> {
    run_kv_threads_inner(stage, cfg, pes, true, None)
}

/// As [`run_kv_threads`] without verification — for benchmarks, where
/// re-deriving the reference every iteration would dominate.
pub fn run_kv_threads_unverified(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
) -> Result<KvRunOutput, KvError> {
    run_kv_threads_inner(stage, cfg, pes, false, None)
}

/// As [`run_kv_threads`], with `plan`'s faults injected during the run.
pub fn run_kv_threads_faulted(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    plan: FaultPlan,
) -> Result<KvRunOutput, KvError> {
    run_kv_threads_inner(stage, cfg, pes, true, Some(plan))
}

fn run_kv_threads_inner(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    check: bool,
    plan: Option<FaultPlan>,
) -> Result<KvRunOutput, KvError> {
    let mut cl = build_cluster(stage, cfg, pes)?;
    if let Some(plan) = plan {
        cl.set_fault_plan(plan);
    }
    let met = cfg.metrics.then(|| RunMetrics::new(stage.effective_pes(pes)));
    let mut exec = thread_executor(cfg);
    if let Some(m) = &met {
        exec = exec.with_metrics(Arc::clone(m));
    }
    let mut rep = exec.run(cl)?;
    let (product, stats) = collect(stage, cfg, pes, &rep.stores)?;
    let verified = verify(cfg, &product, check);
    let trace = rep.trace.take();
    warn_trace_dropped(rep.trace_dropped);
    let trace_report = trace
        .as_ref()
        .map(|t| TraceReport::from_trace(t, stage.effective_pes(pes), rep.trace_dropped));
    Ok(KvRunOutput {
        virt_seconds: None,
        wall: Some(rep.wall),
        product,
        verified,
        stats,
        transfers: rep.hops,
        bytes: rep.hop_bytes,
        trace,
        trace_report,
        faults: Some(rep.faults),
        per_pe_net: None,
        metrics: met.map(|m| m.snapshot()),
    })
}

/// Run a kv step across real OS processes over TCP. The cluster is
/// built exactly as for [`run_kv_threads`]; only the executor differs,
/// so the product must be bitwise identical — `tests/kv.rs` asserts it.
pub fn run_kv_net(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    opts: &NetOpts,
) -> Result<KvRunOutput, KvError> {
    run_kv_net_inner(stage, cfg, pes, opts, None)
}

/// As [`run_kv_net`], with `plan`'s faults mapped onto the real
/// sockets.
pub fn run_kv_net_faulted(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    opts: &NetOpts,
    plan: FaultPlan,
) -> Result<KvRunOutput, KvError> {
    run_kv_net_inner(stage, cfg, pes, opts, Some(plan))
}

fn run_kv_net_inner(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    opts: &NetOpts,
    plan: Option<FaultPlan>,
) -> Result<KvRunOutput, KvError> {
    crate::net::register_net();
    let mut cl = build_cluster(stage, cfg, pes)?;
    if let Some(plan) = plan {
        cl.set_fault_plan(plan);
    }
    let mut rep = net_executor(cfg, opts).run(cl)?;
    let (product, stats) = collect(stage, cfg, pes, &rep.stores)?;
    let verified = verify(cfg, &product, true);
    let trace = rep.trace.take();
    warn_trace_dropped(rep.trace_dropped);
    let trace_report = trace
        .as_ref()
        .map(|t| TraceReport::from_trace(t, stage.effective_pes(pes), rep.trace_dropped));
    Ok(KvRunOutput {
        virt_seconds: None,
        wall: Some(rep.wall),
        product,
        verified,
        stats,
        transfers: rep.hops,
        bytes: rep.wire_bytes,
        trace,
        trace_report,
        faults: Some(rep.faults),
        per_pe_net: Some(rep.per_pe),
        metrics: rep.metrics.take(),
    })
}

/// As [`run_kv_threads`], spilling a durable checkpoint of the whole
/// cluster — shards, carriers, deposited results — to `dir` at every
/// run boundary. An optional fault plan lets tests crash mid-run; the
/// cuts restore with [`run_kv_restored_threads`] and finish bitwise
/// identically.
pub fn run_kv_threads_durable(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    dir: impl Into<PathBuf>,
    plan: Option<FaultPlan>,
) -> Result<KvRunOutput, KvError> {
    let mut cl = build_cluster(stage, cfg, pes)?;
    if let Some(plan) = plan {
        cl.set_fault_plan(plan);
    }
    let mut rep = thread_executor(cfg)
        .with_durable(dir, durable_codec())
        .run(cl)?;
    let (product, stats) = collect(stage, cfg, pes, &rep.stores)?;
    let verified = verify(cfg, &product, true);
    let trace = rep.trace.take();
    warn_trace_dropped(rep.trace_dropped);
    Ok(KvRunOutput {
        virt_seconds: None,
        wall: Some(rep.wall),
        product,
        verified,
        stats,
        transfers: rep.hops,
        bytes: rep.hop_bytes,
        trace,
        trace_report: None,
        faults: Some(rep.faults),
        per_pe_net: None,
        metrics: None,
    })
}

/// Restore an interrupted durable kv run from its checkpoint directory
/// and finish it on real threads. The completed product is bitwise
/// identical to the uninterrupted run, which `verified` re-checks.
pub fn run_kv_restored_threads(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    dir: &Path,
) -> Result<KvRunOutput, KvError> {
    crate::net::register_net();
    let cl = restore_from_dir(dir)?;
    let rep = thread_executor(cfg).run(cl)?;
    let (product, stats) = collect(stage, cfg, pes, &rep.stores)?;
    let verified = verify(cfg, &product, true);
    Ok(KvRunOutput {
        virt_seconds: None,
        wall: Some(rep.wall),
        product,
        verified,
        stats,
        transfers: rep.hops,
        bytes: rep.hop_bytes,
        trace: None,
        trace_report: None,
        faults: Some(rep.faults),
        per_pe_net: None,
        metrics: None,
    })
}

/// The paper's starting point: the whole workload served sequentially
/// on one PE (wall-clock).
pub fn run_kv_seq(cfg: &KvConfig) -> Result<KvRunOutput, KvError> {
    run_kv_threads(KvStage::Seq, cfg, 1)
}

/// The first transformation: distributed shards, one migrating
/// messenger (wall-clock).
pub fn run_kv_dsc(cfg: &KvConfig, pes: usize) -> Result<KvRunOutput, KvError> {
    run_kv_threads(KvStage::Dsc, cfg, pes)
}

/// The second transformation: per-batch pipelined messengers
/// (wall-clock).
pub fn run_kv_pipe(cfg: &KvConfig, pes: usize) -> Result<KvRunOutput, KvError> {
    run_kv_threads(KvStage::Pipe, cfg, pes)
}

/// The final step: phase-shifted entry plus background compaction
/// overlapped with serving (wall-clock).
pub fn run_kv_phase(cfg: &KvConfig, pes: usize) -> Result<KvRunOutput, KvError> {
    run_kv_threads(KvStage::Phase, cfg, pes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journey_entry_points_agree() {
        let cfg = KvConfig::new(160, 4);
        let seq = run_kv_seq(&cfg).expect("seq");
        let dsc = run_kv_dsc(&cfg, 3).expect("dsc");
        let pipe = run_kv_pipe(&cfg, 3).expect("pipe");
        let phase = run_kv_phase(&cfg, 3).expect("phase");
        for out in [&seq, &dsc, &pipe, &phase] {
            assert_eq!(out.verified, Some(true));
        }
        assert_eq!(seq.product, dsc.product);
        assert_eq!(dsc.product, pipe.product);
        assert_eq!(pipe.product, phase.product);
        assert!(phase.stats.compactions > 0, "phase must compact");
        assert!(dsc.transfers > 0, "dsc must migrate");
    }

    #[test]
    fn durable_checkpoint_restores_bitwise() {
        let cfg = KvConfig::new(120, 4);
        let dir = std::env::temp_dir().join(format!("navp-kv-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let clean = run_kv_threads(KvStage::Pipe, &cfg, 2).expect("clean run");
        // Crash PE 1 without checkpoint-based in-run recovery, so the
        // run dies and only the durable cuts can finish it.
        let plan = FaultPlan::new().crash_pe(1, 1).without_checkpointing();
        let died = run_kv_threads_durable(KvStage::Pipe, &cfg, 2, &dir, Some(plan));
        assert!(died.is_err(), "crash plan must kill the run");
        let restored = run_kv_restored_threads(KvStage::Pipe, &cfg, 2, &dir).expect("restore");
        assert_eq!(restored.verified, Some(true));
        assert_eq!(restored.product, clean.product);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_metrics_and_trace_paths_work() {
        let cfg = KvConfig::new(80, 4).with_metrics(true);
        let out = run_kv_sim(
            KvStage::Phase,
            &cfg,
            2,
            &CostModel::paper_cluster(),
            true,
        )
        .expect("sim");
        assert_eq!(out.verified, Some(true));
        assert!(out.trace.is_some());
        let snap = out.metrics.expect("metrics requested");
        assert!(snap.total("navp_hops_total") > 0.0);
    }
}
