//! Fault-space fuzzing for the kv workload.
//!
//! Same harness as the matrix case study (`navp::explore` + seeded
//! `FaultSchedule`s), with the kv product bytes as the bitwise parity
//! oracle: a schedule either finishes with results and store digest
//! bit-identical to the fault-free baseline, fails in a *designed* way
//! (e.g. an unrecoverable crash surfacing as `PeCrashed`), or is a
//! reproducible violation in the recovery machinery.

use std::path::Path;

use navp::explore::{classify, explore, read_repro, ExploreConfig, ExploreReport, Outcome};
use navp::{FaultPlan, RunError};
use navp_mm::{FuzzExecutor, FuzzOpts};
use navp_sim::CostModel;

use crate::config::KvConfig;
use crate::runner::{
    run_kv_sim_faulted, run_kv_threads_faulted, KvError, KvStage,
};

/// One complete faulted kv run, reduced to its product bytes.
fn run_once(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    executor: FuzzExecutor,
    plan: &FaultPlan,
) -> Result<Vec<u8>, RunError> {
    let out = match executor {
        FuzzExecutor::Sim => {
            run_kv_sim_faulted(stage, cfg, pes, &CostModel::paper_cluster(), plan.clone())
        }
        FuzzExecutor::Threads => run_kv_threads_faulted(stage, cfg, pes, plan.clone()),
    };
    let out = out.map_err(|e| match e {
        KvError::Navp(e) => e,
        other => RunError::Transport {
            detail: other.to_string(),
        },
    })?;
    Ok(out.product.to_bytes())
}

/// Explore the fault space of one kv journey step: generate seeded
/// crash/delay/drop/lost-signal schedules, run each, check bitwise
/// product parity against the fault-free baseline, and minimize +
/// persist every violation. A healthy runtime returns an empty
/// violation list.
pub fn fuzz_kv_stage(
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    opts: &FuzzOpts,
) -> Result<ExploreReport, String> {
    let pes = stage.effective_pes(pes);
    let mut ecfg = ExploreConfig::new(opts.root_seed, opts.schedules, pes);
    ecfg.budget = opts.budget;
    ecfg.out_dir = opts.out_dir.clone();
    explore(&ecfg, |plan| {
        run_once(stage, cfg, pes, opts.executor, plan)
    })
}

/// Replay a `repro-<seed>.navpfault` (or any fault-spec) file against a
/// kv step and classify it against a fresh fault-free baseline.
/// [`Outcome::Violation`] means the bug still reproduces.
pub fn replay_kv_repro(
    path: &Path,
    stage: KvStage,
    cfg: &KvConfig,
    pes: usize,
    executor: FuzzExecutor,
) -> Result<Outcome, String> {
    let pes = stage.effective_pes(pes);
    let plan = read_repro(path)?;
    let baseline = run_once(stage, cfg, pes, executor, &FaultPlan::new())
        .map_err(|e| format!("fault-free baseline run failed: {e}"))?;
    let result = run_once(stage, cfg, pes, executor, &plan);
    Ok(classify(&plan, &baseline, &result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzing_a_healthy_kv_step_finds_no_violations() {
        let cfg = KvConfig::new(60, 3);
        let report = fuzz_kv_stage(KvStage::Pipe, &cfg, 2, &FuzzOpts::new(17, 20)).unwrap();
        assert_eq!(report.explored, 20);
        assert!(
            report.violations.is_empty(),
            "parity violations on a healthy runtime: {:?}",
            report.violations
        );
        assert!(report.matches > 0, "some schedules must complete");
    }

    #[test]
    fn kv_fuzzing_is_deterministic_in_the_root_seed() {
        let cfg = KvConfig::new(60, 3);
        let a = fuzz_kv_stage(KvStage::Phase, &cfg, 2, &FuzzOpts::new(5, 10)).unwrap();
        let b = fuzz_kv_stage(KvStage::Phase, &cfg, 2, &FuzzOpts::new(5, 10)).unwrap();
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.expected_failures, b.expected_failures);
    }

    #[test]
    fn replay_classifies_a_kv_spec_file() {
        let dir = std::env::temp_dir().join(format!("navp-kv-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crash.navpfault");
        std::fs::write(&path, FaultPlan::new().crash_pe(1, 1).to_spec()).unwrap();
        let cfg = KvConfig::new(40, 2);
        let out = replay_kv_repro(&path, KvStage::Dsc, &cfg, 2, FuzzExecutor::Sim).unwrap();
        assert_eq!(
            out,
            Outcome::Match,
            "a recoverable crash must not change the product"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
