//! Property tests for the kv wire codecs: randomly generated
//! carriers, compactors and shards round-trip bitwise through the net
//! registry, and *no* truncation or corruption of an encoded frame
//! can panic the decoder — every failure is a structured error.
//!
//! The generator is a local SplitMix64 (same construction as
//! `navp::fault`'s seeded plans) so the "random" cases are identical
//! on every run and in CI.

use navp::Messenger;
use navp_kv::shard::Shard;
use navp_kv::{register_net, BatchCarrier, Compactor, DscKvCarrier, KvConfig};
use navp_net::registry::{decode_messenger, decode_value, encode_messenger, encode_value};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

fn arb_cfg(rng: &mut SplitMix64) -> KvConfig {
    let batches = 1 + rng.below(6) as usize;
    let ops = batches + rng.below(60) as usize;
    let mut cfg = KvConfig::new(ops, batches).with_seed(rng.next_u64());
    if rng.below(2) == 1 {
        cfg = cfg.with_value_len(1 + rng.below(64) as usize);
    }
    if rng.below(2) == 1 {
        cfg = cfg.with_keys_per_batch(16 + rng.below(256));
    }
    cfg
}

/// A messenger mid-journey: advance a fresh carrier a few steps so
/// the codec also covers non-initial cursors and result buffers.
fn arb_batch_carrier(rng: &mut SplitMix64) -> BatchCarrier {
    let cfg = arb_cfg(rng);
    let pes = 1 + rng.below(4) as usize;
    let batch = rng.below(cfg.batches as u64) as usize;
    BatchCarrier::new(cfg, pes, batch, rng.below(pes as u64) as usize)
}

fn arb_messenger(rng: &mut SplitMix64) -> Box<dyn Messenger> {
    match rng.below(3) {
        0 => Box::new(arb_batch_carrier(rng)),
        1 => {
            let cfg = arb_cfg(rng);
            let pes = 1 + rng.below(4) as usize;
            Box::new(DscKvCarrier::new(cfg, pes, rng.below(pes as u64) as usize))
        }
        _ => Box::new(Compactor::new(
            1 + rng.below(4) as usize,
            1 + rng.below(3) as usize,
        )),
    }
}

fn arb_shard(rng: &mut SplitMix64) -> Shard {
    let mut shard = Shard::default();
    for _ in 0..rng.below(40) {
        let key = rng.below(1 << 34);
        match rng.below(4) {
            0 => {
                shard.delete(key);
            }
            _ => {
                let len = rng.below(48) as usize;
                let val: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                shard.put(key, val);
            }
        }
    }
    if rng.below(3) == 0 {
        shard.compact();
    }
    shard
}

#[test]
fn arbitrary_kv_messengers_roundtrip_bitwise() {
    register_net();
    let mut rng = SplitMix64(0x6B76_0001);
    for case in 0..300 {
        let m = arb_messenger(&mut rng);
        let snap = encode_messenger(m.as_ref())
            .unwrap_or_else(|e| panic!("case {case}: encode failed: {e}"));
        let back = decode_messenger(&snap)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        // Bitwise canonical: re-encoding the decoded messenger yields
        // the identical frame.
        let again = encode_messenger(back.as_ref())
            .unwrap_or_else(|e| panic!("case {case}: re-encode failed: {e}"));
        assert_eq!(again.tag, snap.tag, "case {case}");
        assert_eq!(again.bytes, snap.bytes, "case {case}");
        assert_eq!(back.label(), m.label(), "case {case}");
    }
}

#[test]
fn arbitrary_shards_roundtrip_through_the_value_codec() {
    register_net();
    let mut rng = SplitMix64(0x5EED_0002);
    for case in 0..200 {
        let shard = arb_shard(&mut rng);
        let (tag, bytes) =
            encode_value(&shard).unwrap_or_else(|| panic!("case {case}: shard not encodable"));
        let back = decode_value(tag, &bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        let back = back
            .as_any()
            .downcast_ref::<Shard>()
            .unwrap_or_else(|| panic!("case {case}: decoded value is not a Shard"));
        assert_eq!(back, &shard, "case {case}");
        assert_eq!(back.digest(), shard.digest(), "case {case}");
    }
}

#[test]
fn every_messenger_truncation_is_an_error_never_a_panic() {
    register_net();
    let mut rng = SplitMix64(0xBEEF_0003);
    for _ in 0..40 {
        let m = arb_messenger(&mut rng);
        let snap = encode_messenger(m.as_ref()).expect("encode");
        for cut in 0..snap.bytes.len() {
            let cut_snap = navp::WireSnapshot::new(snap.tag.clone(), snap.bytes[..cut].to_vec());
            match decode_messenger(&cut_snap) {
                Ok(_) => panic!("truncated {} at {cut} decoded", m.label()),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

#[test]
fn messenger_corruption_never_panics_or_overreads() {
    register_net();
    let mut rng = SplitMix64(0xCAFE_0004);
    for _ in 0..25 {
        let m = arb_messenger(&mut rng);
        let snap = encode_messenger(m.as_ref()).expect("encode");
        for pos in 0..snap.bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = snap.bytes.clone();
                corrupt[pos] ^= flip;
                // Either it still decodes (payload bits) or it errors
                // — but it never panics.
                let _ = decode_messenger(&navp::WireSnapshot::new(snap.tag.clone(), corrupt));
            }
        }
    }
}

#[test]
fn shard_truncation_and_corruption_never_panic() {
    register_net();
    let mut rng = SplitMix64(0x0DD5);
    for _ in 0..25 {
        let shard = arb_shard(&mut rng);
        let (tag, bytes) = encode_value(&shard).expect("encode");
        for cut in 0..bytes.len() {
            assert!(
                decode_value(tag, &bytes[..cut]).is_err(),
                "truncated shard at {cut} decoded"
            );
        }
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xFF;
            let _ = decode_value(tag, &corrupt);
        }
    }
}
