//! Property tests for the flight-recorder event-log codec, in the
//! style of `crates/kv/tests/codec_props.rs`: a seeded SplitMix64
//! generator drives random record streams through encode → chunked
//! decode and targeted corruptions, so every failure is reproducible
//! from its case number.

use navp_obs::{
    decode_container, encode_container, encode_records, EventKind, FlightEvent, LogDecoder,
    LogError, Record,
};

/// SplitMix64: tiny, seedable, good enough to fuzz a codec.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn arb_string(rng: &mut Rng) -> String {
    let len = rng.below(24) as usize;
    (0..len)
        .map(|_| {
            // Mix ASCII with some multibyte chars to exercise UTF-8.
            match rng.below(12) {
                0 => 'λ',
                1 => '—',
                2 => '"',
                3 => '\\',
                _ => (b'a' + rng.below(26) as u8) as char,
            }
        })
        .collect()
}

fn arb_event(rng: &mut Rng) -> FlightEvent {
    FlightEvent {
        t_ns: rng.next(),
        kind: (1 + rng.below(12)) as u8,
        pe: rng.next() as u32,
        run: rng.next(),
        a: rng.next(),
        b: rng.next(),
    }
}

fn arb_record(rng: &mut Rng) -> Record {
    match rng.below(5) {
        0 => Record::Meta {
            reason: arb_string(rng),
            pid: rng.next(),
        },
        1 => Record::Lane {
            name: arb_string(rng),
            dropped: rng.next(),
        },
        _ => Record::Event(arb_event(rng)),
    }
}

fn arb_stream(rng: &mut Rng) -> Vec<Record> {
    let len = rng.below(40) as usize;
    (0..len).map(|_| arb_record(rng)).collect()
}

#[test]
fn streams_round_trip_across_arbitrary_split_boundaries() {
    for case in 0..200u64 {
        let mut rng = Rng(0x0B5E_55ED ^ case.wrapping_mul(0x1234_5678_9ABC_DEF1));
        let records = arb_stream(&mut rng);
        let payload = encode_records(&records);

        // Random chunking, including empty chunks.
        let mut dec = LogDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < payload.len() {
            let chunk = (rng.below(9)) as usize;
            let end = (pos + chunk).min(payload.len());
            dec.extend(&payload[pos..end]);
            pos = end;
            while let Some(rec) = dec
                .next_record()
                .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"))
            {
                got.push(rec);
            }
        }
        assert_eq!(got, records, "case {case}");
        assert_eq!(dec.pending(), 0, "case {case}: bytes left over");
    }
}

#[test]
fn truncated_tails_stay_pending_never_error() {
    for case in 0..100u64 {
        let mut rng = Rng(0x7A11 ^ case.wrapping_mul(0xDEAD_BEEF_CAFE_F00D));
        let mut records = arb_stream(&mut rng);
        records.push(Record::Event(arb_event(&mut rng))); // ensure non-empty
        let payload = encode_records(&records);

        // Cut anywhere strictly inside the final record.
        let last_start = {
            let mut pos = 0;
            for rec in &records[..records.len() - 1] {
                let mut buf = Vec::new();
                rec.encode_into(&mut buf);
                pos += buf.len();
            }
            pos
        };
        let cut = last_start + 1 + rng.below((payload.len() - last_start - 1) as u64) as usize;
        let mut dec = LogDecoder::new();
        dec.extend(&payload[..cut]);
        let mut got = Vec::new();
        while let Some(rec) = dec
            .next_record()
            .unwrap_or_else(|e| panic!("case {case}: truncation became an error: {e}"))
        {
            got.push(rec);
        }
        assert_eq!(&got[..], &records[..records.len() - 1], "case {case}");
        assert!(dec.pending() > 0, "case {case}");

        // Completing the tail recovers the final record.
        dec.extend(&payload[cut..]);
        assert_eq!(
            dec.next_record().unwrap(),
            Some(records.last().unwrap().clone()),
            "case {case}"
        );
    }
}

#[test]
fn corrupt_tags_are_rejected() {
    for case in 0..100u64 {
        let mut rng = Rng(0xBAD_7A6 ^ case.wrapping_mul(0x0123_4567_89AB_CDEF));
        let rec = arb_record(&mut rng);
        let mut payload = Vec::new();
        rec.encode_into(&mut payload);
        // Byte 2 is the tag; replace it with a byte that is no tag.
        payload[2] = (200 + rng.below(50)) as u8;
        let mut dec = LogDecoder::new();
        dec.extend(&payload);
        match dec.next_record() {
            Err(LogError::UnknownTag(_)) => {}
            other => panic!("case {case}: corrupt tag accepted: {other:?}"),
        }
    }
}

#[test]
fn length_tampering_is_caught() {
    for case in 0..100u64 {
        let mut rng = Rng(0x1E46 ^ case.wrapping_mul(0xFEED_FACE_0DDB_A11));
        let rec = Record::Event(arb_event(&mut rng));
        let mut payload = Vec::new();
        rec.encode_into(&mut payload);
        let true_len = u16::from_le_bytes([payload[0], payload[1]]);
        // Shrink the declared length: the body reader must refuse the
        // short body or the leftover bytes must break the next frame.
        let shrunk = rng.below(true_len as u64) as u16;
        payload[0] = shrunk.to_le_bytes()[0];
        payload[1] = shrunk.to_le_bytes()[1];
        let mut dec = LogDecoder::new();
        dec.extend(&payload);
        let mut saw_error = false;
        loop {
            match dec.next_record() {
                Err(_) => {
                    saw_error = true;
                    break;
                }
                Ok(Some(got)) => {
                    // A shorter prefix that still parses must not be
                    // mistaken for the original record.
                    assert_ne!(got, rec, "case {case}: tampered record round-tripped");
                }
                Ok(None) => break,
            }
        }
        let clean = !saw_error && dec.pending() == 0;
        assert!(
            saw_error || !clean,
            "case {case}: length tampering fully consumed without error"
        );
    }
}

#[test]
fn container_payload_corruption_is_always_caught() {
    for case in 0..150u64 {
        let mut rng = Rng(0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9));
        let mut records = arb_stream(&mut rng);
        records.push(Record::Event(arb_event(&mut rng)));
        let bytes = encode_container(&records);
        assert_eq!(decode_container(&bytes).unwrap(), records, "case {case}");

        // Flip a random bit anywhere in the file.
        let mut bad = bytes.clone();
        let at = rng.below(bad.len() as u64) as usize;
        bad[at] ^= 1 << rng.below(8);
        assert!(
            decode_container(&bad).is_err(),
            "case {case}: single-bit flip at {at} went undetected"
        );
    }
}

#[test]
fn event_kind_bytes_cover_exactly_one_through_twelve() {
    for b in 0..=u8::MAX {
        let known = EventKind::from_u8(b).is_some();
        assert_eq!(known, (1..=12).contains(&b), "kind byte {b}");
    }
}
