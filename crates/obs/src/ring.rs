//! The flight recorder proper: named, lock-free ring buffers of
//! compact structured events.
//!
//! Every hot-path subsystem (PE executors, the net I/O loop, the serve
//! scheduler) owns a *lane* — a fixed-capacity ring of [`FlightEvent`]
//! slots. Recording is wait-free: one `fetch_add` claims a slot index
//! and six relaxed stores fill it, with a sequence stamp written last
//! (release) so a concurrent snapshot can detect and skip torn slots.
//! Nothing on the record path allocates, locks, or touches the wall
//! clock, which is what makes it cheap enough to leave on by default.
//!
//! The recorder is **on by default**; `NAVP_FLIGHT=0` (or `off`/
//! `false`) disables it, turning [`Lane::record`] into a single
//! relaxed load and a branch. `NAVP_FLIGHT_CAP` overrides the per-lane
//! capacity (default 4096 events, rounded up to a power of two).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default events retained per lane. Each slot is 48 bytes, so a lane
/// is ~192 KiB — small enough that every PE daemon carries one.
pub const DEFAULT_LANE_CAP: usize = 4096;

/// What happened. Encoded as a single byte on the wire; the numeric
/// values are part of the postmortem format and must never be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A messenger hop was sent (`a` = destination PE, `b` = payload bytes).
    HopSend = 1,
    /// A messenger hop was received (`a` = source PE, `b` = payload bytes).
    HopRecv = 2,
    /// A synchronization signal fired (`a` = tag).
    Signal = 3,
    /// A durable checkpoint cut committed (`a` = boundary, `b` = bytes).
    CheckpointCut = 4,
    /// A fault-plan injection triggered (`a` = site code, `b` = detail).
    FaultInjected = 5,
    /// The net I/O loop flushed a connection (`a` = bytes written).
    NetFlush = 6,
    /// A sender blocked on the backpressure cap (`a` = queued bytes).
    Backpressure = 7,
    /// The scheduler admitted a job (`a` = priority).
    JobAdmit = 8,
    /// A worker started driving a job (`a` = queue age in ms).
    JobStart = 9,
    /// A job reached a terminal state (`a` = state code, `b` = wall ms).
    JobFinish = 10,
    /// A run began on this process (`a` = PE count).
    RunStart = 11,
    /// A run ended (`a` = 0 ok / 1 error).
    RunEnd = 12,
}

impl EventKind {
    /// Stable lowercase name (postmortem rendering, `/debug/flight`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::HopSend => "hop_send",
            EventKind::HopRecv => "hop_recv",
            EventKind::Signal => "signal",
            EventKind::CheckpointCut => "checkpoint_cut",
            EventKind::FaultInjected => "fault_injected",
            EventKind::NetFlush => "net_flush",
            EventKind::Backpressure => "backpressure",
            EventKind::JobAdmit => "job_admit",
            EventKind::JobStart => "job_start",
            EventKind::JobFinish => "job_finish",
            EventKind::RunStart => "run_start",
            EventKind::RunEnd => "run_end",
        }
    }

    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<EventKind> {
        Some(match b {
            1 => EventKind::HopSend,
            2 => EventKind::HopRecv,
            3 => EventKind::Signal,
            4 => EventKind::CheckpointCut,
            5 => EventKind::FaultInjected,
            6 => EventKind::NetFlush,
            7 => EventKind::Backpressure,
            8 => EventKind::JobAdmit,
            9 => EventKind::JobStart,
            10 => EventKind::JobFinish,
            11 => EventKind::RunStart,
            12 => EventKind::RunEnd,
            _ => return None,
        })
    }
}

/// One recorded event. `t_ns` is nanoseconds since this process's
/// flight anchor (a monotonic `Instant`, never wall time); `run` is
/// the run-id namespace the event belongs to (0 = anonymous); `a`/`b`
/// are kind-specific operands documented on [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the process flight anchor.
    pub t_ns: u64,
    /// [`EventKind`] as its wire byte.
    pub kind: u8,
    /// PE index the event happened on (or 0 for process-wide lanes).
    pub pe: u32,
    /// Run-id namespace (= job id through navp-serve; 0 = anonymous).
    pub run: u64,
    /// First kind-specific operand.
    pub a: u64,
    /// Second kind-specific operand.
    pub b: u64,
}

/// One ring slot. `stamp` is `index + 1` once the slot's payload is
/// fully written for that index (0 = never written / in progress), so
/// readers can detect slots torn by a concurrent writer.
struct Slot {
    stamp: AtomicU64,
    t: AtomicU64,
    kindpe: AtomicU64,
    run: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            t: AtomicU64::new(0),
            kindpe: AtomicU64::new(0),
            run: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A named ring of [`FlightEvent`]s. Writers are wait-free and may be
/// many; snapshots are lock-free and non-destructive.
pub struct Lane {
    name: String,
    head: AtomicU64,
    cap: u64,
    slots: Box<[Slot]>,
}

/// A consistent-enough copy of one lane: the most recent events in
/// record order, plus how many were lost (overwritten by wraparound or
/// torn by a concurrent writer during the snapshot).
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Lane name (e.g. `pe3`, `netloop`, `sched`).
    pub name: String,
    /// Surviving events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events recorded but not present in `events`.
    pub dropped: u64,
}

impl Lane {
    fn new(name: &str, cap: usize) -> Lane {
        let cap = cap.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        Lane {
            name: name.to_string(),
            head: AtomicU64::new(0),
            cap: cap as u64,
            slots: slots.into_boxed_slice(),
        }
    }

    /// Lane name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total events ever recorded into this lane.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Wait-free; a no-op (one relaxed load and a
    /// branch) when the recorder is disabled.
    #[inline]
    pub fn record(&self, kind: EventKind, pe: u32, run: u64, a: u64, b: u64) {
        let f = flight();
        if !f.enabled.load(Ordering::Relaxed) {
            return;
        }
        let t = f.now_ns();
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx & (self.cap - 1)) as usize];
        // Invalidate first so a racing reader never stitches an old
        // stamp onto new payload words.
        slot.stamp.store(0, Ordering::Release);
        slot.t.store(t, Ordering::Relaxed);
        slot.kindpe
            .store(((kind as u64) << 32) | pe as u64, Ordering::Relaxed);
        slot.run.store(run, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(idx + 1, Ordering::Release);
    }

    /// Copy out the most recent events without disturbing writers.
    /// Slots being concurrently rewritten fail the stamp check and
    /// count as dropped instead of yielding garbage.
    pub fn snapshot(&self) -> LaneSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(self.cap);
        let mut events = Vec::with_capacity((head - lo) as usize);
        let mut torn = 0u64;
        for idx in lo..head {
            let slot = &self.slots[(idx & (self.cap - 1)) as usize];
            if slot.stamp.load(Ordering::Acquire) != idx + 1 {
                torn += 1;
                continue;
            }
            let t = slot.t.load(Ordering::Relaxed);
            let kindpe = slot.kindpe.load(Ordering::Relaxed);
            let run = slot.run.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.stamp.load(Ordering::Acquire) != idx + 1 {
                torn += 1;
                continue;
            }
            events.push(FlightEvent {
                t_ns: t,
                kind: (kindpe >> 32) as u8,
                pe: kindpe as u32,
                run,
                a,
                b,
            });
        }
        LaneSnapshot {
            name: self.name.clone(),
            events,
            dropped: lo + torn,
        }
    }
}

/// The process-wide flight recorder: a registry of lanes sharing one
/// monotonic time anchor and one enable flag.
pub struct Flight {
    enabled: AtomicBool,
    anchor: Instant,
    cap: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

impl Flight {
    fn from_env() -> Flight {
        let enabled = match std::env::var("NAVP_FLIGHT") {
            Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
            Err(_) => true,
        };
        let cap = std::env::var("NAVP_FLIGHT_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_LANE_CAP);
        Flight {
            enabled: AtomicBool::new(enabled),
            anchor: Instant::now(),
            cap,
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Is recording live?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording at runtime (tests, overhead measurement).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the process flight anchor.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Get or create the lane with this name. Registration takes a
    /// mutex, so callers cache the returned `Arc` outside hot paths.
    pub fn lane(&self, name: &str) -> Arc<Lane> {
        let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(l) = lanes.iter().find(|l| l.name == name) {
            return Arc::clone(l);
        }
        let lane = Arc::new(Lane::new(name, self.cap));
        lanes.push(Arc::clone(&lane));
        lane
    }

    /// Snapshot every lane, in registration order.
    pub fn snapshot_all(&self) -> Vec<LaneSnapshot> {
        let lanes: Vec<Arc<Lane>> = {
            let guard = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
            guard.iter().map(Arc::clone).collect()
        };
        lanes.iter().map(|l| l.snapshot()).collect()
    }
}

static FLIGHT: OnceLock<Flight> = OnceLock::new();

/// The process-wide recorder. First call reads `NAVP_FLIGHT` /
/// `NAVP_FLIGHT_CAP` and pins the time anchor.
pub fn flight() -> &'static Flight {
    FLIGHT.get_or_init(Flight::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests below share the process-global recorder (and its enable
    /// flag), so anything that toggles state takes this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn record_and_snapshot_round_trip() {
        let lane = Lane::new("t0", 64);
        // Bypass the global for a hermetic lane test: record directly.
        for i in 0..10u64 {
            let idx = lane.head.fetch_add(1, Ordering::Relaxed);
            let slot = &lane.slots[(idx & (lane.cap - 1)) as usize];
            slot.t.store(i * 100, Ordering::Relaxed);
            slot.kindpe
                .store(((EventKind::HopSend as u64) << 32) | 3, Ordering::Relaxed);
            slot.run.store(7, Ordering::Relaxed);
            slot.a.store(i, Ordering::Relaxed);
            slot.b.store(i * 2, Ordering::Relaxed);
            slot.stamp.store(idx + 1, Ordering::Release);
        }
        let snap = lane.snapshot();
        assert_eq!(snap.events.len(), 10);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events[4].a, 4);
        assert_eq!(snap.events[4].pe, 3);
        assert_eq!(snap.events[4].run, 7);
        assert_eq!(snap.events[4].kind, EventKind::HopSend as u8);
    }

    #[test]
    fn wraparound_counts_overwritten_events_as_dropped() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let lane = flight().lane("wrap-test");
        let cap = lane.cap;
        flight().set_enabled(true);
        for i in 0..(cap + 37) {
            lane.record(EventKind::Signal, 0, 0, i, 0);
        }
        let snap = lane.snapshot();
        assert_eq!(snap.events.len() as u64, cap);
        assert_eq!(snap.dropped, 37);
        // Oldest surviving event is the 38th recorded.
        assert_eq!(snap.events[0].a, 37);
        assert_eq!(snap.events.last().unwrap().a, cap + 36);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let lane = flight().lane("off-test");
        let was = flight().enabled();
        flight().set_enabled(false);
        lane.record(EventKind::Signal, 0, 0, 1, 2);
        flight().set_enabled(was);
        assert_eq!(lane.snapshot().events.len(), 0);
    }

    #[test]
    fn lanes_are_deduplicated_by_name() {
        let a = flight().lane("dedup-test");
        let b = flight().lane("dedup-test");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn kind_bytes_round_trip() {
        for k in [
            EventKind::HopSend,
            EventKind::HopRecv,
            EventKind::Signal,
            EventKind::CheckpointCut,
            EventKind::FaultInjected,
            EventKind::NetFlush,
            EventKind::Backpressure,
            EventKind::JobAdmit,
            EventKind::JobStart,
            EventKind::JobFinish,
            EventKind::RunStart,
            EventKind::RunEnd,
        ] {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(13), None);
    }

    #[test]
    fn concurrent_writers_never_produce_garbage_kinds() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let lane = flight().lane("race-test");
        flight().set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let lane = Arc::clone(&lane);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        lane.record(EventKind::HopSend, t, 9, i, i);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            let snap = lane.snapshot();
            for ev in &snap.events {
                assert!(EventKind::from_u8(ev.kind).is_some(), "torn slot leaked");
                assert_eq!(ev.run, 9);
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        let snap = lane.snapshot();
        assert_eq!(snap.events.len() as u64 + snap.dropped, 4 * 5_000);
    }
}
