//! `navp-obs` — the always-on flight recorder and its black box.
//!
//! Three pieces, deliberately dependency-free so every other crate in
//! the workspace can use them without cycles:
//!
//! * [`ring`]: per-subsystem lock-free ring buffers of compact
//!   structured events ([`EventKind`], [`FlightEvent`]), cheap enough
//!   to leave enabled by default and bitwise-neutral to run products —
//!   instrumentation observes, it never participates.
//! * [`log`]: the hand-rolled, length-prefixed event-log codec and the
//!   checksummed postmortem container ([`write_postmortem`] /
//!   [`read_postmortem`]), plus the incremental [`LogDecoder`].
//! * dump triggers (this module): [`install_panic_hook`] chains onto
//!   the process panic hook, [`install_sigquit_dump`] turns `SIGQUIT`
//!   (`kill -QUIT`, Ctrl-\\) into "write the black box, then exit with
//!   [`FLIGHT_DUMP_EXIT`]", and run-error paths call
//!   [`dump_postmortem`] directly. Every fuzzer repro and daemon crash
//!   leaves a readable `postmortem-*.navpobs` behind.

pub mod log;
pub mod ring;

pub use log::{
    decode_container, decode_records, dump_postmortem, encode_container, encode_records,
    flight_json, json_escape, read_postmortem, snapshot_records, write_postmortem, LogDecoder,
    LogError, Record,
};
pub use ring::{flight, EventKind, Flight, FlightEvent, Lane, LaneSnapshot, DEFAULT_LANE_CAP};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Exit status when a process dumps its flight recorder and exits on
/// `SIGQUIT`. Distinct from the net executor's crash (113) and
/// graceful-stop (114) statuses.
pub const FLIGHT_DUMP_EXIT: i32 = 115;

static DUMP_DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn dump_dir_cell() -> &'static Mutex<Option<PathBuf>> {
    DUMP_DIR.get_or_init(|| Mutex::new(None))
}

/// Direct future postmortems into `dir` (daemons pass their durable
/// dir so black boxes land next to checkpoints and journals).
pub fn set_dump_dir(dir: &Path) {
    let mut guard = dump_dir_cell().lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(dir.to_path_buf());
}

/// Where postmortems go: [`set_dump_dir`] if called, else the
/// `NAVP_FLIGHT_DIR` environment variable, else the current directory.
pub fn dump_dir() -> PathBuf {
    if let Some(dir) = dump_dir_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
    {
        return dir;
    }
    match std::env::var("NAVP_FLIGHT_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("."),
    }
}

/// Dump the flight recorder into [`dump_dir`], reporting the path on
/// stderr. Best-effort: failures are reported, never propagated —
/// dump paths run inside panic handlers.
pub fn dump_now(reason: &str) -> Option<PathBuf> {
    match dump_postmortem(&dump_dir(), reason) {
        Ok(path) => {
            eprintln!("navp-obs: flight recorder dumped to {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("navp-obs: flight dump failed: {e}");
            None
        }
    }
}

/// Chain a flight-recorder dump onto the process panic hook. The
/// previous hook (backtrace printing) still runs afterwards.
/// Idempotent: installs once per process.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = match info.location() {
                Some(loc) => format!("panic at {}:{}", loc.file(), loc.line()),
                None => "panic".to_string(),
            };
            dump_now(&reason);
            prev(info);
        }));
    });
}

// Raw signal(2), mirroring `navp_net::pe::install_stop_handlers`: the
// workspace links no libc crate, and the handler body is one relaxed
// store, which is async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGQUIT: i32 = 3;

static SIGQUIT_SEEN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigquit(_sig: i32) {
    SIGQUIT_SEEN.store(true, Ordering::Relaxed);
}

/// Has a `SIGQUIT` arrived since [`install_sigquit_dump`]?
pub fn sigquit_seen() -> bool {
    SIGQUIT_SEEN.load(Ordering::Relaxed)
}

/// Install the `SIGQUIT` black-box trigger: the handler sets a flag, a
/// detached watcher thread polls it (~50 ms) and, on the first quit,
/// dumps the flight recorder and exits with [`FLIGHT_DUMP_EXIT`].
/// Idempotent: installs once per process.
#[allow(clippy::fn_to_numeric_cast_any)]
pub fn install_sigquit_dump() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        #[cfg(unix)]
        unsafe {
            signal(SIGQUIT, on_sigquit as extern "C" fn(i32) as usize);
        }
        std::thread::Builder::new()
            .name("navp-obs-sigquit".into())
            .spawn(|| loop {
                if sigquit_seen() {
                    dump_now("sigquit");
                    std::process::exit(FLIGHT_DUMP_EXIT);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            })
            .expect("spawn sigquit watcher");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_dir_prefers_explicit_over_env_over_cwd() {
        // No config, no env (the test env does not set NAVP_FLIGHT_DIR).
        assert_eq!(dump_dir(), PathBuf::from("."));
        let dir = std::env::temp_dir().join("navpobs-dir-test");
        set_dump_dir(&dir);
        assert_eq!(dump_dir(), dir);
    }

    #[test]
    fn exit_codes_stay_distinct() {
        assert_ne!(FLIGHT_DUMP_EXIT, 113, "net CRASH_EXIT");
        assert_ne!(FLIGHT_DUMP_EXIT, 114, "net GRACEFUL_EXIT");
    }
}
