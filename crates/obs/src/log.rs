//! The structured event-log codec and the postmortem file format.
//!
//! Same discipline as `frame.rs` and the job journal: hand-rolled,
//! length-prefixed, little-endian, no serde. The *log* is a stream of
//! records, each `u16 len | u8 tag | body`; the *postmortem file*
//! wraps one complete log in a checksummed container (magic, version,
//! payload length, FNV-1a over the payload) committed by atomic
//! tmp-write + rename, mirroring `navp::durable`.
//!
//! [`LogDecoder`] consumes the record stream incrementally: bytes can
//! arrive split at arbitrary boundaries, a truncated tail simply
//! yields `Ok(None)` until more bytes arrive, and a corrupt record
//! (unknown tag, short body, trailing bytes inside a record) is a hard
//! error — the same tolerate-truncation / reject-corruption split the
//! frame decoder makes.

use crate::ring::{flight, EventKind, FlightEvent, LaneSnapshot};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Postmortem container magic. Eight bytes, never versioned — version
/// bumps go through the explicit version field.
pub const MAGIC: [u8; 8] = *b"NAVPOBS\0";

/// Container format version.
pub const VERSION: u32 = 1;

/// Hard cap on one record body; the `u16` length prefix enforces it
/// structurally.
pub const MAX_RECORD: usize = u16::MAX as usize;

const TAG_META: u8 = 1;
const TAG_LANE: u8 = 2;
const TAG_EVENT: u8 = 3;

/// Why a decode or file read failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The container file does not start with [`MAGIC`].
    BadMagic,
    /// The container version is not [`VERSION`].
    BadVersion(u32),
    /// The file ended before the declared payload/checksum.
    Truncated,
    /// FNV-1a over the payload did not match the stored checksum.
    ChecksumMismatch,
    /// A record carried an unknown tag byte.
    UnknownTag(u8),
    /// A record body was malformed.
    BadRecord(&'static str),
    /// Underlying I/O failure (message text; the `io::Error` kind).
    Io(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a navp postmortem (bad magic)"),
            LogError::BadVersion(v) => write!(f, "unsupported postmortem version {v}"),
            LogError::Truncated => write!(f, "postmortem truncated"),
            LogError::ChecksumMismatch => write!(f, "postmortem checksum mismatch"),
            LogError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            LogError::BadRecord(what) => write!(f, "malformed record: {what}"),
            LogError::Io(e) => write!(f, "postmortem i/o: {e}"),
        }
    }
}

impl std::error::Error for LogError {}

/// One record in the event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// File header: why the dump happened and which process wrote it.
    Meta {
        /// Dump trigger (`panic: …`, `sigquit`, `run_error: …`).
        reason: String,
        /// OS process id of the writer.
        pid: u64,
    },
    /// Start of one lane's events; applies until the next `Lane`.
    Lane {
        /// Lane name (e.g. `pe3`, `netloop`, `sched`).
        name: String,
        /// Events recorded into the ring but lost to wraparound/tearing.
        dropped: u64,
    },
    /// One flight event, belonging to the most recent `Lane`.
    Event(FlightEvent),
}

/// FNV-1a over a byte slice; same constants as `navp::durable` so the
/// two on-disk formats share one checksum story.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long for log");
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> BodyReader<'a> {
        BodyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LogError> {
        if self.buf.len() - self.pos < n {
            return Err(LogError::BadRecord("short body"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, LogError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> Result<u16, LogError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn get_u32(&mut self) -> Result<u32, LogError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64, LogError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_str(&mut self) -> Result<String, LogError> {
        let len = self.get_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LogError::BadRecord("non-utf8 string"))
    }

    fn finish(&self) -> Result<(), LogError> {
        if self.pos != self.buf.len() {
            return Err(LogError::BadRecord("trailing bytes in record"));
        }
        Ok(())
    }
}

impl Record {
    /// Append this record (length prefix included) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(48);
        match self {
            Record::Meta { reason, pid } => {
                body.push(TAG_META);
                put_str(&mut body, reason);
                put_u64(&mut body, *pid);
            }
            Record::Lane { name, dropped } => {
                body.push(TAG_LANE);
                put_str(&mut body, name);
                put_u64(&mut body, *dropped);
            }
            Record::Event(ev) => {
                body.push(TAG_EVENT);
                put_u64(&mut body, ev.t_ns);
                body.push(ev.kind);
                put_u32(&mut body, ev.pe);
                put_u64(&mut body, ev.run);
                put_u64(&mut body, ev.a);
                put_u64(&mut body, ev.b);
            }
        }
        assert!(body.len() <= MAX_RECORD, "record exceeds MAX_RECORD");
        put_u16(out, body.len() as u16);
        out.extend_from_slice(&body);
    }

    fn decode_body(body: &[u8]) -> Result<Record, LogError> {
        let mut r = BodyReader::new(body);
        let rec = match r.get_u8()? {
            TAG_META => Record::Meta {
                reason: r.get_str()?,
                pid: r.get_u64()?,
            },
            TAG_LANE => Record::Lane {
                name: r.get_str()?,
                dropped: r.get_u64()?,
            },
            TAG_EVENT => {
                let t_ns = r.get_u64()?;
                let kind = r.get_u8()?;
                if EventKind::from_u8(kind).is_none() {
                    return Err(LogError::BadRecord("unknown event kind"));
                }
                Record::Event(FlightEvent {
                    t_ns,
                    kind,
                    pe: r.get_u32()?,
                    run: r.get_u64()?,
                    a: r.get_u64()?,
                    b: r.get_u64()?,
                })
            }
            t => return Err(LogError::UnknownTag(t)),
        };
        r.finish()?;
        Ok(rec)
    }
}

/// Encode a record stream (no container framing).
pub fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 48);
    for rec in records {
        rec.encode_into(&mut out);
    }
    out
}

/// Incremental record-stream decoder: feed bytes in arbitrary chunks,
/// pull complete records out. A partial record at the end of the
/// buffered bytes is not an error — `next_record` returns `Ok(None)`
/// until the rest arrives.
#[derive(Default)]
pub struct LogDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl LogDecoder {
    /// Fresh decoder with no buffered bytes.
    pub fn new() -> LogDecoder {
        LogDecoder::default()
    }

    /// Buffer more stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so a long stream fed
        // in small chunks doesn't hold its whole history in memory.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete record.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete record, `Ok(None)` if the tail is
    /// still incomplete, or an error for a corrupt record.
    pub fn next_record(&mut self) -> Result<Option<Record>, LogError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 2 {
            return Ok(None);
        }
        let len = u16::from_le_bytes([avail[0], avail[1]]) as usize;
        if len == 0 {
            return Err(LogError::BadRecord("empty record"));
        }
        if avail.len() < 2 + len {
            return Ok(None);
        }
        let rec = Record::decode_body(&avail[2..2 + len])?;
        self.pos += 2 + len;
        Ok(Some(rec))
    }
}

/// Decode a complete record stream; a partial record at the end is
/// [`LogError::Truncated`] (inside a checksummed container that can
/// only mean a writer bug, not torn I/O).
pub fn decode_records(payload: &[u8]) -> Result<Vec<Record>, LogError> {
    let mut dec = LogDecoder::new();
    dec.extend(payload);
    let mut records = Vec::new();
    while let Some(rec) = dec.next_record()? {
        records.push(rec);
    }
    if dec.pending() != 0 {
        return Err(LogError::Truncated);
    }
    Ok(records)
}

/// Wrap a record stream in the checksummed container format.
pub fn encode_container(records: &[Record]) -> Vec<u8> {
    let payload = encode_records(records);
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

/// Parse a container; the dual of [`encode_container`].
pub fn decode_container(bytes: &[u8]) -> Result<Vec<Record>, LogError> {
    if bytes.len() < 8 {
        return Err(LogError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(LogError::BadMagic);
    }
    if bytes.len() < 20 {
        return Err(LogError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(LogError::BadVersion(version));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    if bytes.len() < 20 + len + 8 {
        return Err(LogError::Truncated);
    }
    let payload = &bytes[20..20 + len];
    let stored = u64::from_le_bytes(bytes[20 + len..20 + len + 8].try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(LogError::ChecksumMismatch);
    }
    decode_records(payload)
}

/// Write a postmortem container atomically: tmp file, fsync, rename.
pub fn write_postmortem(path: &Path, records: &[Record]) -> Result<(), LogError> {
    let bytes = encode_container(records);
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| LogError::Io(e.to_string());
    let mut f = fs::File::create(&tmp).map_err(io)?;
    f.write_all(&bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

/// Read and verify a postmortem file.
pub fn read_postmortem(path: &Path) -> Result<Vec<Record>, LogError> {
    let bytes = fs::read(path).map_err(|e| LogError::Io(e.to_string()))?;
    decode_container(&bytes)
}

/// Build the record stream for the current process: a `Meta` header
/// followed by every lane's snapshot.
pub fn current_records(reason: &str) -> Vec<Record> {
    snapshot_records(reason, &flight().snapshot_all())
}

/// Build a record stream from explicit snapshots (tests, remote dumps).
pub fn snapshot_records(reason: &str, snaps: &[LaneSnapshot]) -> Vec<Record> {
    let mut records = Vec::with_capacity(1 + snaps.iter().map(|s| s.events.len() + 1).sum::<usize>());
    records.push(Record::Meta {
        reason: reason.to_string(),
        pid: std::process::id() as u64,
    });
    for snap in snaps {
        records.push(Record::Lane {
            name: snap.name.clone(),
            dropped: snap.dropped,
        });
        records.extend(snap.events.iter().map(|&ev| Record::Event(ev)));
    }
    records
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Dump the current flight recorder into `dir` and return the file
/// path. Filenames are `postmortem-<pid>-<seq>.navpobs` — pid plus a
/// process-local counter, no wall clock.
pub fn dump_postmortem(dir: &Path, reason: &str) -> Result<PathBuf, LogError> {
    fs::create_dir_all(dir).map_err(|e| LogError::Io(e.to_string()))?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "postmortem-{}-{}.navpobs",
        std::process::id(),
        seq
    ));
    write_postmortem(&path, &current_records(reason))?;
    Ok(path)
}

/// Append `s` to `out` with JSON string escaping (quotes, backslashes
/// and control characters). Shared by `/debug/*` endpoint renderers.
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render the live recorder as JSON for `/debug/flight`: one object
/// per lane with its drop count and the `limit` most recent events.
pub fn flight_json(limit: usize) -> String {
    let snaps = flight().snapshot_all();
    let mut out = String::with_capacity(4096);
    out.push_str("{\"enabled\":");
    out.push_str(if flight().enabled() { "true" } else { "false" });
    out.push_str(",\"lanes\":[");
    for (i, snap) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape(&snap.name, &mut out);
        let skip = snap.events.len().saturating_sub(limit);
        out.push_str(&format!(
            "\",\"recorded\":{},\"dropped\":{},\"events\":[",
            snap.events.len() as u64 + snap.dropped,
            snap.dropped + skip as u64,
        ));
        for (j, ev) in snap.events[skip..].iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let kind = EventKind::from_u8(ev.kind).map(|k| k.name()).unwrap_or("?");
            out.push_str(&format!(
                "{{\"t_ns\":{},\"kind\":\"{}\",\"pe\":{},\"run\":{},\"a\":{},\"b\":{}}}",
                ev.t_ns, kind, ev.pe, ev.run, ev.a, ev.b
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Meta {
                reason: "sigquit".into(),
                pid: 1234,
            },
            Record::Lane {
                name: "pe0".into(),
                dropped: 3,
            },
            Record::Event(FlightEvent {
                t_ns: 1000,
                kind: EventKind::HopSend as u8,
                pe: 0,
                run: 7,
                a: 1,
                b: 4096,
            }),
            Record::Event(FlightEvent {
                t_ns: 2000,
                kind: EventKind::CheckpointCut as u8,
                pe: 0,
                run: 7,
                a: 2,
                b: 65536,
            }),
            Record::Lane {
                name: "netloop".into(),
                dropped: 0,
            },
            Record::Event(FlightEvent {
                t_ns: 1500,
                kind: EventKind::Backpressure as u8,
                pe: 0,
                run: 0,
                a: 67108864,
                b: 0,
            }),
        ]
    }

    #[test]
    fn records_round_trip_through_the_stream_codec() {
        let records = sample_records();
        let payload = encode_records(&records);
        assert_eq!(decode_records(&payload).unwrap(), records);
    }

    #[test]
    fn container_round_trips_and_detects_corruption() {
        let records = sample_records();
        let bytes = encode_container(&records);
        assert_eq!(decode_container(&bytes).unwrap(), records);

        // Flip one payload byte: checksum must catch it.
        let mut bad = bytes.clone();
        bad[24] ^= 0xFF;
        assert!(matches!(
            decode_container(&bad),
            Err(LogError::ChecksumMismatch) | Err(LogError::Truncated)
        ));

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_container(&bad), Err(LogError::BadMagic));

        // Future version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert_eq!(decode_container(&bad), Err(LogError::BadVersion(99)));

        // Truncated tail.
        assert_eq!(
            decode_container(&bytes[..bytes.len() - 3]),
            Err(LogError::Truncated)
        );
    }

    #[test]
    fn decoder_tolerates_arbitrary_split_boundaries() {
        let records = sample_records();
        let payload = encode_records(&records);
        // Feed one byte at a time — the harshest split.
        let mut dec = LogDecoder::new();
        let mut got = Vec::new();
        for &b in &payload {
            dec.extend(&[b]);
            while let Some(rec) = dec.next_record().unwrap() {
                got.push(rec);
            }
        }
        assert_eq!(got, records);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn truncated_tail_is_not_an_error_until_completed() {
        let payload = encode_records(&sample_records());
        let mut dec = LogDecoder::new();
        dec.extend(&payload[..payload.len() - 1]);
        while dec.next_record().unwrap().is_some() {}
        assert!(dec.pending() > 0, "partial record stays pending");
        dec.extend(&payload[payload.len() - 1..]);
        assert!(dec.next_record().unwrap().is_some());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn corrupt_records_are_rejected() {
        // Unknown tag.
        let mut stream = Vec::new();
        put_u16(&mut stream, 1);
        stream.push(200);
        let mut dec = LogDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_record(), Err(LogError::UnknownTag(200)));

        // Event with an unknown kind byte.
        let mut body = vec![TAG_EVENT];
        put_u64(&mut body, 1);
        body.push(99); // not an EventKind
        put_u32(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        let mut stream = Vec::new();
        put_u16(&mut stream, body.len() as u16);
        stream.extend_from_slice(&body);
        let mut dec = LogDecoder::new();
        dec.extend(&stream);
        assert!(matches!(dec.next_record(), Err(LogError::BadRecord(_))));

        // Trailing bytes inside a record.
        let mut body = vec![TAG_META];
        put_str(&mut body, "x");
        put_u64(&mut body, 1);
        body.push(0xAA);
        let mut stream = Vec::new();
        put_u16(&mut stream, body.len() as u16);
        stream.extend_from_slice(&body);
        let mut dec = LogDecoder::new();
        dec.extend(&stream);
        assert!(matches!(dec.next_record(), Err(LogError::BadRecord(_))));

        // Zero-length record.
        let mut stream = Vec::new();
        put_u16(&mut stream, 0);
        let mut dec = LogDecoder::new();
        dec.extend(&stream);
        assert!(matches!(dec.next_record(), Err(LogError::BadRecord(_))));
    }

    #[test]
    fn postmortem_file_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("navpobs-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pm.navpobs");
        let records = sample_records();
        write_postmortem(&path, &records).unwrap();
        assert_eq!(read_postmortem(&path).unwrap(), records);
        assert!(!path.with_extension("tmp").exists(), "tmp file renamed away");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flight_json_is_well_formed_enough() {
        let lane = flight().lane("json-test");
        lane.record(EventKind::Signal, 1, 2, 3, 4);
        let json = flight_json(8);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"lanes\""));
        assert!(json.contains("json-test"));
        // Balanced braces/brackets — a cheap structural check.
        let braces = json.matches('{').count();
        assert_eq!(braces, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
