//! Line-format validator for the Prometheus text exposition format.
//!
//! The repo policy is "hand-rolled writers get hand-rolled parsers"
//! (cf. the Chrome-trace JSON round-trip in `navp-trace`): anything we
//! serialize must be re-readable by our own code so tests can prove
//! the output well-formed without external crates. This validator
//! checks the subset of the 0.0.4 text format the registry emits:
//! comment/`HELP`/`TYPE` lines, sample lines with optional labels,
//! metric-name and label charsets, `TYPE` before samples, and
//! histogram invariants (`+Inf` bucket present, cumulative bucket
//! counts monotone, `_count` equal to the `+Inf` bucket).

use std::collections::HashMap;

/// What a successful validation saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromSummary {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Owned label pairs parsed off a sample line.
type Labels = Vec<(String, String)>;

/// Parse one `{k="v",...}` label block; returns the labels and the
/// rest of the line after the closing `}`.
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    let mut rest = s.strip_prefix('{').ok_or("expected '{'")?;
    let mut labels = Vec::new();
    loop {
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let eq = rest.find('=').ok_or_else(|| format!("missing '=' in labels near {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label {name} value not quoted"))?;
        // Scan the escaped value to its closing quote.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let end = loop {
            let (i, c) = chars.next().ok_or_else(|| format!("unterminated value for {name}"))?;
            match c {
                '"' => break i,
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape {other:?} in label {name}")),
                },
                c => value.push(c),
            }
        };
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
}

/// Family a sample name belongs to once histogram suffixes are peeled.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validate Prometheus text exposition produced by this crate (or any
/// conforming writer). Returns a [`PromSummary`] on success and a
/// message naming the first offending line otherwise.
pub fn validate_prometheus(text: &str) -> Result<PromSummary, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // name -> ordered (le, count) pairs seen for histogram checks.
    let mut buckets: HashMap<String, Vec<(String, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().ok_or(format!("line {n}: TYPE without kind"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in HELP {name:?}"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or(format!("line {n}: sample without value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad sample name {name:?}"));
        }
        let fam = family_of(name);
        match types.get(fam) {
            Some(_) => {}
            None if types.contains_key(name) => {}
            None => return Err(format!("line {n}: sample {name} before any TYPE for {fam}")),
        }
        let rest = &line[name_end..];
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest)?
        } else {
            (Vec::new(), rest)
        };
        let value_str = rest.trim_start_matches(' ');
        if value_str.is_empty() || value_str.contains(' ') {
            // A single trailing timestamp would be legal Prometheus but
            // this writer never emits one; reject to keep tests strict.
            return Err(format!("line {n}: expected exactly one value, got {value_str:?}"));
        }
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: bad value {v:?} for {name}"))?,
        };
        samples += 1;

        let histo = types.get(fam).map(|k| k == "histogram").unwrap_or(false);
        if histo && name.ends_with("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or(format!("line {n}: {name} without le label"))?;
            let key = series_key(fam, &labels);
            buckets.entry(key).or_default().push((le, value));
        }
        if histo && name.ends_with("_count") {
            counts.insert(series_key(fam, &labels), value);
        }
    }

    for (key, series) in &buckets {
        let inf = series.iter().find(|(le, _)| le == "+Inf");
        let inf_count = match inf {
            Some((_, c)) => *c,
            None => return Err(format!("histogram {key}: no +Inf bucket")),
        };
        let mut prev = 0.0f64;
        for (le, c) in series {
            if *c + 1e-9 < prev {
                return Err(format!(
                    "histogram {key}: bucket le={le} count {c} below previous {prev} (not cumulative)"
                ));
            }
            prev = *c;
        }
        if let Some(total) = counts.get(key) {
            if (*total - inf_count).abs() > 1e-9 {
                return Err(format!(
                    "histogram {key}: _count {total} != +Inf bucket {inf_count}"
                ));
            }
        }
    }

    Ok(PromSummary {
        families: types.len(),
        samples,
    })
}

/// Identify one histogram series: family name plus its non-`le`
/// labels.
fn series_key(fam: &str, labels: &[(String, String)]) -> String {
    let mut key = fam.to_string();
    for (k, v) in labels {
        if k != "le" {
            key.push_str(&format!("|{k}={v}"));
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP navp_hops_total hops\n\
# TYPE navp_hops_total counter\n\
navp_hops_total{pe=\"0\"} 12\n\
navp_hops_total{pe=\"1\"} 9\n\
# TYPE navp_park_wait_ns histogram\n\
navp_park_wait_ns_bucket{le=\"1\"} 0\n\
navp_park_wait_ns_bucket{le=\"4\"} 2\n\
navp_park_wait_ns_bucket{le=\"+Inf\"} 3\n\
navp_park_wait_ns_sum 42\n\
navp_park_wait_ns_count 3\n";
        let s = validate_prometheus(text).expect("valid");
        assert_eq!(s.families, 2);
        assert_eq!(s.samples, 7);
    }

    #[test]
    fn rejects_samples_before_type() {
        let err = validate_prometheus("navp_x_total 1\n").unwrap_err();
        assert!(err.contains("before any TYPE"), "{err}");
    }

    #[test]
    fn rejects_bad_names_and_values() {
        assert!(validate_prometheus("# TYPE 9bad counter\n").is_err());
        let err =
            validate_prometheus("# TYPE navp_x_total counter\nnavp_x_total one\n").unwrap_err();
        assert!(err.contains("bad value"), "{err}");
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_bucket{le=\"4\"} 3\n\
h_bucket{le=\"+Inf\"} 5\n\
h_count 5\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn rejects_missing_inf_bucket() {
        let text = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_count 5\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn rejects_count_mismatching_inf() {
        let text = "\
# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 5\n\
h_count 4\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("_count"), "{err}");
    }

    #[test]
    fn parses_escaped_label_values() {
        let text = "# TYPE x counter\nx{l=\"a\\\"b\\\\c\\nd\"} 1\n";
        validate_prometheus(text).expect("escapes are legal");
    }
}
