//! Point-in-time, wire-friendly metric snapshots.
//!
//! A [`MetricsSnapshot`] is the flattened form of a registry: one
//! [`Sample`] per series, histograms already expanded to cumulative
//! `_bucket`/`_sum`/`_count` samples. It is what the net layer ships
//! in `MetricsDump` frames and what `RunOutput::metrics` carries, and
//! it merges across PEs by summing samples with identical
//! `(name, labels)` keys.

use crate::escape_label;

/// What kind of sample a flattened series is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotone counter (histogram buckets flatten to counters too).
    Counter,
    /// Instantaneous signed value.
    Gauge,
}

impl SampleKind {
    /// Stable wire tag for this kind.
    pub fn to_u8(self) -> u8 {
        match self {
            SampleKind::Counter => 0,
            SampleKind::Gauge => 1,
        }
    }

    /// Inverse of [`SampleKind::to_u8`]; unknown tags decode as
    /// counters (forward compatibility over strictness — a snapshot is
    /// diagnostic data).
    pub fn from_u8(v: u8) -> SampleKind {
        match v {
            1 => SampleKind::Gauge,
            _ => SampleKind::Counter,
        }
    }
}

/// One flattened metric series at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (`navp_hops_total`, `navp_park_wait_ns_bucket`, …).
    pub name: String,
    /// Label pairs, including any `le` bound for bucket samples.
    pub labels: Vec<(String, String)>,
    /// Counter or gauge semantics, controlling how merges combine it.
    pub kind: SampleKind,
    /// Sample value.
    pub value: f64,
}

/// A flattened, mergeable view of a metrics registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Flattened samples in registration order.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Fold `other` into `self`: samples with the same
    /// `(name, labels)` key are summed (counters accumulate; summing
    /// gauges like queue depths yields the cluster-wide total), new
    /// keys are appended in order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for s in &other.samples {
            match self
                .samples
                .iter_mut()
                .find(|m| m.name == s.name && m.labels == s.labels)
            {
                Some(m) => m.value += s.value,
                None => self.samples.push(s.clone()),
            }
        }
    }

    /// Value of the sample with this exact `(name, labels)` key.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.value)
    }

    /// Sum of every sample named `name`, across all label sets — e.g.
    /// total hops over all PEs.
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Render the snapshot as Prometheus-style sample lines (no
    /// `# HELP`/`# TYPE` headers — a snapshot no longer knows family
    /// boundaries). Useful for logging aggregated cluster metrics.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}=\"{}\"", k, escape_label(v)));
                }
                out.push('}');
            }
            if s.value.fract() == 0.0 && s.value.abs() < 9.0e15 {
                out.push_str(&format!(" {}\n", s.value as i64));
            } else {
                out.push_str(&format!(" {}\n", s.value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, pe: &str, v: f64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: vec![("pe".to_string(), pe.to_string())],
            kind: SampleKind::Counter,
            value: v,
        }
    }

    #[test]
    fn merge_sums_matching_keys_and_appends_new_ones() {
        let mut a = MetricsSnapshot {
            samples: vec![sample("navp_hops_total", "0", 3.0)],
        };
        let b = MetricsSnapshot {
            samples: vec![
                sample("navp_hops_total", "0", 2.0),
                sample("navp_hops_total", "1", 7.0),
            ],
        };
        a.merge(&b);
        assert_eq!(a.value("navp_hops_total", &[("pe", "0")]), Some(5.0));
        assert_eq!(a.value("navp_hops_total", &[("pe", "1")]), Some(7.0));
        assert_eq!(a.total("navp_hops_total"), 12.0);
        assert_eq!(a.value("navp_hops_total", &[("pe", "2")]), None);
    }

    #[test]
    fn kind_roundtrips_through_wire_tag() {
        for k in [SampleKind::Counter, SampleKind::Gauge] {
            assert_eq!(SampleKind::from_u8(k.to_u8()), k);
        }
        assert_eq!(SampleKind::from_u8(250), SampleKind::Counter);
    }

    #[test]
    fn to_prometheus_prints_integral_values_exactly() {
        let snap = MetricsSnapshot {
            samples: vec![sample("navp_hops_total", "0", 41.0)],
        };
        assert_eq!(snap.to_prometheus(), "navp_hops_total{pe=\"0\"} 41\n");
    }
}
