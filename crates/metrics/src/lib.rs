//! Live metrics for the NavP runtime.
//!
//! The crate provides the always-on observability layer the executors
//! thread through their hot paths: lock-free [`Counter`]s, [`Gauge`]s
//! and log-bucket [`Histogram`]s on relaxed atomics, registered in a
//! [`MetricsRegistry`] that renders hand-rolled Prometheus text-format
//! exposition (no serde — same policy as `ChromeTrace::to_chrome_json`
//! in `navp-trace`). The overhead discipline mirrors `PeRecorder`:
//! instrumented code holds an `Option<Arc<RunMetrics>>` and pays one
//! predictable branch when metrics are off; when on, each event is one
//! or two relaxed `fetch_add`s on a cache-line the owning PE thread
//! mostly has to itself.
//!
//! - [`RunMetrics`] is the shared metric set every executor exports
//!   (hops, hop bytes, events, park time, injections, checkpoints,
//!   journal commits, fault injections, frame codec bytes, queue
//!   depths), pre-registered with stable `navp_*` names.
//! - [`MetricsSnapshot`] is a point-in-time flattened view that can be
//!   shipped over the wire (the `MetricsCollect`/`MetricsDump` frames
//!   in `navp-net`) and merged across PEs.
//! - [`serve_http`] is a minimal HTTP/1.1 responder on std TCP serving
//!   `GET /metrics` (Prometheus exposition) and `GET /healthz` (JSON)
//!   — what `navp-pe --metrics-addr` binds.
//! - [`validate_prometheus`] is a line-format validator used by tests
//!   and the exposition round-trip checks.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

mod expo;
mod http;
mod snapshot;

pub use expo::{validate_prometheus, PromSummary};
pub use http::{serve_http, serve_http_with, RouteFn};
pub use snapshot::{MetricsSnapshot, Sample, SampleKind};

/// A monotonically increasing counter on one relaxed atomic.
///
/// All operations are `Ordering::Relaxed`: metrics are statistical and
/// never used for synchronization, so no fences are paid on the hot
/// path.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depths,
/// connected-peer counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets; upper bounds are the powers of
/// four `4^0 ..= 4^(BUCKETS-1)`, i.e. 1 to ~1.07e9, plus `+Inf`.
pub const BUCKETS: usize = 16;

/// Upper bound of finite bucket `i`: `4^i`.
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << (2 * i)
}

/// A fixed log-scale histogram of non-negative integer observations
/// (byte counts, nanoseconds).
///
/// Buckets are powers of four — coarse, but two bits of resolution per
/// bucket is plenty for "is this hop 1 KiB or 1 MiB" questions, and a
/// fixed array of relaxed atomics keeps `observe` allocation-free and
/// wait-free. Bucket counts are stored per-bucket and cumulated only
/// at exposition time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// Record one observation: three relaxed `fetch_add`s, no branches
    /// beyond the overflow test.
    #[inline]
    pub fn observe(&self, v: u64) {
        // Index of the first bucket with bound >= v: ceil(log4 v),
        // computed from the bit length of v-1 (v <= 1 lands in bucket
        // 0, whose bound is 4^0 = 1).
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).div_ceil(2)
        };
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative counts per finite bucket (`counts[i]` = observations
    /// `<= 4^i`), plus the total (the `+Inf` bucket).
    pub fn cumulative(&self) -> ([u64; BUCKETS], u64) {
        let mut counts = [0u64; BUCKETS];
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            counts[i] = acc;
        }
        (counts, acc + self.overflow.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket that crosses the target rank — the standard
    /// Prometheus `histogram_quantile` estimate, bounded by the
    /// power-of-4 bucket resolution. Returns `None` on an empty
    /// histogram; observations past the last finite bucket clamp to
    /// its bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let (counts, total) = self.cumulative();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        for (i, &cum) in counts.iter().enumerate() {
            if (cum as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { bucket_bound(i - 1) as f64 };
                let hi = bucket_bound(i) as f64;
                let below = if i == 0 { 0 } else { counts[i - 1] };
                let in_bucket = cum - below;
                if in_bucket == 0 {
                    return Some(hi);
                }
                let frac = (rank - below as f64) / in_bucket as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(bucket_bound(BUCKETS - 1) as f64)
    }
}

/// What a registered metric family is, for `# TYPE` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` suffix by convention).
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-bucket histogram (`_bucket`/`_sum`/`_count` exposition).
    Histogram,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    inst: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A set of named metric families, each holding labeled series.
///
/// Registration takes a mutex (cold path, run setup only); the handles
/// it returns are plain `Arc`s updated lock-free. Registering the same
/// `(name, labels)` twice returns the existing handle, so per-PE
/// instruments can be re-derived idempotently.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut fams = self.families.lock().expect("metrics registry poisoned");
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(f.kind, kind, "metric {name} re-registered with a different kind");
                f
            }
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(s) = fam.series.iter().find(|s| s.labels == owned) {
            return clone_instrument(&s.inst);
        }
        let inst = make();
        fam.series.push(Series {
            labels: owned,
            inst: clone_instrument(&inst),
        });
        inst
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Register a *pre-existing* counter handle under a name. Used when
    /// the instrument must exist before the registry does (the frame
    /// reader threads in `navp-pe` start counting decode bytes before
    /// the `Start` frame decides whether metrics are on).
    pub fn counter_arc(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        c: Arc<Counter>,
    ) -> Arc<Counter> {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(c)
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Register a *pre-existing* gauge handle under a name — the gauge
    /// twin of [`MetricsRegistry::counter_arc`]. Used when the
    /// instrument must exist before the registry does (the net event
    /// loop tracks pending bytes from process start; a session adopts
    /// the gauge once metrics are switched on).
    pub fn gauge_arc(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        g: Arc<Gauge>,
    ) -> Arc<Gauge> {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(g)
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` headers followed by
    /// one sample line per series, histograms expanded to cumulative
    /// `_bucket{le=...}` plus `_sum`/`_count`.
    pub fn render(&self) -> String {
        let fams = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for f in fams.iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
            for s in &f.series {
                match &s.inst {
                    Instrument::Counter(c) => {
                        push_sample(&mut out, &f.name, &s.labels, None, c.get() as f64)
                    }
                    Instrument::Gauge(g) => {
                        push_sample(&mut out, &f.name, &s.labels, None, g.get() as f64)
                    }
                    Instrument::Histogram(h) => {
                        let (cum, total) = h.cumulative();
                        for (i, c) in cum.iter().enumerate() {
                            push_sample(
                                &mut out,
                                &format!("{}_bucket", f.name),
                                &s.labels,
                                Some(&format!("{}", bucket_bound(i))),
                                *c as f64,
                            );
                        }
                        push_sample(
                            &mut out,
                            &format!("{}_bucket", f.name),
                            &s.labels,
                            Some("+Inf"),
                            total as f64,
                        );
                        push_sample(&mut out, &format!("{}_sum", f.name), &s.labels, None, h.sum() as f64);
                        push_sample(&mut out, &format!("{}_count", f.name), &s.labels, None, total as f64);
                    }
                }
            }
        }
        out
    }

    /// Flatten the registry into a point-in-time [`MetricsSnapshot`]
    /// (histograms become per-bound `_bucket` samples plus `_sum` and
    /// `_count`), suitable for wire transport and cross-PE merging.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fams = self.families.lock().expect("metrics registry poisoned");
        let mut samples = Vec::new();
        for f in fams.iter() {
            for s in &f.series {
                match &s.inst {
                    Instrument::Counter(c) => samples.push(Sample {
                        name: f.name.clone(),
                        labels: s.labels.clone(),
                        kind: SampleKind::Counter,
                        value: c.get() as f64,
                    }),
                    Instrument::Gauge(g) => samples.push(Sample {
                        name: f.name.clone(),
                        labels: s.labels.clone(),
                        kind: SampleKind::Gauge,
                        value: g.get() as f64,
                    }),
                    Instrument::Histogram(h) => {
                        let (cum, total) = h.cumulative();
                        for (i, c) in cum.iter().enumerate() {
                            let mut labels = s.labels.clone();
                            labels.push(("le".to_string(), format!("{}", bucket_bound(i))));
                            samples.push(Sample {
                                name: format!("{}_bucket", f.name),
                                labels,
                                kind: SampleKind::Counter,
                                value: *c as f64,
                            });
                        }
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), "+Inf".to_string()));
                        samples.push(Sample {
                            name: format!("{}_bucket", f.name),
                            labels,
                            kind: SampleKind::Counter,
                            value: total as f64,
                        });
                        samples.push(Sample {
                            name: format!("{}_sum", f.name),
                            labels: s.labels.clone(),
                            kind: SampleKind::Counter,
                            value: h.sum() as f64,
                        });
                        samples.push(Sample {
                            name: format!("{}_count", f.name),
                            labels: s.labels.clone(),
                            kind: SampleKind::Counter,
                            value: total as f64,
                        });
                    }
                }
            }
        }
        MetricsSnapshot { samples }
    }
}

fn clone_instrument(i: &Instrument) -> Instrument {
    match i {
        Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
        Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
        Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
    }
}

fn push_sample(out: &mut String, name: &str, labels: &[(String, String)], le: Option<&str>, v: f64) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, val) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}=\"{}\"", k, escape_label(val)));
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("le=\"{le}\""));
        }
        out.push('}');
    }
    // Counters and bucket counts are integers; print them without a
    // fractional part so the exposition stays exact and diffable.
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!(" {}\n", v as i64));
    } else {
        out.push_str(&format!(" {v}\n"));
    }
}

pub(crate) fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Per-PE slice of the shared run metric set.
#[derive(Clone)]
pub struct PeMetrics {
    /// Messenger hops departed from this PE (`navp_hops_total`).
    pub hops: Arc<Counter>,
    /// Bytes moved by those hops, payload + fixed migration-state
    /// overhead (`navp_hop_bytes_total`).
    pub hop_bytes: Arc<Counter>,
    /// Messenger compute steps executed here (`navp_steps_total`).
    pub steps: Arc<Counter>,
    /// Events signaled on this PE (`navp_events_signaled_total`).
    pub signals: Arc<Counter>,
    /// Event waits that parked a messenger here
    /// (`navp_events_waited_total`).
    pub waits: Arc<Counter>,
    /// Messengers injected at this PE (`navp_injections_total`).
    pub injections: Arc<Counter>,
    /// Total nanoseconds messengers spent parked on events here
    /// (`navp_park_ns_total`).
    pub park_ns: Arc<Counter>,
    /// Messengers currently queued for execution on this PE
    /// (`navp_queue_depth`).
    pub queue_depth: Arc<Gauge>,
}

/// The shared metric set every executor exports, pre-registered under
/// stable `navp_*` names in one [`MetricsRegistry`].
///
/// Executors hold an `Option<Arc<RunMetrics>>`; the `Option` test is
/// the single disabled-path branch. Per-PE instruments carry a
/// `pe="<k>"` label; process/cluster-wide ones are unlabeled.
pub struct RunMetrics {
    /// The registry all instruments live in (what `/metrics` renders).
    pub registry: Arc<MetricsRegistry>,
    /// Per-PE instruments, indexed by PE id.
    pub pe: Vec<PeMetrics>,
    /// Messenger state checkpoints registered at delivery points
    /// (`navp_checkpoints_total`).
    pub checkpoints: Arc<Counter>,
    /// Serialized bytes of those checkpoints
    /// (`navp_checkpoint_bytes_total`).
    pub checkpoint_bytes: Arc<Counter>,
    /// Write-journal commit batches (`navp_journal_commits_total`).
    pub journal_commits: Arc<Counter>,
    /// Durable checkpoint flushes — atomic cut files committed to disk
    /// (`navp_durable_flushes_total`).
    pub durable_flushes: Arc<Counter>,
    /// Bytes written by durable checkpoint flushes, container overhead
    /// included (`navp_durable_bytes_total`).
    pub durable_bytes: Arc<Counter>,
    /// Faults actually injected by a `FaultPlan` — crashes, delays,
    /// drops, lost signals (`navp_fault_injections_total`).
    pub faults: Arc<Counter>,
    /// Trace ring-buffer events lost to capacity
    /// (`navp_trace_dropped_events_total`).
    pub trace_dropped: Arc<Counter>,
    /// Wire bytes produced by frame encoding, after any send-side
    /// fault filtering (`navp_frame_encode_bytes_total`).
    pub frame_encode_bytes: Arc<Counter>,
    /// Wire bytes consumed by frame decoding
    /// (`navp_frame_decode_bytes_total`).
    pub frame_decode_bytes: Arc<Counter>,
    /// Frames queued toward peers but not yet written
    /// (`navp_send_queue_depth`).
    pub send_queue_depth: Arc<Gauge>,
    /// Distribution of per-hop payload sizes in bytes
    /// (`navp_hop_payload_bytes`).
    pub hop_payload_bytes: Arc<Histogram>,
    /// Distribution of event-park durations in nanoseconds
    /// (`navp_park_wait_ns`).
    pub park_wait_ns: Arc<Histogram>,
}

impl RunMetrics {
    /// Build the shared metric set for `pes` processing elements on a
    /// fresh registry.
    pub fn new(pes: usize) -> Arc<RunMetrics> {
        RunMetrics::on_registry(Arc::new(MetricsRegistry::new()), pes)
    }

    /// Build the shared metric set on an existing registry (used by
    /// `navp-pe`, whose registry outlives individual runs and also
    /// holds the early-created frame-decode counter).
    pub fn on_registry(registry: Arc<MetricsRegistry>, pes: usize) -> Arc<RunMetrics> {
        let mut pe = Vec::with_capacity(pes);
        for k in 0..pes {
            let l = format!("{k}");
            let labels: &[(&str, &str)] = &[("pe", l.as_str())];
            pe.push(PeMetrics {
                hops: registry.counter("navp_hops_total", "Messenger hops departed, by source PE", labels),
                hop_bytes: registry.counter(
                    "navp_hop_bytes_total",
                    "Bytes moved by messenger hops (payload + migration state), by source PE",
                    labels,
                ),
                steps: registry.counter("navp_steps_total", "Messenger compute steps executed, by PE", labels),
                signals: registry.counter(
                    "navp_events_signaled_total",
                    "Events signaled, by signaling PE",
                    labels,
                ),
                waits: registry.counter(
                    "navp_events_waited_total",
                    "Event waits that parked a messenger, by PE",
                    labels,
                ),
                injections: registry.counter(
                    "navp_injections_total",
                    "Messengers injected into the computation, by PE",
                    labels,
                ),
                park_ns: registry.counter(
                    "navp_park_ns_total",
                    "Nanoseconds messengers spent parked on events, by PE",
                    labels,
                ),
                queue_depth: registry.gauge(
                    "navp_queue_depth",
                    "Messengers queued for execution, by PE",
                    labels,
                ),
            });
        }
        Arc::new(RunMetrics {
            checkpoints: registry.counter(
                "navp_checkpoints_total",
                "Messenger checkpoints registered at delivery points",
                &[],
            ),
            checkpoint_bytes: registry.counter(
                "navp_checkpoint_bytes_total",
                "Serialized bytes of registered messenger checkpoints",
                &[],
            ),
            journal_commits: registry.counter(
                "navp_journal_commits_total",
                "Write-journal commit batches",
                &[],
            ),
            durable_flushes: registry.counter(
                "navp_durable_flushes_total",
                "Durable checkpoint cut files committed to disk",
                &[],
            ),
            durable_bytes: registry.counter(
                "navp_durable_bytes_total",
                "Bytes written by durable checkpoint flushes",
                &[],
            ),
            faults: registry.counter(
                "navp_fault_injections_total",
                "Faults injected by the active fault plan (crashes, delays, drops, lost signals)",
                &[],
            ),
            trace_dropped: registry.counter(
                "navp_trace_dropped_events_total",
                "Trace ring-buffer events dropped at capacity",
                &[],
            ),
            frame_encode_bytes: registry.counter(
                "navp_frame_encode_bytes_total",
                "Wire bytes produced by frame encoding",
                &[],
            ),
            frame_decode_bytes: registry.counter(
                "navp_frame_decode_bytes_total",
                "Wire bytes consumed by frame decoding",
                &[],
            ),
            send_queue_depth: registry.gauge(
                "navp_send_queue_depth",
                "Frames queued toward peers but not yet written",
                &[],
            ),
            hop_payload_bytes: registry.histogram(
                "navp_hop_payload_bytes",
                "Per-hop payload size in bytes",
                &[],
            ),
            park_wait_ns: registry.histogram(
                "navp_park_wait_ns",
                "Event-park duration in nanoseconds",
                &[],
            ),
            pe,
            registry,
        })
    }

    /// Per-PE instruments for PE `k`, if `k` is in range.
    ///
    /// Net daemons run a single PE but keep the full-width vector so
    /// PE ids line up across processes; this accessor keeps call sites
    /// honest about bounds.
    pub fn pe(&self, k: usize) -> Option<&PeMetrics> {
        self.pe.get(k)
    }

    /// Point-in-time snapshot of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_powers_of_four() {
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(1), 4);
        assert_eq!(bucket_bound(2), 16);
        assert_eq!(bucket_bound(15), 1 << 30);
    }

    #[test]
    fn histogram_observe_lands_in_the_right_bucket() {
        let h = Histogram::new();
        for v in [0, 1, 2, 4, 5, 16, 17, 64, 1 << 30, (1 << 30) + 1] {
            h.observe(v);
        }
        let (cum, total) = h.cumulative();
        assert_eq!(total, 10);
        assert_eq!(h.count(), 10);
        assert_eq!(cum[0], 2, "0 and 1 <= 4^0");
        assert_eq!(cum[1], 4, "2 and 4 <= 4^1");
        assert_eq!(cum[2], 6, "5 and 16 <= 4^2");
        assert_eq!(cum[3], 8, "17 and 64 <= 4^3");
        assert_eq!(cum[15], 9, "2^30 <= 4^15; 2^30+1 overflows to +Inf");
        assert_eq!(h.sum(), 1 + 2 + 4 + 5 + 16 + 17 + 64 + (1u64 << 30) + (1 << 30) + 1);
    }

    #[test]
    fn histogram_quantile_estimates() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 100 observations spread inside the (16, 64] bucket.
        for i in 0..100u64 {
            h.observe(17 + (i % 48));
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(
            (16.0..=64.0).contains(&p50),
            "median must land inside its bucket, got {p50}"
        );
        // All observations in one bucket → p99 also inside it.
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 64.0 && p99 >= p50, "p99 {p99} vs p50 {p50}");
        // Overflow observations clamp to the last finite bound.
        let big = Histogram::new();
        big.observe(u64::MAX / 2);
        assert_eq!(big.quantile(0.5), Some(bucket_bound(BUCKETS - 1) as f64));
    }

    #[test]
    fn registry_renders_valid_prometheus() {
        let r = MetricsRegistry::new();
        let c = r.counter("navp_hops_total", "hops", &[("pe", "0")]);
        c.add(3);
        let g = r.gauge("navp_queue_depth", "depth", &[("pe", "0")]);
        g.set(2);
        let h = r.histogram("navp_hop_payload_bytes", "payload", &[]);
        h.observe(100);
        h.observe(5_000_000_000); // +Inf
        let text = r.render();
        assert!(text.contains("# TYPE navp_hops_total counter"), "{text}");
        assert!(text.contains("navp_hops_total{pe=\"0\"} 3"), "{text}");
        assert!(text.contains("navp_queue_depth{pe=\"0\"} 2"), "{text}");
        assert!(text.contains("navp_hop_payload_bytes_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("navp_hop_payload_bytes_count 2"), "{text}");
        let summary = validate_prometheus(&text).expect("valid exposition");
        assert_eq!(summary.families, 3);
        assert!(summary.samples >= 2 + BUCKETS);
    }

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("navp_x_total", "x", &[("pe", "1")]);
        let b = r.counter("navp_x_total", "x", &[("pe", "1")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series returns the same handle");
        let other = r.counter("navp_x_total", "x", &[("pe", "2")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn counter_arc_adopts_a_preexisting_handle() {
        let pre = Arc::new(Counter::new());
        pre.add(9);
        let r = MetricsRegistry::new();
        let got = r.counter_arc("navp_pre_total", "pre", &[], Arc::clone(&pre));
        assert_eq!(got.get(), 9);
        assert!(r.render().contains("navp_pre_total 9"));
    }

    #[test]
    fn run_metrics_has_per_pe_labels() {
        let m = RunMetrics::new(4);
        m.pe(2).expect("pe 2").hops.add(5);
        m.faults.inc();
        let text = m.registry.render();
        assert!(text.contains("navp_hops_total{pe=\"2\"} 5"), "{text}");
        assert!(text.contains("navp_fault_injections_total 1"), "{text}");
        validate_prometheus(&text).expect("valid");
        assert!(m.pe(4).is_none());
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter("navp_esc_total", "esc", &[("what", "a\"b\\c\nd")]).inc();
        let text = r.render();
        assert!(text.contains("what=\"a\\\"b\\\\c\\nd\""), "{text}");
        validate_prometheus(&text).expect("escaped labels still validate");
    }
}
