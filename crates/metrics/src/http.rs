//! A minimal HTTP/1.1 responder for `/metrics` and `/healthz`.
//!
//! Deliberately tiny: blocking std TCP, one thread per connection,
//! `Connection: close` on every response. That is the right shape for
//! a scrape endpoint — Prometheus polls at second granularity, and a
//! `navp-pe` daemon should spend its threads moving messengers, not
//! keeping HTTP keep-alives warm.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::MetricsRegistry;

/// Longest request head we will buffer before giving up on a client.
const MAX_REQUEST: usize = 8 * 1024;

/// Serve `GET /metrics` (Prometheus text exposition of `registry`) and
/// `GET /healthz` (whatever JSON `health` returns) on `addr`.
///
/// Binds synchronously — so a bad address fails fast and `addr` may
/// use port 0 to let the OS pick — then spawns a detached accept loop
/// and returns the bound address. The loop runs until the process
/// exits; there is deliberately no shutdown handle, matching the
/// lifetime of the `navp-pe` daemon that owns it.
pub fn serve_http(
    addr: &str,
    registry: Arc<MetricsRegistry>,
    health: Arc<dyn Fn() -> String + Send + Sync>,
) -> std::io::Result<SocketAddr> {
    serve_http_with(addr, registry, health, Vec::new())
}

/// A dynamically-registered GET route: returns `(content_type, body)`,
/// rendered fresh per request.
pub type RouteFn = Arc<dyn Fn() -> (String, String) + Send + Sync>;

/// [`serve_http`] plus extra GET routes (`/debug/flight`,
/// `/debug/jobs`, …). Routes are matched by exact path after the two
/// built-ins; everything else stays 404.
pub fn serve_http_with(
    addr: &str,
    registry: Arc<MetricsRegistry>,
    health: Arc<dyn Fn() -> String + Send + Sync>,
    routes: Vec<(String, RouteFn)>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let routes = Arc::new(routes);
    std::thread::Builder::new()
        .name("navp-metrics-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let registry = Arc::clone(&registry);
                let health = Arc::clone(&health);
                let routes = Arc::clone(&routes);
                // One short-lived thread per scrape; a slow client can
                // stall its own thread but not the accept loop.
                let _ = std::thread::Builder::new()
                    .name("navp-metrics-conn".to_string())
                    .spawn(move || {
                        let _ = handle(stream, &registry, health.as_ref(), &routes);
                    });
            }
        })?;
    Ok(bound)
}

fn handle(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    health: &(dyn Fn() -> String + Send + Sync),
    routes: &[(String, RouteFn)],
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head. Bodies are ignored: both
    // endpoints are GETs.
    while !head_complete(&buf) {
        if buf.len() > MAX_REQUEST {
            return respond(&mut stream, 431, "text/plain", "request head too large\n");
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    match path {
        "/metrics" => {
            let body = registry.render();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let body = health();
            respond(&mut stream, 200, "application/json", &body)
        }
        path => match routes.iter().find(|(p, _)| p == path) {
            Some((_, route)) => {
                let (ctype, body) = route();
                respond(&mut stream, 200, &ctype, &body)
            }
            None => respond(&mut stream, 404, "text/plain", "try /metrics or /healthz\n"),
        },
    }
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn respond(stream: &mut TcpStream, status: u16, ctype: &str, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blocking one-shot GET against a local address; returns
    /// (status, body).
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        let status: u16 = out
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status");
        let body = out
            .split("\r\n\r\n")
            .nth(1)
            .unwrap_or("")
            .to_string();
        (status, body)
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("navp_http_test_total", "t", &[]).add(7);
        let health: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "{\"ok\":true}".to_string());
        let addr = serve_http("127.0.0.1:0", Arc::clone(&registry), health).expect("bind");

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("navp_http_test_total 7"), "{body}");
        crate::validate_prometheus(&body).expect("served exposition validates");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
    }

    #[test]
    fn extra_routes_are_served_and_everything_else_stays_404() {
        let registry = Arc::new(MetricsRegistry::new());
        let health: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "{}".to_string());
        let route: RouteFn =
            Arc::new(|| ("application/json".to_string(), "{\"jobs\":[]}".to_string()));
        let addr = serve_http_with(
            "127.0.0.1:0",
            Arc::clone(&registry),
            health,
            vec![("/debug/jobs".to_string(), route)],
        )
        .expect("bind");

        let (status, body) = get(addr, "/debug/jobs");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"jobs\":[]}");

        let (status, _) = get(addr, "/metrics");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/debug/nope");
        assert_eq!(status, 404);
    }
}
