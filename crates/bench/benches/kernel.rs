//! Wall-clock benchmark of the shared block kernel — the common
//! denominator of every implementation (paper block orders 128/256) —
//! with the retired naive i-k-j loop kept as the reference point the
//! packed kernel's speedup is measured against.

use navp_bench::timing::Group;
use navp_matrix::gen::seeded_matrix;
use navp_matrix::kernel::{gemm_acc, gemm_acc_naive, gemm_flops};

fn bench_kernel() {
    for order in [32usize, 64, 128, 256] {
        let a = seeded_matrix(order, 1);
        let b = seeded_matrix(order, 2);
        let mut out = vec![0.0f64; order * order];
        let mut g = Group::new("block_gemm").flops(gemm_flops(order, order, order));
        g.bench(&format!("packed_{order}"), || {
            gemm_acc(&mut out, a.as_slice(), b.as_slice(), order, order, order);
            std::hint::black_box(&mut out);
        });
        g.bench(&format!("naive_{order}"), || {
            gemm_acc_naive(&mut out, a.as_slice(), b.as_slice(), order, order, order);
            std::hint::black_box(&mut out);
        });
    }
}

fn bench_blocked_vs_naive() {
    let n = 256;
    let a = seeded_matrix(n, 3);
    let b = seeded_matrix(n, 4);
    let mut group = Group::new("dense_multiply_256")
        .sample_size(10)
        .flops(gemm_flops(n, n, n));
    group.bench("naive_ijk", || {
        std::hint::black_box(a.multiply_naive(&b).expect("shapes"))
    });
    group.bench("kernel_packed", || {
        std::hint::black_box(a.multiply(&b).expect("shapes"))
    });
    let ba = navp_matrix::BlockedMatrix::from_matrix(&a, 64).expect("blocked");
    let bb = navp_matrix::BlockedMatrix::from_matrix(&b, 64).expect("blocked");
    group.bench("blocked_64", || {
        std::hint::black_box(ba.multiply_blocked(&bb).expect("shapes"))
    });
}

fn main() {
    bench_kernel();
    bench_blocked_vs_naive();
}
