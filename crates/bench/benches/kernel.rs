//! Wall-clock benchmark of the shared block kernel — the common
//! denominator of every implementation (paper block orders 128/256).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use navp_matrix::gen::seeded_matrix;
use navp_matrix::kernel::{gemm_acc, gemm_flops};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_gemm");
    for order in [32usize, 64, 128, 256] {
        let a = seeded_matrix(order, 1);
        let b = seeded_matrix(order, 2);
        let mut out = vec![0.0f64; order * order];
        group.throughput(Throughput::Elements(gemm_flops(order, order, order)));
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |bch, &n| {
            bch.iter(|| {
                gemm_acc(&mut out, a.as_slice(), b.as_slice(), n, n, n);
                std::hint::black_box(&mut out);
            })
        });
    }
    group.finish();
}

fn bench_blocked_vs_naive(c: &mut Criterion) {
    let n = 256;
    let a = seeded_matrix(n, 3);
    let b = seeded_matrix(n, 4);
    let mut group = c.benchmark_group("dense_multiply_256");
    group.sample_size(10);
    group.bench_function("naive_ijk", |bch| {
        bch.iter(|| std::hint::black_box(a.multiply_naive(&b).expect("shapes")))
    });
    group.bench_function("kernel_ikj", |bch| {
        bch.iter(|| std::hint::black_box(a.multiply(&b).expect("shapes")))
    });
    group.bench_function("blocked_64", |bch| {
        let ba = navp_matrix::BlockedMatrix::from_matrix(&a, 64).expect("blocked");
        let bb = navp_matrix::BlockedMatrix::from_matrix(&b, 64).expect("blocked");
        bch.iter(|| std::hint::black_box(ba.multiply_blocked(&bb).expect("shapes")))
    });
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_blocked_vs_naive);
criterion_main!(benches);
