//! Real-arithmetic wall-clock comparison of every implementation on
//! this machine's threads — the modern-hardware counterpart of the
//! virtual-time tables. Sizes are kept small so `cargo bench` finishes
//! quickly; at this scale on one shared-memory host the problem sits
//! far below the communication/compute crossover, so these benches
//! chiefly demonstrate that every implementation runs correctly and at
//! comparable cost on real threads — the paper's cluster-scale ordering
//! lives in the virtual-time tables (`--bin all`).

use navp_bench::timing::Group;
use navp_matrix::Grid2D;
use navp_mm::config::MmConfig;
use navp_mm::gentleman::GentlemanOpts;
use navp_mm::runner::{
    run_mp_threads, run_mp_threads_unverified, run_navp_threads, run_navp_threads_unverified,
    MpAlg, NavpStage,
};

fn bench_navp_stages() {
    let cfg = MmConfig::real(384, 32); // nb = 12: divisible by 2, 3, 4
    let flops = 2 * (cfg.n as u64).pow(3);
    let mut group = Group::new("wall_navp_stages_n384")
        .sample_size(10)
        .flops(flops);
    for stage in NavpStage::ALL {
        let grid = if stage.is_1d() {
            Grid2D::line(4).expect("grid")
        } else {
            Grid2D::new(2, 2).expect("grid")
        };
        // Verify once; the timed iterations skip the (expensive)
        // sequential-reference comparison.
        let once = run_navp_threads(stage, &cfg, grid).expect("run");
        assert_eq!(once.verified, Some(true), "{}", stage.name());
        group.bench(stage.name(), || {
            run_navp_threads_unverified(stage, &cfg, grid)
                .expect("run")
                .wall
        });
    }
}

fn bench_mp_baselines() {
    let cfg = MmConfig::real(384, 32);
    let grid = Grid2D::new(2, 2).expect("grid");
    let flops = 2 * (cfg.n as u64).pow(3);
    let mut group = Group::new("wall_mp_baselines_n384")
        .sample_size(10)
        .flops(flops);
    for alg in [MpAlg::Gentleman(GentlemanOpts::default()), MpAlg::Summa] {
        let once = run_mp_threads(alg, &cfg, grid).expect("run");
        assert_eq!(once.verified, Some(true), "{}", alg.name());
        group.bench(alg.name(), || {
            run_mp_threads_unverified(alg, &cfg, grid)
                .expect("run")
                .wall
        });
    }
}

fn main() {
    bench_navp_stages();
    bench_mp_baselines();
}
