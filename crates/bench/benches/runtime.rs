//! Microbenchmarks of the NavP runtime itself: hop round-trips, event
//! signalling, injection fan-out, and discrete-event simulation
//! throughput. These quantify the "daemon overhead" the cost model's
//! `daemon_overhead` parameter stands in for.

use navp::script::Script;
use navp::{Cluster, Effect, Key, SimExecutor, ThreadExecutor};
use navp_bench::timing::Group;
use navp_sim::CostModel;

/// A single messenger ping-pongs between two PEs `hops` times.
fn ping_pong_cluster(hops: usize) -> Cluster {
    let mut cl = Cluster::new(2).expect("two PEs");
    cl.inject(
        0,
        Script::new("pingpong").then_each(hops, |i, _| Effect::Hop((i + 1) % 2)),
    );
    cl
}

fn bench_hops_threads() {
    let hops = 1_000;
    Group::new("thread_executor")
        .throughput(hops as u64)
        .bench("hop_roundtrips_1k", || {
            ThreadExecutor::new()
                .run(ping_pong_cluster(hops))
                .expect("run")
        });
}

fn bench_events_threads() {
    // Producer/consumer pair exchanging N signals through counting events.
    let n = 1_000usize;
    let build = move || {
        let mut cl = Cluster::new(1).expect("one PE");
        cl.inject(
            0,
            Script::new("producer").then_each(n, |i, ctx| {
                ctx.signal(Key::at("tok", i));
                Effect::Hop(0)
            }),
        );
        cl.inject(
            0,
            Script::new("consumer").then_each(n, |i, _| Effect::WaitEvent(Key::at("tok", i))),
        );
        cl
    };
    Group::new("thread_executor")
        .throughput(n as u64)
        .bench("event_handoffs_1k", || {
            ThreadExecutor::new().run(build()).expect("run")
        });
}

fn bench_des_throughput() {
    // Pure simulator speed: events processed per second on a phantom
    // pipelined run (the workload behind the table regeneration).
    let cfg = navp_mm::config::MmConfig::phantom(1024, 128);
    let grid = navp_matrix::Grid2D::line(4).expect("grid");
    Group::new("sim_executor").bench("pipe1d_phantom_1024", || {
        navp_mm::runner::run_navp_sim(
            navp_mm::runner::NavpStage::Pipe1D,
            &cfg,
            grid,
            &CostModel::paper_cluster(),
            false,
        )
        .expect("run")
    });
}

fn bench_injection_fanout() {
    let n = 1_000usize;
    let build = move || {
        let mut cl = Cluster::new(4).expect("four PEs");
        cl.inject(
            0,
            Script::new("spawner").then(move |ctx| {
                for i in 0..n {
                    ctx.inject(Script::new("child").then(move |_| Effect::Hop(i % 4)));
                }
                Effect::Done
            }),
        );
        cl
    };
    Group::new("sim_executor")
        .throughput(n as u64)
        .bench("inject_1k_agents", || {
            SimExecutor::new(CostModel::paper_cluster())
                .run(build())
                .expect("run")
        });
}

fn main() {
    bench_hops_threads();
    bench_events_threads();
    bench_des_throughput();
    bench_injection_fanout();
}
