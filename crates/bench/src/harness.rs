//! Runs the paper's tables under the calibrated cost model and prints
//! measured-vs-published numbers.

use crate::paper::Table;
use navp::{FaultPlan, FaultStats};
use navp_matrix::Grid2D;
use navp_mm::config::MmConfig;
use navp_mm::gentleman::GentlemanOpts;
use navp_mm::runner::{
    run_mp_sim, run_navp_sim, run_navp_sim_faulted, run_seq_sim, MpAlg, NavpStage, RunnerError,
};
use navp_sim::CostModel;
use std::fmt::Write as _;

/// Which implementation regenerates a published column.
#[derive(Clone, Copy, Debug)]
pub enum CellImpl {
    /// A NavP stage.
    Navp(NavpStage),
    /// A message-passing baseline.
    Mp(MpAlg),
}

/// Map a published column name onto the implementation that regenerates
/// it (the ScaLAPACK column maps onto the SUMMA stand-in; DESIGN.md
/// documents the substitution).
pub fn impl_of(column: &str) -> CellImpl {
    match column {
        "NavP (1D DSC)" => CellImpl::Navp(NavpStage::Dsc1D),
        "NavP (1D pipeline)" => CellImpl::Navp(NavpStage::Pipe1D),
        "NavP (1D phase)" => CellImpl::Navp(NavpStage::Phase1D),
        "NavP (2D DSC)" => CellImpl::Navp(NavpStage::Dsc2D),
        "NavP (2D pipeline)" => CellImpl::Navp(NavpStage::Pipe2D),
        "NavP (2D phase)" => CellImpl::Navp(NavpStage::Dpc2D),
        "MPI (Gentleman)" => CellImpl::Mp(MpAlg::Gentleman(GentlemanOpts::default())),
        "ScaLAPACK" => CellImpl::Mp(MpAlg::Summa),
        other => panic!("unknown published column: {other}"),
    }
}

/// One regenerated cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Measured virtual time, seconds.
    pub time: f64,
    /// Measured speedup over the clean (non-thrashing) model sequential.
    pub speedup: f64,
    /// The paper's published time.
    pub paper_time: f64,
    /// The paper's published speedup.
    pub paper_speedup: f64,
}

/// One regenerated row (fixed matrix order).
pub struct Row {
    /// Matrix order.
    pub n: usize,
    /// Algorithmic block order.
    pub ab: usize,
    /// Modeled clean sequential time (speedup denominator).
    pub seq_clean: f64,
    /// Modeled sequential time under the 256 MB memory model (thrashes
    /// at large orders, like the paper's measured sequential).
    pub seq_actual: f64,
    /// Cells, one per published column.
    pub cells: Vec<Cell>,
    /// Fault/recovery counters aggregated over the row's NavP cells
    /// (all zero when the table ran fault-free).
    pub faults: FaultStats,
}

/// A fully regenerated table.
pub struct TableResult {
    /// The published table this regenerates.
    pub spec: &'static Table,
    /// Regenerated rows.
    pub rows: Vec<Row>,
}

/// Regenerate every cell of `spec` under `cost`.
pub fn run_table(spec: &'static Table, cost: &CostModel) -> Result<TableResult, RunnerError> {
    run_table_with_faults(spec, cost, None)
}

/// As [`run_table`], running every NavP cell under `plan` (the
/// message-passing baselines have no fault machinery and run clean).
/// With checkpointing on, the regenerated numbers include recovery
/// time; the per-row counters report what was injected and absorbed.
pub fn run_table_with_faults(
    spec: &'static Table,
    cost: &CostModel,
    plan: Option<&FaultPlan>,
) -> Result<TableResult, RunnerError> {
    let grid = Grid2D::new(spec.grid.0, spec.grid.1)?;
    let mut rows = Vec::with_capacity(spec.orders.len());
    for (row_idx, (&n, &ab)) in spec.orders.iter().zip(spec.blocks).enumerate() {
        let cfg = MmConfig::phantom(n, ab);
        // Clean sequential: memory never limits (the paper's fitted
        // extrapolation of the non-thrashing regime).
        let mut clean_model = *cost;
        clean_model.mem_capacity = u64::MAX;
        let seq_clean = run_seq_sim(&cfg, &clean_model)?
            .virt_seconds
            .expect("sim run");
        // Actual sequential: one PE with the real memory limit.
        let seq_actual = run_seq_sim(&cfg, cost)?.virt_seconds.expect("sim run");

        let mut cells = Vec::with_capacity(spec.columns.len());
        let mut faults = FaultStats::default();
        for (col_idx, (name, paper_times)) in spec.columns.iter().enumerate() {
            let out = match (impl_of(name), plan) {
                (CellImpl::Navp(stage), None) => run_navp_sim(stage, &cfg, grid, cost, false)?,
                (CellImpl::Navp(stage), Some(plan)) => {
                    run_navp_sim_faulted(stage, &cfg, grid, cost, plan.clone())?
                }
                (CellImpl::Mp(alg), _) => run_mp_sim(alg, &cfg, grid, cost)?,
            };
            if let Some(f) = &out.faults {
                faults.absorb(f);
            }
            let time = out.virt_seconds.expect("sim run");
            cells.push(Cell {
                time,
                speedup: seq_clean / time,
                paper_time: paper_times[row_idx],
                paper_speedup: spec.paper_speedup(col_idx, row_idx),
            });
        }
        rows.push(Row {
            n,
            ab,
            seq_clean,
            seq_actual,
            cells,
            faults,
        });
    }
    Ok(TableResult { spec, rows })
}

impl TableResult {
    /// Render the regenerated table next to the published numbers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.spec.id, self.spec.title);
        let _ = writeln!(
            out,
            "(measured = calibrated virtual-time model; paper = ICPP'05 published)"
        );
        let _ = write!(out, "{:>6} {:>4} | {:>9} {:>9} |", "N", "blk", "seq(s)", "seq-thr");
        for (name, _) in self.spec.columns {
            let _ = write!(out, " {name:^28} |");
        }
        out.push('\n');
        let _ = write!(out, "{:>6} {:>4} | {:>9} {:>9} |", "", "", "", "");
        for _ in self.spec.columns {
            let _ = write!(out, " {:>8} {:>5} {:>6} {:>5} |", "t(s)", "SU", "t-pap", "SUpap");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(
                out,
                "{:>6} {:>4} | {:>9.2} {:>9.2} |",
                row.n, row.ab, row.seq_clean, row.seq_actual
            );
            for cell in &row.cells {
                let _ = write!(
                    out,
                    " {:>8.2} {:>5.2} {:>6.0} {:>5.2} |",
                    cell.time, cell.speedup, cell.paper_time, cell.paper_speedup
                );
            }
            out.push('\n');
            if row.faults.any() {
                let f = &row.faults;
                let _ = writeln!(
                    out,
                    "{:>11} | faults: crashes={} redelivered={} replayed_writes={} \
                     send_retries={} hops_delayed={} hops_dropped={} signals_lost={}",
                    "",
                    f.crashes,
                    f.redelivered,
                    f.replayed_writes,
                    f.send_retries,
                    f.hops_delayed,
                    f.hops_dropped,
                    f.signals_lost
                );
            }
        }
        out
    }

    /// Worst absolute speedup deviation from the paper, over all cells.
    pub fn max_speedup_deviation(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .map(|c| (c.speedup - c.paper_speedup).abs())
            .fold(0.0, f64::max)
    }

    /// Check the *ordering* of the columns at each row: who wins must
    /// match the paper wherever the paper's own gap is decisive. A row
    /// is a mismatch when some pair of columns is separated by more than
    /// `tol` (relative) in the published numbers AND the measured times
    /// order that pair the other way by more than `tol`.
    pub fn ranking_mismatches(&self, tol: f64) -> Vec<usize> {
        let beats = |a: f64, b: f64| a < b * (1.0 - tol);
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                for x in 0..row.cells.len() {
                    for y in 0..row.cells.len() {
                        let (cx, cy) = (&row.cells[x], &row.cells[y]);
                        if beats(cx.paper_time, cy.paper_time) && beats(cy.time, cx.time) {
                            return true;
                        }
                    }
                }
                false
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn impl_mapping_covers_every_published_column() {
        for t in paper::ALL {
            for (name, _) in t.columns {
                let _ = impl_of(name); // panics on unknown
            }
        }
    }

    #[test]
    fn small_table_run_produces_sane_cells() {
        // A miniature stand-in spec would need a const Table; instead run
        // Table 3's first row only by truncating via a local spec is not
        // possible with &'static — so regenerate Table 3 fully at model
        // speed in release CI, and here just verify the plumbing on the
        // smallest real table (Table 2: one row, one column).
        let res = run_table(&paper::TABLE2, &CostModel::paper_cluster()).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].cells.len(), 1);
        let row = &res.rows[0];
        // Thrashing sequential must exceed clean sequential substantially.
        assert!(row.seq_actual > 1.5 * row.seq_clean);
        // DSC must land within a factor of ~1.3 of clean sequential.
        let dsc = &row.cells[0];
        assert!(dsc.speedup > 0.7 && dsc.speedup <= 1.05, "DSC {:?}", dsc);
        let art = res.render();
        assert!(art.contains("Table 2"));
        assert!(!art.contains("faults:"), "clean run renders no fault line");
    }

    #[test]
    fn faulted_table_reports_counters() {
        let plan = FaultPlan::new().crash_pe(0, 2);
        let res =
            run_table_with_faults(&paper::TABLE2, &CostModel::paper_cluster(), Some(&plan))
                .unwrap();
        let row = &res.rows[0];
        assert!(row.faults.crashes >= 1, "crash must have been injected");
        assert!(res.render().contains("faults: crashes="));
    }
}
