//! Regenerate the entire evaluation: Tables 1–4 with
//! measured-vs-published numbers and the overall shape verdict.
//! (`figures` and `ablation` are separate binaries.)

use navp_bench::harness::run_table;
use navp_bench::paper;
use navp_sim::CostModel;

fn main() {
    let cost = CostModel::paper_cluster();
    let mut all_ok = true;
    for spec in paper::ALL {
        let res = run_table(spec, &cost).expect("table run");
        println!("{}", res.render());
        let dev = res.max_speedup_deviation();
        let mism = res.ranking_mismatches(0.05);
        println!(
            "   max |speedup - paper| = {:.2}; ranking mismatches at rows {:?}\n",
            dev, mism
        );
        if dev > 1.5 {
            all_ok = false;
        }
    }
    println!(
        "Overall: {}",
        if all_ok {
            "every regenerated speedup within 1.5 of the published value"
        } else {
            "some speedups deviate by more than 1.5 — see rows above"
        }
    );
}
