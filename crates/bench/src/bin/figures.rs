//! Regenerate the paper's figures from real executions:
//!
//! * **Figure 1 (a)–(d)** — the space-time schematics of the
//!   transformations, rendered from actual traces of the sequential,
//!   1-D DSC, 1-D pipelined and 1-D phase-shifted programs on 3 PEs;
//! * **Figures 4, 6, 8, 10, 12, 14** — the initial data placements of
//!   every stage, read back from the cluster builders.

use navp_bench::layout::layout_of_cluster;
use navp_matrix::Grid2D;
use navp_mm::config::MmConfig;
use navp_mm::runner::{run_navp_sim, NavpStage};
use navp_mm::util::{Topo1D, Topo2D};
use navp_sim::CostModel;

fn main() {
    let cost = CostModel::paper_cluster();

    println!("== Figure 1: space-time diagrams (3 PEs, N=384, block 64) ==\n");
    // Small problem so the staircase structure is visible at this scale.
    let cfg = MmConfig::phantom(384, 64);
    let line3 = Grid2D::line(3).expect("grid");

    println!("(a) Sequential — one locus, one PE:");
    // Sequential runs on one PE; render over 3 columns for comparison.
    {
        let (a, b) = cfg.operands().expect("operands");
        let cl = navp_mm::seq::cluster(&cfg, &a, &b).expect("cluster");
        let rep = navp::SimExecutor::new(cost).with_trace().run(cl).expect("run");
        println!("{}", rep.trace.render_spacetime(3, 12));
    }

    for (tag, stage) in [
        ("(b) DSC — the locus chases the data", NavpStage::Dsc1D),
        ("(c) Pipelining — carriers follow each other", NavpStage::Pipe1D),
        ("(d) Phase shifting — carriers enter at different PEs", NavpStage::Phase1D),
    ] {
        println!("{tag}:");
        let out = run_navp_sim(stage, &cfg, line3, &cost, true).expect("stage run");
        println!(
            "{}",
            out.trace.expect("trace requested").render_spacetime(3, 12)
        );
    }

    println!("== Figures 4-14: initial data placements (N=8 blocks of order 2) ==\n");
    let cfg = MmConfig::phantom(8, 2);
    let (a, b) = cfg.operands().expect("operands");

    let t1 = Topo1D::new(4, 2).expect("topo");
    println!("Figure 4 (1-D DSC): A on PE0; B, C column-banded");
    println!(
        "{}",
        layout_of_cluster(&navp_mm::dsc1d::cluster(&cfg, &t1, &a, &b).expect("cluster"), 2)
    );
    println!("Figure 6 (1-D pipelined): same placement, many carriers");
    println!(
        "{}",
        layout_of_cluster(&navp_mm::pipe1d::cluster(&cfg, &t1, &a, &b).expect("cluster"), 2)
    );
    println!("Figure 8 (1-D phase-shifted): A row-banded");
    println!(
        "{}",
        layout_of_cluster(&navp_mm::phase1d::cluster(&cfg, &t1, &a, &b).expect("cluster"), 2)
    );

    let t2 = Topo2D::new(4, Grid2D::new(2, 2).expect("grid")).expect("topo");
    println!("Figure 10 (2-D DSC): A, B on the anti-diagonal; C at home");
    println!(
        "{}",
        layout_of_cluster(&navp_mm::dsc2d::cluster(&cfg, &t2, &a, &b).expect("cluster"), 2)
    );
    println!("Figure 12 (2-D pipelined): same anti-diagonal placement");
    println!(
        "{}",
        layout_of_cluster(&navp_mm::pipe2d::cluster(&cfg, &t2, &a, &b).expect("cluster"), 2)
    );
    println!("Figure 14 (2-D full DPC): A, B, C all at home — no pre-staggering");
    println!(
        "{}",
        layout_of_cluster(&navp_mm::dpc2d::cluster(&cfg, &t2, &a, &b).expect("cluster"), 2)
    );
}
