//! Networked-executor timing table: wall-clock of a 4-PE loopback TCP
//! cluster (real OS processes, serialized hops) next to the in-process
//! thread executor on the same stages and sizes.
//!
//! Run with `--release` after a workspace build (the table spawns the
//! `navp-pe` daemon that `cargo build --release` puts next to this
//! binary):
//!
//! ```text
//! cargo build --release && cargo run --release --bin netloop
//! ```
//!
//! The ratio column is the price of process isolation + TCP framing at
//! each size; it shrinks as computation grows relative to the fixed
//! per-hop serialization cost, which is the same story the paper tells
//! about communication granularity.

use navp_mm::runner::{run_navp_net, run_navp_threads_unverified, NavpStage, NetOpts};
use navp_mm::MmConfig;
use navp_matrix::Grid2D;
use std::time::Duration;

const SAMPLES: usize = 5;

fn grid_for(stage: NavpStage) -> Grid2D {
    if stage.is_1d() {
        Grid2D::line(4).expect("grid")
    } else {
        Grid2D::new(2, 2).expect("grid")
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let opts = NetOpts::default();
    println!("== navp-net vs threads, 4 PEs on 127.0.0.1, median of {SAMPLES} ==\n");
    println!(
        "{:<20} {:>5} {:>12} {:>12} {:>7} {:>8} {:>12}",
        "stage", "N", "threads", "net", "ratio", "hops", "wire bytes"
    );
    for stage in [NavpStage::Dsc1D, NavpStage::Phase1D, NavpStage::Pipe2D] {
        let grid = grid_for(stage);
        for n in [32usize, 64, 96] {
            // nb = 8 block rows: divisible by both the 4-PE line and
            // the 2x2 mesh.
            let cfg = MmConfig::real(n, n / 8).with_watchdog(Duration::from_secs(120));
            let thr = median(
                (0..SAMPLES)
                    .map(|_| {
                        run_navp_threads_unverified(stage, &cfg, grid)
                            .expect("threads")
                            .wall
                            .expect("wall")
                            .as_secs_f64()
                    })
                    .collect(),
            );
            let mut hops = 0u64;
            let mut wire = 0u64;
            let net = median(
                (0..SAMPLES)
                    .map(|_| {
                        let out = run_navp_net(stage, &cfg, grid, &opts).expect("net");
                        assert_eq!(out.verified, Some(true), "{} N={n}", stage.name());
                        hops = out.transfers;
                        wire = out.bytes;
                        out.wall.expect("wall").as_secs_f64()
                    })
                    .collect(),
            );
            println!(
                "{:<20} {:>5} {:>10.2}ms {:>10.2}ms {:>6.1}x {:>8} {:>12}",
                stage.name(),
                n,
                thr * 1e3,
                net * 1e3,
                net / thr,
                hops,
                wire
            );
        }
    }
    println!("\nnet runs verified against the sequential product on every sample");
}
