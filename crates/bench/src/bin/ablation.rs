//! Ablations of the three mechanisms Section 5 credits for NavP's edge
//! over the MPI baseline:
//!
//! 1. **Scheduling** (item 1): the straightforward MPI code's fixed
//!    reception/computation order vs hand-written overlap vs NavP's
//!    event-driven order.
//! 2. **Cache residency** (item 2): the ~4% block-triplet penalty on or
//!    off.
//! 3. **Staggering** (item 3): single-step (reverse-staggering-like,
//!    fully-connected switch) vs stepwise (Cannon) initial staggering,
//!    plus the pure communication-phase analysis of both skew schemes.

use navp_matrix::stagger;
use navp_matrix::Grid2D;
use navp_mm::config::MmConfig;
use navp_mm::gentleman::{CacheCharge, GentlemanOpts, Scheduling, Stagger};
use navp_mm::runner::{run_mp_sim, run_navp_sim, MpAlg, NavpStage};
use navp_sim::CostModel;

fn main() {
    let cost = CostModel::paper_cluster();
    let grid = Grid2D::new(3, 3).expect("grid");
    let cfg = MmConfig::phantom(3072, 128);
    println!("Ablations at N=3072, block 128, 3x3 PEs (virtual time, s)\n");

    println!("-- 1. Scheduling (Section 5 item 1) --");
    for (label, opts) in [
        ("Gentleman, strict order", GentlemanOpts::default()),
        (
            "Gentleman, hand-overlapped",
            GentlemanOpts {
                scheduling: Scheduling::Overlapped,
                ..Default::default()
            },
        ),
    ] {
        let t = run_mp_sim(MpAlg::Gentleman(opts), &cfg, grid, &cost)
            .expect("run")
            .virt_seconds
            .expect("sim");
        println!("{label:<38} {t:>9.2}");
    }
    let t = run_navp_sim(NavpStage::Dpc2D, &cfg, grid, &cost, false)
        .expect("run")
        .virt_seconds
        .expect("sim");
    println!("{:<38} {t:>9.2}", "NavP full DPC (event-driven)");

    println!("\n-- 2. Cache residency (Section 5 item 2) --");
    for (label, cache) in [
        ("Gentleman, triplet penalty (paper)", CacheCharge::MpiTriplets),
        ("Gentleman, NavP-like cache (ablated)", CacheCharge::LikeNavP),
    ] {
        let opts = GentlemanOpts {
            cache,
            ..Default::default()
        };
        let t = run_mp_sim(MpAlg::Gentleman(opts), &cfg, grid, &cost)
            .expect("run")
            .virt_seconds
            .expect("sim");
        println!("{label:<38} {t:>9.2}");
    }

    println!("\n-- 3. Initial staggering (Section 5 item 3) --");
    for (label, stg) in [
        ("Gentleman, single-step staggering", Stagger::SingleStep),
        ("Cannon, stepwise staggering", Stagger::Stepwise),
    ] {
        let opts = GentlemanOpts {
            stagger: stg,
            ..Default::default()
        };
        let t = run_mp_sim(MpAlg::Gentleman(opts), &cfg, grid, &cost)
            .expect("run")
            .virt_seconds
            .expect("sim");
        println!("{label:<38} {t:>9.2}");
    }

    println!("\nCommunication phases of the two skew schemes (one-port, full-duplex):");
    println!("{:>4} {:>16} {:>16}", "P", "forward(phases)", "reverse(phases)");
    for p in 2..=9 {
        let f = stagger::forward_transfers(p).expect("transfers");
        let r = stagger::reverse_transfers(p).expect("transfers");
        let (_, fp) = stagger::schedule_phases(&f, p);
        let (_, rp) = stagger::schedule_phases(&r, p);
        println!("{p:>4} {fp:>16} {rp:>16}");
    }
    println!();
    println!("Findings vs the paper:");
    println!(" - Scheduling: under our buffered/eager send model the strict");
    println!("   receive order costs little by itself; NavP's measured edge over");
    println!("   Gentleman comes from event-driven progress plus the cache and");
    println!("   staggering items below (the paper's LAM/TCP stack made the");
    println!("   fixed order itself costly, which a buffered model hides).");
    println!(" - Cache: removing the triplet penalty recovers ~4%, matching the");
    println!("   paper's own analysis (Section 5 item 2).");
    println!(" - Staggering: single-step beats Cannon's stepwise staggering, and");
    println!("   NavP's reverse staggering needs no staggering phase at all —");
    println!("   each block's first hop doubles as its staggering move. Under");
    println!("   the one-port edge-coloring model both skews schedule in <= 2");
    println!("   phases; the paper's TR counts 3 for forward staggering under");
    println!("   its stricter LAN model.");
}
