//! Regenerate the paper's Table 3. Run with `--release`.

use navp_bench::harness::run_table;
use navp_bench::paper::TABLE3;
use navp_sim::CostModel;

fn main() {
    let res = run_table(&TABLE3, &CostModel::paper_cluster()).expect("table run");
    print!("{}", res.render());
    println!(
        "max |speedup - paper| = {:.2}; ranking mismatches at rows {:?}",
        res.max_speedup_deviation(),
        res.ranking_mismatches(0.05)
    );
}
