//! Wall-clock perf baseline: packed vs naive GEMM kernel GFLOP/s and
//! NavP-stage wall times with effective hop bandwidth, written as
//! machine-readable JSON (`BENCH_kernel.json`, `BENCH_stages.json`) at
//! the repo root.
//!
//! Usage: `cargo run --release -p navp-bench --bin perf [-- --quick]`
//!
//! `--quick` trims sample counts and the stage problem size so the CI
//! perf smoke job finishes in a couple of minutes; the acceptance gate
//! (packed kernel strictly faster than naive at 256³) is checked in
//! both modes and failure exits non-zero.

use navp_bench::timing::{write_groups_json, Entry, Group, Metric};
use navp_matrix::gen::seeded_matrix;
use navp_matrix::kernel::{gemm_acc, gemm_acc_naive, gemm_flops};
use navp_matrix::Grid2D;
use navp_mm::config::MmConfig;
use navp_mm::runner::{run_navp_threads, run_navp_threads_unverified, NavpStage};
use std::path::{Path, PathBuf};

/// Repo root, resolved at compile time relative to this crate so the
/// JSON baselines land in the same place regardless of the cwd the
/// binary is launched from.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

struct Opts {
    quick: bool,
}

fn parse_opts() -> Opts {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("usage: perf [--quick]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (usage: perf [--quick])");
                std::process::exit(2);
            }
        }
    }
    Opts { quick }
}

/// Kernel section: packed vs naive at the paper block orders plus a
/// 512³ point where the working set is far beyond L2 and the packing
/// pays off hardest. Returns (groups, gate_ok) where the gate is
/// "packed strictly faster than naive at 256³".
fn bench_kernel(opts: &Opts) -> (Vec<Group>, bool) {
    let orders: &[usize] = if opts.quick {
        &[256, 512]
    } else {
        &[128, 256, 512]
    };
    let mut groups = Vec::new();
    let mut gate_ok = true;
    for &n in orders {
        let a = seeded_matrix(n, 1);
        let b = seeded_matrix(n, 2);
        let mut out = vec![0.0f64; n * n];
        // Bigger orders take longer per iteration; scale samples down
        // so the full run stays under a few minutes.
        let samples = match (opts.quick, n) {
            (true, _) => 5,
            (false, 512) => 7,
            (false, _) => 15,
        };
        let mut g = Group::new(&format!("kernel_{n}"))
            .sample_size(samples)
            .warmup(2)
            .flops(gemm_flops(n, n, n));
        let naive = g
            .bench(&format!("naive_{n}"), || {
                gemm_acc_naive(&mut out, a.as_slice(), b.as_slice(), n, n, n);
                std::hint::black_box(&mut out);
            })
            .clone();
        let packed = g
            .bench(&format!("packed_{n}"), || {
                gemm_acc(&mut out, a.as_slice(), b.as_slice(), n, n, n);
                std::hint::black_box(&mut out);
            })
            .clone();
        let speedup = naive.median_ns as f64 / packed.median_ns.max(1) as f64;
        println!("kernel_{n}: packed is {speedup:.2}x naive (median)");
        if n == 256 && packed.median_ns >= naive.median_ns {
            gate_ok = false;
        }
        groups.push(g);
    }
    (groups, gate_ok)
}

/// Stage section: each NavP pipeline stage timed wall-clock on real
/// threads. Per stage the first group reports GFLOP/s (2n³ flops per
/// run); the second derives effective hop bandwidth — payload bytes
/// moved between PEs divided by the same measured wall times — from
/// the transfer accounting of a verified probe run, since the byte
/// traffic of a stage is deterministic.
fn bench_stages(opts: &Opts) -> Vec<Group> {
    // nb must be divisible by the grid dims used below (line(4), 2x2).
    let (n, ab) = if opts.quick { (256, 32) } else { (384, 32) };
    let samples = if opts.quick { 3 } else { 7 };
    let cfg = MmConfig::real(n, ab);
    let flops = 2 * (cfg.n as u64).pow(3);
    let mut wall = Group::new(&format!("wall_navp_stages_n{n}"))
        .sample_size(samples)
        .warmup(1)
        .flops(flops);
    let mut hops = Group::new(&format!("hop_bandwidth_n{n}")).sample_size(samples);
    for stage in NavpStage::ALL {
        let grid = if stage.is_1d() {
            Grid2D::line(4).expect("grid")
        } else {
            Grid2D::new(2, 2).expect("grid")
        };
        // One verified probe: checks the answer against the sequential
        // reference and records the (deterministic) hop byte traffic.
        let probe = run_navp_threads(stage, &cfg, grid).expect("run");
        assert_eq!(probe.verified, Some(true), "{} failed to verify", stage.name());
        let e = wall
            .bench(stage.name(), || {
                run_navp_threads_unverified(stage, &cfg, grid)
                    .expect("run")
                    .wall
            })
            .clone();
        // Same measured wall samples, re-expressed as bytes-over-wire
        // per second. transfers is recorded for the JSON consumer.
        hops.record(Entry {
            label: format!("{}_{}transfers", stage.name(), probe.transfers),
            samples: e.samples,
            min_ns: e.min_ns,
            median_ns: e.median_ns,
            p90_ns: e.p90_ns,
            metric: Some(Metric::Bytes(probe.bytes)),
        });
    }
    vec![wall, hops]
}

fn main() {
    let opts = parse_opts();
    let root = repo_root();
    println!(
        "perf baseline ({} mode); JSON lands in {}",
        if opts.quick { "quick" } else { "full" },
        root.display()
    );

    let (kernel_groups, gate_ok) = bench_kernel(&opts);
    let kernel_path = root.join("BENCH_kernel.json");
    write_groups_json(&kernel_path, &kernel_groups).expect("write BENCH_kernel.json");
    println!("\nwrote {}", kernel_path.display());

    let stage_groups = bench_stages(&opts);
    let stages_path = root.join("BENCH_stages.json");
    write_groups_json(&stages_path, &stage_groups).expect("write BENCH_stages.json");
    println!("\nwrote {}", stages_path.display());

    if !gate_ok {
        eprintln!("FAIL: packed kernel is not faster than naive at 256^3");
        std::process::exit(1);
    }
    println!("OK: packed kernel faster than naive at 256^3");
}
