//! Wall-clock perf baseline: packed vs naive GEMM kernel GFLOP/s,
//! NavP-stage wall times with effective hop bandwidth, the flight
//! recorder's on-vs-off overhead on phase1d, and mesh
//! scaling rows (phase1d over loopback TCP at 4/16/64 PEs), written as
//! machine-readable JSON (`BENCH_kernel.json`, `BENCH_stages.json`) at
//! the repo root. With `--kv` the binary benches the key-value
//! workload instead — journey steps across 1/2/4 PEs, ops/s and scan
//! bandwidth — against `BENCH_kv.json`.
//!
//! Usage: `cargo run --release -p navp-bench --bin perf [-- --kv] [-- --quick] [-- --check]`
//!
//! `--quick` trims sample counts and the stage problem size so the CI
//! perf smoke job finishes in a couple of minutes; the acceptance gate
//! (packed kernel strictly faster than naive at 256³) is checked in
//! both modes and failure exits non-zero.
//!
//! `--check` flips the binary from baseline *writer* to regression
//! *gate*: the committed `BENCH_*.json` files are loaded, the benches
//! re-run (nothing is overwritten), and the run fails with a
//! per-metric delta table when a throughput entry drops or a wall
//! entry grows by more than 15%. `--check --quick` gates the subset of
//! entries the quick run shares with the full committed baseline.

use navp_bench::check::{compare, parse_baseline, render_table, BenchEntry};
use navp_bench::timing::{write_groups_json, Entry, Group, Metric};
use navp_kv::{run_kv_threads, run_kv_threads_unverified, KvConfig, KvStage};
use navp_matrix::gen::seeded_matrix;
use navp_matrix::kernel::{gemm_acc, gemm_acc_naive, gemm_flops};
use navp_matrix::Grid2D;
use navp_mm::config::MmConfig;
use navp_mm::runner::{
    run_navp_net, run_navp_threads, run_navp_threads_unverified, NavpStage, NetOpts,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Repo root, resolved at compile time relative to this crate so the
/// JSON baselines land in the same place regardless of the cwd the
/// binary is launched from.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

struct Opts {
    quick: bool,
    check: bool,
    kv: bool,
}

fn parse_opts() -> Opts {
    let mut quick = false;
    let mut check = false;
    let mut kv = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--kv" => kv = true,
            "--help" | "-h" => {
                println!("usage: perf [--kv] [--quick] [--check]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (usage: perf [--kv] [--quick] [--check])");
                std::process::exit(2);
            }
        }
    }
    Opts { quick, check, kv }
}

/// Kernel section: packed vs naive at the paper block orders plus a
/// 512³ point where the working set is far beyond L2 and the packing
/// pays off hardest. Returns (groups, gate_ok) where the gate is
/// "packed strictly faster than naive at 256³".
fn bench_kernel(opts: &Opts) -> (Vec<Group>, bool) {
    let orders: &[usize] = if opts.quick {
        &[256, 512]
    } else {
        &[128, 256, 512]
    };
    let mut groups = Vec::new();
    let mut gate_ok = true;
    for &n in orders {
        let a = seeded_matrix(n, 1);
        let b = seeded_matrix(n, 2);
        let mut out = vec![0.0f64; n * n];
        // Bigger orders take longer per iteration; scale samples down
        // so the full run stays under a few minutes.
        let samples = match (opts.quick, n) {
            (true, _) => 5,
            (false, 512) => 7,
            (false, _) => 15,
        };
        let mut g = Group::new(&format!("kernel_{n}"))
            .sample_size(samples)
            .warmup(2)
            .flops(gemm_flops(n, n, n));
        let naive = g
            .bench(&format!("naive_{n}"), || {
                gemm_acc_naive(&mut out, a.as_slice(), b.as_slice(), n, n, n);
                std::hint::black_box(&mut out);
            })
            .clone();
        let packed = g
            .bench(&format!("packed_{n}"), || {
                gemm_acc(&mut out, a.as_slice(), b.as_slice(), n, n, n);
                std::hint::black_box(&mut out);
            })
            .clone();
        let speedup = naive.median_ns as f64 / packed.median_ns.max(1) as f64;
        println!("kernel_{n}: packed is {speedup:.2}x naive (median)");
        if n == 256 && packed.median_ns >= naive.median_ns {
            gate_ok = false;
        }
        groups.push(g);
    }
    (groups, gate_ok)
}

/// Stage section: each NavP pipeline stage timed wall-clock on real
/// threads. Per stage the first group reports GFLOP/s (2n³ flops per
/// run); the second derives effective hop bandwidth — payload bytes
/// moved between PEs divided by the same measured wall times — from
/// the transfer accounting of a verified probe run, since the byte
/// traffic of a stage is deterministic.
fn bench_stages(opts: &Opts) -> Vec<Group> {
    // nb must be divisible by the grid dims used below (line(4), 2x2).
    let (n, ab) = if opts.quick { (256, 32) } else { (384, 32) };
    let samples = if opts.quick { 3 } else { 7 };
    let cfg = MmConfig::real(n, ab);
    let flops = 2 * (cfg.n as u64).pow(3);
    let mut wall = Group::new(&format!("wall_navp_stages_n{n}"))
        .sample_size(samples)
        .warmup(1)
        .flops(flops);
    let mut hops = Group::new(&format!("hop_bandwidth_n{n}")).sample_size(samples);
    for stage in NavpStage::ALL {
        let grid = if stage.is_1d() {
            Grid2D::line(4).expect("grid")
        } else {
            Grid2D::new(2, 2).expect("grid")
        };
        // One verified probe: checks the answer against the sequential
        // reference and records the (deterministic) hop byte traffic.
        let probe = run_navp_threads(stage, &cfg, grid).expect("run");
        assert_eq!(probe.verified, Some(true), "{} failed to verify", stage.name());
        let e = wall
            .bench(stage.name(), || {
                run_navp_threads_unverified(stage, &cfg, grid)
                    .expect("run")
                    .wall
            })
            .clone();
        // Same measured wall samples, re-expressed as bytes-over-wire
        // per second. transfers is recorded for the JSON consumer.
        hops.record(Entry {
            label: format!("{}_{}transfers", stage.name(), probe.transfers),
            samples: e.samples,
            min_ns: e.min_ns,
            median_ns: e.median_ns,
            p90_ns: e.p90_ns,
            metric: Some(Metric::Bytes(probe.bytes)),
        });
    }
    vec![wall, hops]
}

/// Flight-recorder overhead section: phase1d on real threads with the
/// recorder at its default (on) versus forced off. The recorder's
/// contract is to be an *observer* — `tests/obs.rs` pins the products
/// bitwise identical — and this group pins the cost side: the
/// committed `flight_on` / `flight_off` rows let `perf --check` catch
/// a future event that silently makes recording expensive. The
/// measured delta (kept well under 2%) is what justifies shipping the
/// recorder always-on.
fn bench_recorder_overhead(opts: &Opts) -> Group {
    let (n, ab) = (256, 32);
    let samples = if opts.quick { 3 } else { 9 };
    let cfg = MmConfig::real(n, ab);
    let grid = Grid2D::line(4).expect("grid");
    let mut g = Group::new(&format!("recorder_overhead_n{n}"))
        .sample_size(samples)
        .warmup(1)
        .flops(2 * (n as u64).pow(3));
    let was = navp_obs::flight().enabled();
    let mut timed = |label: &str, on: bool| {
        navp_obs::flight().set_enabled(on);
        g.bench(label, || {
            run_navp_threads_unverified(NavpStage::Phase1D, &cfg, grid)
                .expect("run")
                .wall
        })
        .clone()
    };
    let on = timed("flight_on", true);
    let off = timed("flight_off", false);
    navp_obs::flight().set_enabled(was);
    let overhead = on.median_ns as f64 / off.median_ns.max(1) as f64 - 1.0;
    println!(
        "recorder_overhead_n{n}: flight on is {:+.2}% vs off (median)",
        overhead * 100.0
    );
    g
}

/// Mesh-scaling section: the phase1d stage on the *networked* executor
/// (real `navp-pe` processes over loopback TCP) at 4, 16 and 64 PEs.
/// The matrix order is fixed at 256 and the block order shrinks as
/// `ab = n / (2p)`, so every PE always owns two block rows and the
/// per-hop payload shrinks as the mesh grows — exactly the
/// many-small-frames regime the batching event loop exists for. Wall
/// entries report GFLOP/s; the companion group re-expresses the same
/// measured walls as effective hop bandwidth from the deterministic
/// byte traffic of a verified probe run. Quick mode only trims
/// samples (the problem is already CI-sized), so `--check --quick`
/// shares every scaling entry with the full committed baseline.
fn bench_net_scaling(opts: &Opts) -> Vec<Group> {
    let n = 256usize;
    let samples = if opts.quick { 3 } else { 5 };
    let net_opts = NetOpts::default();
    let mut wall = Group::new(&format!("wall_net_scaling_n{n}"))
        .sample_size(samples)
        .warmup(1)
        .flops(2 * (n as u64).pow(3));
    let mut hops = Group::new(&format!("hop_bandwidth_net_scaling_n{n}")).sample_size(samples);
    for pes in [4usize, 16, 64] {
        let ab = n / (2 * pes);
        let cfg = MmConfig::real(n, ab).with_watchdog(Duration::from_secs(120));
        let grid = Grid2D::line(pes).expect("grid");
        // One probe records the deterministic hop byte traffic; every
        // timed sample also verifies against the sequential product
        // (run_navp_net always checks), so a scaling row can never be
        // fast-but-wrong.
        let probe = run_navp_net(NavpStage::Phase1D, &cfg, grid, &net_opts).expect("net run");
        assert_eq!(
            probe.verified,
            Some(true),
            "phase1d on {pes} PEs failed to verify"
        );
        let label = format!("phase1d_p{pes}");
        let e = wall
            .bench(&label, || {
                run_navp_net(NavpStage::Phase1D, &cfg, grid, &net_opts)
                    .expect("net run")
                    .wall
            })
            .clone();
        hops.record(Entry {
            label,
            samples: e.samples,
            min_ns: e.min_ns,
            median_ns: e.median_ns,
            p90_ns: e.p90_ns,
            metric: Some(Metric::Bytes(probe.bytes)),
        });
    }
    vec![wall, hops]
}

/// Key-value section: each journey step timed wall-clock on real
/// threads across 1-, 2- and 4-PE meshes (the sequential anchor only
/// on 1 — it collapses to one PE regardless). The first group reports
/// operation throughput; the second derives scan bandwidth — entries
/// returned by scans times the value payload, over the same measured
/// wall times — from a verified probe run, since a config's scan
/// traffic is deterministic. The workload is small enough that quick
/// mode only trims samples, so `--check --quick` shares every entry
/// with the full committed baseline.
fn bench_kv(opts: &Opts) -> Vec<Group> {
    let (ops, batches) = (4_000, 16);
    let samples = if opts.quick { 3 } else { 9 };
    let cfg = KvConfig::new(ops, batches).with_seed(0x5EED_CAFE);
    let mut wall = Group::new(&format!("kv_journey_ops{ops}"))
        .sample_size(samples)
        .warmup(1)
        .metric_of(Metric::Elems(ops as u64));
    let mut scans = Group::new(&format!("kv_scan_bandwidth_ops{ops}")).sample_size(samples);
    let mut points = vec![(1, KvStage::Seq)];
    for pes in [2, 4] {
        for stage in [KvStage::Dsc, KvStage::Pipe, KvStage::Phase] {
            points.push((pes, stage));
        }
    }
    for (pes, stage) in points {
        // One verified probe: checks the product against the
        // sequential reference and records the deterministic scan
        // volume this (config, step) pair produces.
        let probe = run_kv_threads(stage, &cfg, pes).expect("run");
        assert_eq!(
            probe.verified,
            Some(true),
            "{} on {pes} PEs failed to verify",
            stage.name()
        );
        let label = format!("{}_p{pes}", stage.name());
        let e = wall
            .bench(&label, || {
                run_kv_threads_unverified(stage, &cfg, pes).expect("run").wall
            })
            .clone();
        scans.record(Entry {
            label,
            samples: e.samples,
            min_ns: e.min_ns,
            median_ns: e.median_ns,
            p90_ns: e.p90_ns,
            metric: Some(Metric::Bytes(probe.stats.scanned * cfg.value_len as u64)),
        });
    }
    vec![wall, scans]
}

/// Flatten fresh groups into the flat entry shape the gate compares.
fn current_entries(groups: &[Group]) -> Vec<BenchEntry> {
    groups
        .iter()
        .flat_map(|g| {
            g.entries().iter().map(|e| BenchEntry {
                group: g.name().to_string(),
                label: e.label.clone(),
                median_ns: e.median_ns as f64,
                rate: e.rate().map(|(v, _)| v),
                rate_unit: e.rate().map(|(_, u)| u.to_string()),
            })
        })
        .collect()
}

/// Load one committed baseline, exiting with a usage hint if absent.
fn load_baseline(path: &Path) -> Vec<BenchEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!(
            "cannot read baseline {}: {e}\nrun `perf` without --check first to write it",
            path.display()
        );
        std::process::exit(2);
    });
    parse_baseline(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// The regression tolerance: fail on >15% throughput loss or wall-time
/// growth against the committed baseline.
const TOLERANCE: f64 = 0.15;

/// The `--kv` path: bench the key-value workload against its own
/// baseline file and exit. Mirrors the GEMM flow minus the kernel
/// gate — the acceptance bar for kv is that every step verifies,
/// which `bench_kv` asserts on its probe runs.
fn kv_main(opts: &Opts, root: &Path) -> ! {
    let kv_path = root.join("BENCH_kv.json");
    let baseline = opts.check.then(|| load_baseline(&kv_path));
    let groups = bench_kv(opts);
    if let Some(baseline) = baseline {
        let fresh = current_entries(&groups);
        let deltas = compare(&baseline, &fresh, TOLERANCE);
        if deltas.is_empty() {
            eprintln!(
                "FAIL: no (group, label) pairs shared with the committed baseline — \
                 re-write it with `perf --kv`"
            );
            std::process::exit(1);
        }
        println!(
            "\nregression gate: {} shared entries, tolerance {:.0}%\n",
            deltas.len(),
            TOLERANCE * 100.0
        );
        print!("{}", render_table(&deltas));
        let failed = deltas.iter().filter(|d| d.fail).count();
        if failed > 0 {
            eprintln!(
                "\nFAIL: {failed} of {} entries regressed past {:.0}%",
                deltas.len(),
                TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!("\nOK: no entry regressed past {:.0}%", TOLERANCE * 100.0);
        std::process::exit(0);
    }
    write_groups_json(&kv_path, &groups).expect("write BENCH_kv.json");
    println!("\nwrote {}", kv_path.display());
    std::process::exit(0);
}

fn main() {
    let opts = parse_opts();
    let root = repo_root();
    println!(
        "perf {}{} ({} mode); baselines at {}",
        if opts.kv { "kv " } else { "" },
        if opts.check { "regression check" } else { "baseline" },
        if opts.quick { "quick" } else { "full" },
        root.display()
    );
    if opts.kv {
        kv_main(&opts, &root);
    }
    let kernel_path = root.join("BENCH_kernel.json");
    let stages_path = root.join("BENCH_stages.json");
    // In check mode, load the committed baselines *before* spending
    // minutes re-measuring, so a missing file fails fast.
    let baseline = opts.check.then(|| {
        let mut b = load_baseline(&kernel_path);
        b.extend(load_baseline(&stages_path));
        b
    });

    let (kernel_groups, gate_ok) = bench_kernel(&opts);
    let mut stage_groups = bench_stages(&opts);
    stage_groups.push(bench_recorder_overhead(&opts));
    stage_groups.extend(bench_net_scaling(&opts));

    if let Some(baseline) = baseline {
        let mut fresh = current_entries(&kernel_groups);
        fresh.extend(current_entries(&stage_groups));
        let deltas = compare(&baseline, &fresh, TOLERANCE);
        if deltas.is_empty() {
            eprintln!(
                "FAIL: no (group, label) pairs shared with the committed baseline — \
                 re-write it with `perf`{}",
                if opts.quick { " (full mode)" } else { "" }
            );
            std::process::exit(1);
        }
        println!(
            "\nregression gate: {} shared entries, tolerance {:.0}%\n",
            deltas.len(),
            TOLERANCE * 100.0
        );
        print!("{}", render_table(&deltas));
        let failed: Vec<_> = deltas.iter().filter(|d| d.fail).collect();
        if !gate_ok {
            eprintln!("FAIL: packed kernel is not faster than naive at 256^3");
            std::process::exit(1);
        }
        if !failed.is_empty() {
            eprintln!(
                "\nFAIL: {} of {} entries regressed past {:.0}%",
                failed.len(),
                deltas.len(),
                TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!("\nOK: no entry regressed past {:.0}%", TOLERANCE * 100.0);
        return;
    }

    write_groups_json(&kernel_path, &kernel_groups).expect("write BENCH_kernel.json");
    println!("\nwrote {}", kernel_path.display());
    write_groups_json(&stages_path, &stage_groups).expect("write BENCH_stages.json");
    println!("wrote {}", stages_path.display());

    if !gate_ok {
        eprintln!("FAIL: packed kernel is not faster than naive at 256^3");
        std::process::exit(1);
    }
    println!("OK: packed kernel faster than naive at 256^3");
}
