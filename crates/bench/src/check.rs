//! The perf-regression gate behind `perf --check`.
//!
//! A committed `BENCH_*.json` baseline is a contract: the kernel's
//! GFLOP/s and the stages' wall times measured on a known-good build.
//! `--check` re-runs the same benches, joins old and new entries on
//! `(group, label)`, and fails when the fresh numbers regress past a
//! tolerance — throughput entries (a `rate` in GFLOP/s or MiB/s) gate
//! on the rate dropping, plain wall entries gate on the median time
//! growing. The comparison is pure (no I/O), so the injected-slowdown
//! tests below prove the gate actually fires.

use navp_trace::json::Json;
use std::fmt::Write as _;

/// One benchmark result, as read from a `BENCH_*.json` baseline or
/// taken from a fresh in-process run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Group key (`"kernel_256"`, `"wall_navp_stages_n384"`, …).
    pub group: String,
    /// Entry label within the group.
    pub label: String,
    /// Median wall time per iteration, ns.
    pub median_ns: f64,
    /// Throughput at the median, when the entry declares work.
    pub rate: Option<f64>,
    /// Unit of `rate` (`"GFLOP/s"`, `"MiB/s"`, …).
    pub rate_unit: Option<String>,
}

/// Parse the `{"groups":[{"group","entries":[…]}]}` document written by
/// [`crate::timing::write_groups_json`] into a flat entry list.
pub fn parse_baseline(text: &str) -> Result<Vec<BenchEntry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let groups = doc
        .get("groups")
        .and_then(|g| g.as_arr())
        .ok_or("baseline JSON has no \"groups\" array")?;
    let mut out = Vec::new();
    for g in groups {
        let group = g
            .get("group")
            .and_then(|s| s.as_str())
            .ok_or("group object missing \"group\" name")?
            .to_string();
        let entries = g
            .get("entries")
            .and_then(|e| e.as_arr())
            .ok_or("group object missing \"entries\" array")?;
        for e in entries {
            let label = e
                .get("label")
                .and_then(|s| s.as_str())
                .ok_or("entry missing \"label\"")?
                .to_string();
            let median_ns = e
                .get("median_ns")
                .and_then(|n| n.as_num())
                .ok_or("entry missing \"median_ns\"")?;
            out.push(BenchEntry {
                group: group.clone(),
                label,
                median_ns,
                rate: e.get("rate").and_then(|n| n.as_num()),
                rate_unit: e
                    .get("rate_unit")
                    .and_then(|s| s.as_str())
                    .map(str::to_string),
            });
        }
    }
    Ok(out)
}

/// How one joined entry was gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Throughput entry: fails when the new rate drops below
    /// `old * (1 - tolerance)`.
    Rate,
    /// Wall-time entry: fails when the new median exceeds
    /// `old * (1 + tolerance)`.
    Wall,
}

/// The verdict for one `(group, label)` pair present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Group key shared by both entries.
    pub group: String,
    /// Entry label shared by both entries.
    pub label: String,
    /// Which quantity was gated.
    pub gate: Gate,
    /// Baseline value (rate, or median seconds for wall gates).
    pub old: f64,
    /// Fresh value in the same unit as `old`.
    pub new: f64,
    /// Relative change, signed so that negative is always *worse*:
    /// rate gates report `new/old - 1`, wall gates `old/new - 1`.
    pub change: f64,
    /// `true` when the change regresses past the tolerance.
    pub fail: bool,
}

/// Join `old` and `new` on `(group, label)` and gate each pair at
/// `tolerance` (0.15 = fail on >15% regression). Pairs present on only
/// one side are ignored — `--quick` re-runs cover a subset of the full
/// committed baseline. Returns the deltas in `new`'s order.
pub fn compare(old: &[BenchEntry], new: &[BenchEntry], tolerance: f64) -> Vec<Delta> {
    let mut out = Vec::new();
    for n in new {
        let Some(o) = old
            .iter()
            .find(|o| o.group == n.group && o.label == n.label)
        else {
            continue;
        };
        // Gate on throughput when both sides report a rate in the same
        // unit; otherwise fall back to the wall-time gate.
        let rates = match (o.rate, n.rate) {
            (Some(or), Some(nr)) if o.rate_unit == n.rate_unit => Some((or, nr)),
            _ => None,
        };
        let d = if let Some((or, nr)) = rates {
            let change = nr / or.max(f64::MIN_POSITIVE) - 1.0;
            Delta {
                group: n.group.clone(),
                label: n.label.clone(),
                gate: Gate::Rate,
                old: or,
                new: nr,
                change,
                fail: change < -tolerance,
            }
        } else {
            let change = o.median_ns / n.median_ns.max(f64::MIN_POSITIVE) - 1.0;
            Delta {
                group: n.group.clone(),
                label: n.label.clone(),
                gate: Gate::Wall,
                old: o.median_ns / 1e9,
                new: n.median_ns / 1e9,
                change,
                fail: n.median_ns > o.median_ns * (1.0 + tolerance),
            }
        };
        out.push(d);
    }
    out
}

/// Render the per-metric delta table: one row per joined entry, the
/// gated quantity old → new, the signed change (negative = worse), and
/// a PASS/FAIL verdict.
pub fn render_table(deltas: &[Delta]) -> String {
    let mut rows: Vec<[String; 5]> = vec![[
        "group/label".into(),
        "gate".into(),
        "baseline".into(),
        "current".into(),
        "change".into(),
    ]];
    for d in deltas {
        let (gate, fmt): (&str, fn(f64) -> String) = match d.gate {
            Gate::Rate => ("rate", |v| format!("{v:.3}")),
            Gate::Wall => ("wall", |v| format!("{v:.4}s")),
        };
        rows.push([
            format!("{}/{}", d.group, d.label),
            gate.into(),
            fmt(d.old),
            fmt(d.new),
            format!(
                "{:+.1}% {}",
                d.change * 100.0,
                if d.fail { "FAIL" } else { "ok" }
            ),
        ]);
    }
    let mut width = [0usize; 5];
    for row in &rows {
        for (w, cell) in width.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        for (i, (cell, w)) in row.iter().zip(&width).enumerate() {
            let _ = write!(out, "{}{cell:<w$}", if i > 0 { "  " } else { "" });
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(group: &str, label: &str, median_ns: f64, rate: Option<f64>) -> BenchEntry {
        BenchEntry {
            group: group.into(),
            label: label.into(),
            median_ns,
            rate,
            rate_unit: rate.map(|_| "GFLOP/s".to_string()),
        }
    }

    #[test]
    fn baseline_json_round_trips_through_parser() {
        let text = r#"{"groups":[{"group":"kernel_256","entries":[
            {"label":"packed_256","samples":15,"min_ns":100,"median_ns":120,
             "p90_ns":130,"wall_median_s":0.000000120,"flops":33554432,
             "rate":12.5,"rate_unit":"GFLOP/s"},
            {"label":"naive_256","samples":15,"min_ns":500,"median_ns":600,
             "p90_ns":700,"wall_median_s":0.000000600}]}]}"#;
        let got = parse_baseline(text).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].group, "kernel_256");
        assert_eq!(got[0].rate, Some(12.5));
        assert_eq!(got[0].rate_unit.as_deref(), Some("GFLOP/s"));
        assert_eq!(got[1].label, "naive_256");
        assert_eq!(got[1].rate, None);
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn injected_rate_slowdown_fails_the_gate() {
        let old = vec![entry("kernel_256", "packed_256", 1_000_000.0, Some(20.0))];
        // 20 → 16.8 GFLOP/s is a 16% drop: past the 15% tolerance.
        let new = vec![entry("kernel_256", "packed_256", 1_200_000.0, Some(16.8))];
        let d = compare(&old, &new, 0.15);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].gate, Gate::Rate);
        assert!(d[0].fail, "{d:?}");
        // A 10% drop is within tolerance.
        let new = vec![entry("kernel_256", "packed_256", 1_100_000.0, Some(18.0))];
        assert!(!compare(&old, &new, 0.15)[0].fail);
        // Getting *faster* never fails.
        let new = vec![entry("kernel_256", "packed_256", 800_000.0, Some(25.0))];
        assert!(!compare(&old, &new, 0.15)[0].fail);
    }

    #[test]
    fn injected_wall_slowdown_fails_the_gate() {
        let old = vec![entry("wall", "NavP (2D phase)", 1_000_000.0, None)];
        let slow = vec![entry("wall", "NavP (2D phase)", 1_200_000.0, None)];
        let d = compare(&old, &slow, 0.15);
        assert_eq!(d[0].gate, Gate::Wall);
        assert!(d[0].fail, "20% wall growth must fail: {d:?}");
        assert!(d[0].change < 0.0, "negative change = worse");
        let fine = vec![entry("wall", "NavP (2D phase)", 1_100_000.0, None)];
        assert!(!compare(&old, &fine, 0.15)[0].fail);
    }

    #[test]
    fn join_is_the_intersection_and_units_must_agree() {
        let old = vec![
            entry("kernel_128", "packed_128", 1_000.0, Some(10.0)),
            entry("kernel_256", "packed_256", 2_000.0, Some(20.0)),
        ];
        // A quick re-run measuring only 256 plus a brand-new group.
        let new = vec![
            entry("kernel_256", "packed_256", 2_000.0, Some(20.0)),
            entry("kernel_999", "packed_999", 9_000.0, Some(9.0)),
        ];
        let d = compare(&old, &new, 0.15);
        assert_eq!(d.len(), 1, "only the shared pair is gated: {d:?}");
        assert_eq!(d[0].group, "kernel_256");
        // Mismatched rate units fall back to the wall gate.
        let mut o = entry("g", "l", 1_000.0, Some(10.0));
        o.rate_unit = Some("MiB/s".into());
        let n = entry("g", "l", 1_000.0, Some(10.0));
        assert_eq!(compare(&[o], &[n], 0.15)[0].gate, Gate::Wall);
    }

    #[test]
    fn delta_table_renders_one_row_per_pair() {
        let old = vec![
            entry("kernel_256", "packed_256", 1_000_000.0, Some(20.0)),
            entry("wall", "stage", 5_000_000.0, None),
        ];
        let new = vec![
            entry("kernel_256", "packed_256", 1_500_000.0, Some(13.0)),
            entry("wall", "stage", 5_100_000.0, None),
        ];
        let table = render_table(&compare(&old, &new, 0.15));
        assert!(table.contains("kernel_256/packed_256"), "{table}");
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("wall/stage"), "{table}");
        assert!(table.contains("ok"), "{table}");
        assert_eq!(table.lines().count(), 3, "{table}");
    }
}
