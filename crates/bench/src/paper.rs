//! The paper's published measurements (Tables 1–4), transcribed
//! verbatim from Pan et al., ICPP 2005.
//!
//! Times are seconds. Entries marked with `*` in the paper (sequential
//! times obtained by least-squares curve fitting, used for speedups at
//! sizes where the real sequential run thrashed) are stored in
//! [`Table::seq_fitted`]; the measured — possibly thrashing — sequential
//! time is in [`Table::seq_actual`].

/// One published table.
pub struct Table {
    /// Table number in the paper.
    pub id: &'static str,
    /// Caption.
    pub title: &'static str,
    /// PE grid `(rows, cols)` — `(1, p)` is the paper's 1-D network.
    pub grid: (usize, usize),
    /// Matrix orders, one per row.
    pub orders: &'static [usize],
    /// Algorithmic block order per row.
    pub blocks: &'static [usize],
    /// Sequential time used as the speedup denominator (fitted where
    /// the paper used fitted values).
    pub seq_fitted: &'static [f64],
    /// Sequential time as actually measured (equals `seq_fitted` where
    /// no fitting was needed).
    pub seq_actual: &'static [f64],
    /// Per-column published times, in the paper's column order.
    pub columns: &'static [(&'static str, &'static [f64])],
}

/// Table 1 — performance on a 1-D network of 3 PEs.
pub const TABLE1: Table = Table {
    id: "Table 1",
    title: "Performance on 3 PEs (1-D network)",
    grid: (1, 3),
    orders: &[1536, 2304, 3072, 4608, 5376, 6144],
    blocks: &[128, 128, 128, 128, 128, 256],
    seq_fitted: &[65.44, 219.71, 520.30, 1745.94, 2735.69, 4268.16],
    seq_actual: &[65.44, 219.71, 520.30, 1934.73, 3033.92, 5055.93],
    columns: &[
        (
            "NavP (1D DSC)",
            &[67.22, 229.45, 543.91, 1809.73, 2926.24, 4697.32],
        ),
        (
            "NavP (1D pipeline)",
            &[27.72, 91.03, 205.87, 688.18, 1151.07, 1811.77],
        ),
        (
            "NavP (1D phase)",
            &[24.55, 81.23, 189.50, 653.64, 990.05, 1554.99],
        ),
        (
            "ScaLAPACK",
            &[26.80, 82.83, 211.45, 767.91, 1173.46, 1984.18],
        ),
    ],
};

/// Table 2 — out-of-core DSC on 8 PEs.
pub const TABLE2: Table = Table {
    id: "Table 2",
    title: "Performance on 8 PEs (DSC vs thrashing sequential)",
    grid: (1, 8),
    orders: &[9216],
    blocks: &[128],
    seq_fitted: &[13921.50],
    seq_actual: &[36534.49],
    columns: &[("NavP (1D DSC)", &[14959.42])],
};

/// Table 3 — performance on a 2x2 PE grid.
pub const TABLE3: Table = Table {
    id: "Table 3",
    title: "Performance on 2 x 2 PEs",
    grid: (2, 2),
    orders: &[1024, 2048, 3072, 4096, 5120],
    blocks: &[128, 128, 128, 128, 128],
    seq_fitted: &[19.49, 158.51, 520.30, 1238.21, 2373.32],
    seq_actual: &[19.49, 158.51, 520.30, 1281.58, 2727.86],
    columns: &[
        ("MPI (Gentleman)", &[6.02, 50.99, 157.53, 367.04, 733.91]),
        ("NavP (2D DSC)", &[7.63, 50.59, 158.06, 362.73, 792.23]),
        ("NavP (2D pipeline)", &[5.88, 42.61, 144.09, 328.98, 757.67]),
        ("NavP (2D phase)", &[5.54, 41.54, 137.39, 321.70, 624.87]),
        ("ScaLAPACK", &[5.23, 45.53, 156.27, 417.83, 907.16]),
    ],
};

/// Table 4 — performance on a 3x3 PE grid.
pub const TABLE4: Table = Table {
    id: "Table 4",
    title: "Performance on 3 x 3 PEs",
    grid: (3, 3),
    orders: &[1536, 2304, 3072, 4608, 5376, 6144],
    blocks: &[128, 128, 128, 128, 128, 256],
    seq_fitted: &[65.44, 219.71, 520.30, 1745.94, 2735.69, 4268.16],
    seq_actual: &[65.44, 219.71, 520.30, 1934.73, 3033.92, 5055.93],
    columns: &[
        (
            "MPI (Gentleman)",
            &[10.97, 29.95, 82.25, 241.92, 437.27, 637.79],
        ),
        (
            "NavP (2D DSC)",
            &[13.66, 39.53, 86.52, 268.41, 421.78, 745.18],
        ),
        (
            "NavP (2D pipeline)",
            &[9.18, 29.93, 66.94, 220.28, 360.77, 584.85],
        ),
        (
            "NavP (2D phase)",
            &[8.21, 26.74, 62.36, 205.68, 323.67, 510.29],
        ),
        (
            "ScaLAPACK",
            &[8.08, 29.39, 70.92, 255.87, 398.50, 635.36],
        ),
    ],
};

/// All four tables.
pub const ALL: [&Table; 4] = [&TABLE1, &TABLE2, &TABLE3, &TABLE4];

impl Table {
    /// Published speedup of column `col` at row `row`.
    pub fn paper_speedup(&self, col: usize, row: usize) -> f64 {
        self.seq_fitted[row] / self.columns[col].1[row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_rectangular() {
        for t in ALL {
            assert_eq!(t.orders.len(), t.blocks.len(), "{}", t.id);
            assert_eq!(t.orders.len(), t.seq_fitted.len(), "{}", t.id);
            assert_eq!(t.orders.len(), t.seq_actual.len(), "{}", t.id);
            for (name, col) in t.columns {
                assert_eq!(col.len(), t.orders.len(), "{} {name}", t.id);
            }
        }
    }

    #[test]
    fn blocks_divide_orders() {
        for t in ALL {
            for (n, ab) in t.orders.iter().zip(t.blocks) {
                assert_eq!(n % ab, 0, "{}", t.id);
                let nb = n / ab;
                assert_eq!(nb % t.grid.0, 0, "{} grid rows", t.id);
                assert_eq!(nb % t.grid.1, 0, "{} grid cols", t.id);
            }
        }
    }

    #[test]
    fn published_speedups_match_paper_text() {
        // Spot checks against the speedup columns printed in the paper.
        assert!((TABLE1.paper_speedup(2, 0) - 2.67).abs() < 0.01); // phase N=1536
        assert!((TABLE3.paper_speedup(0, 0) - 3.24).abs() < 0.01); // MPI N=1024
        assert!((TABLE4.paper_speedup(3, 5) - 8.36).abs() < 0.01); // phase N=6144
        assert!((TABLE2.seq_actual[0] / TABLE2.seq_fitted[0] - 2.62).abs() < 0.01);
    }
}
