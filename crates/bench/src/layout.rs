//! Render the paper's data-placement figures from the actual cluster
//! builders.
//!
//! Figures 4, 6, 8, 10, 12 and 14 of the paper show where the blocks of
//! `A`, `B` and `C` sit before each stage starts. Instead of redrawing
//! them, [`layout_of_cluster`] reads the node-variable stores of a
//! freshly built (not yet run) cluster and prints one panel per PE — so
//! the diagrams are guaranteed to match what the code actually does.

use navp::Cluster;
use std::fmt::Write as _;

/// Summarize a cluster's pre-run placement: for each PE, the blocks of
/// each variable family, compressed as `name[r0..r1 x c0..c1 (+k more)]`.
pub fn layout_of_cluster(cl: &Cluster, grid_cols: usize) -> String {
    let mut out = String::new();
    for pe in 0..cl.pes() {
        let (v, h) = (pe / grid_cols, pe % grid_cols);
        let store = cl.store(pe);
        let mut fams: std::collections::BTreeMap<&'static str, Vec<(u32, u32)>> =
            std::collections::BTreeMap::new();
        for key in store.keys() {
            fams.entry(key.name).or_default().push((key.i, key.j));
        }
        let _ = write!(out, "node({v},{h})  ");
        if fams.is_empty() {
            let _ = writeln!(out, "(empty)");
            continue;
        }
        for (name, mut coords) in fams {
            coords.sort_unstable();
            let (mut ri, mut rj) = ((u32::MAX, 0u32), (u32::MAX, 0u32));
            for &(i, j) in &coords {
                ri = (ri.0.min(i), ri.1.max(i));
                rj = (rj.0.min(j), rj.1.max(j));
            }
            let _ = write!(
                out,
                "{name}[{}..{} x {}..{}]({}) ",
                ri.0,
                ri.1,
                rj.0,
                rj.1,
                coords.len()
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_matrix::Grid2D;
    use navp_mm::config::MmConfig;
    use navp_mm::util::Topo2D;

    #[test]
    fn dpc2d_layout_shows_home_placement() {
        let cfg = MmConfig::phantom(8, 2);
        let topo = Topo2D::new(4, Grid2D::new(2, 2).unwrap()).unwrap();
        let (a, b) = cfg.operands().unwrap();
        let cl = navp_mm::dpc2d::cluster(&cfg, &topo, &a, &b).unwrap();
        let art = layout_of_cluster(&cl, 2);
        // Fig. 14: every node holds A, B and C blocks of its own tile.
        assert!(art.contains("node(0,0)"));
        assert!(art.contains("A[0..1 x 0..1](4)"), "{art}");
        assert!(art.contains("C[2..3 x 2..3](4)"), "{art}");
    }

    #[test]
    fn dsc1d_layout_concentrates_a_on_pe0() {
        let cfg = MmConfig::phantom(8, 2);
        let topo = navp_mm::util::Topo1D::new(4, 2).unwrap();
        let (a, b) = cfg.operands().unwrap();
        let cl = navp_mm::dsc1d::cluster(&cfg, &topo, &a, &b).unwrap();
        let art = layout_of_cluster(&cl, 2);
        let lines: Vec<&str> = art.lines().collect();
        // PE0 (printed as node(0,0)) holds all 16 A blocks; PE1 none.
        assert!(lines[0].contains("A[0..3 x 0..3](16)"), "{art}");
        assert!(!lines[1].contains("A["), "{art}");
    }
}
