//! The evaluation harness: everything needed to regenerate every table
//! and figure of the paper's Section 5.
//!
//! * [`paper`] — the paper's published numbers, transcribed verbatim,
//!   so each regenerated cell prints measured-vs-paper side by side;
//! * [`harness`] — table specifications and the runner that executes
//!   each cell under the calibrated cost model at the paper's problem
//!   sizes (phantom payloads: identical costs, no wasted arithmetic);
//! * [`layout`] — renders the data-placement diagrams of Figures 4–14
//!   from the *actual* cluster builders (not hand-drawn);
//! * [`check`] — the perf-regression gate joining a committed
//!   `BENCH_*.json` baseline against a fresh re-run (`perf --check`);
//! * binaries `table1`–`table4`, `figures`, `ablation`, `all` — run
//!   `cargo run --release -p navp-bench --bin all` to regenerate the
//!   entire evaluation.

#![warn(missing_docs)]

pub mod check;
pub mod harness;
pub mod layout;
pub mod paper;
pub mod timing;
