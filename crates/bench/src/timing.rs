//! A minimal wall-clock timing harness for the `[[bench]]` targets and
//! the `perf` binary.
//!
//! The container this repo builds in has no external crates, so the
//! benches use this dependency-free stand-in: a *fixed* number of
//! warmup iterations (deterministic, unlike a time-boxed warmup),
//! a fixed number of timed samples, and min/median/p90 per iteration —
//! order statistics, because wall-clock samples on a shared machine are
//! skewed by interference and a mean smears outliers into every figure.
//! Each group accumulates its results as [`Entry`]s and can serialize
//! them as JSON (hand-rolled; see [`Group::write_json`]), which is how
//! `--bin perf` emits the `BENCH_*.json` perf baselines at the repo
//! root.

use std::io::{self, Write};
use std::time::{Duration, Instant};

/// What one iteration processes, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Elements per iteration → reported as Melem/s.
    Elems(u64),
    /// Floating-point operations per iteration → reported as GFLOP/s.
    Flops(u64),
    /// Payload bytes per iteration → reported as MiB/s.
    Bytes(u64),
    /// Whole jobs/runs per iteration → reported as runs/s (service
    /// throughput: submit-to-result round trips, not element counts).
    Runs(u64),
}

impl Metric {
    /// `(value, unit)` of this metric at the given per-iteration time.
    pub fn rate(&self, per_iter: Duration) -> (f64, &'static str) {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match self {
            Metric::Elems(n) => (*n as f64 / secs / 1e6, "Melem/s"),
            Metric::Flops(n) => (*n as f64 / secs / 1e9, "GFLOP/s"),
            Metric::Bytes(n) => (*n as f64 / secs / (1024.0 * 1024.0), "MiB/s"),
            Metric::Runs(n) => (*n as f64 / secs, "runs/s"),
        }
    }
}

/// The recorded result of one `bench` call.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Benchmark label within its group.
    pub label: String,
    /// Timed samples taken.
    pub samples: usize,
    /// Fastest iteration, ns.
    pub min_ns: u64,
    /// Median iteration, ns.
    pub median_ns: u64,
    /// 90th-percentile iteration, ns.
    pub p90_ns: u64,
    /// Work per iteration, if declared.
    pub metric: Option<Metric>,
}

impl Entry {
    /// GFLOP/s at the median iteration time, when the metric is flops.
    pub fn gflops(&self) -> Option<f64> {
        match self.metric {
            Some(m @ Metric::Flops(_)) => Some(m.rate(Duration::from_nanos(self.median_ns)).0),
            _ => None,
        }
    }

    /// Throughput `(value, unit)` at the median iteration time.
    pub fn rate(&self) -> Option<(f64, &'static str)> {
        self.metric
            .map(|m| m.rate(Duration::from_nanos(self.median_ns)))
    }

    fn write_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "{{\"label\":{},\"samples\":{},\"min_ns\":{},\"median_ns\":{},\"p90_ns\":{},\"wall_median_s\":{:.9}",
            json_str(&self.label),
            self.samples,
            self.min_ns,
            self.median_ns,
            self.p90_ns,
            self.median_ns as f64 / 1e9,
        )?;
        match self.metric {
            Some(Metric::Elems(n)) => write!(w, ",\"elems\":{n}")?,
            Some(Metric::Flops(n)) => write!(w, ",\"flops\":{n}")?,
            Some(Metric::Bytes(n)) => write!(w, ",\"bytes\":{n}")?,
            Some(Metric::Runs(n)) => write!(w, ",\"runs\":{n}")?,
            None => {}
        }
        if let Some((value, unit)) = self.rate() {
            write!(w, ",\"rate\":{value:.6},\"rate_unit\":{}", json_str(unit))?;
        }
        write!(w, "}}")
    }
}

/// One benchmark group; prints a header on creation and accumulates an
/// [`Entry`] per `bench` call.
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
    metric: Option<Metric>,
    entries: Vec<Entry>,
}

impl Group {
    /// Start a named group with the default 20 samples and 3 warmup
    /// iterations per benchmark.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            samples: 20,
            warmup: 3,
            metric: None,
            entries: Vec::new(),
        }
    }

    /// Group name (used as the JSON group key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the number of timed samples.
    pub fn sample_size(mut self, samples: usize) -> Group {
        self.samples = samples.max(3);
        self
    }

    /// Override the number of (untimed) warmup iterations. Fixed count,
    /// not time-boxed, so two runs of a bench do identical work.
    pub fn warmup(mut self, iters: usize) -> Group {
        self.warmup = iters;
        self
    }

    /// Report elements/second from this many elements per iteration.
    pub fn throughput(self, elements: u64) -> Group {
        self.metric_of(Metric::Elems(elements))
    }

    /// Report GFLOP/s from this many flops per iteration.
    pub fn flops(self, flops: u64) -> Group {
        self.metric_of(Metric::Flops(flops))
    }

    /// Report MiB/s from this many payload bytes per iteration.
    pub fn bytes(self, bytes: u64) -> Group {
        self.metric_of(Metric::Bytes(bytes))
    }

    /// Set the per-iteration work metric for subsequent `bench` calls.
    pub fn metric_of(mut self, m: Metric) -> Group {
        self.metric = Some(m);
        self
    }

    /// Time `f`, printing one summary line and recording an [`Entry`].
    pub fn bench<R>(&mut self, label: &str, f: impl FnMut() -> R) -> &Entry {
        let metric = self.metric;
        self.bench_metric(label, metric, f)
    }

    /// Time `f` with an explicit per-iteration metric (overriding the
    /// group default for this one benchmark).
    pub fn bench_metric<R>(
        &mut self,
        label: &str,
        metric: Option<Metric>,
        mut f: impl FnMut() -> R,
    ) -> &Entry {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        times.sort();
        let n = times.len();
        let entry = Entry {
            label: label.to_string(),
            samples: n,
            min_ns: times[0].as_nanos() as u64,
            median_ns: times[n / 2].as_nanos() as u64,
            p90_ns: times[((n - 1) * 9).div_ceil(10)].as_nanos() as u64,
            metric,
        };
        let mut line = format!(
            "{}/{label}: min {} | median {} | p90 {} ({n} samples)",
            self.name,
            fmt_dur(Duration::from_nanos(entry.min_ns)),
            fmt_dur(Duration::from_nanos(entry.median_ns)),
            fmt_dur(Duration::from_nanos(entry.p90_ns)),
        );
        if let Some((value, unit)) = entry.rate() {
            line.push_str(&format!(" | {value:.3} {unit}"));
        }
        println!("{line}");
        self.entries.push(entry);
        self.entries.last().expect("just pushed")
    }

    /// Record an externally measured result — used by `--bin perf` to
    /// derive hop-bandwidth entries from already-timed runs without
    /// running them again under a second metric.
    pub fn record(&mut self, entry: Entry) -> &Entry {
        let mut line = format!(
            "{}/{}: min {} | median {} | p90 {} ({} samples)",
            self.name,
            entry.label,
            fmt_dur(Duration::from_nanos(entry.min_ns)),
            fmt_dur(Duration::from_nanos(entry.median_ns)),
            fmt_dur(Duration::from_nanos(entry.p90_ns)),
            entry.samples,
        );
        if let Some((value, unit)) = entry.rate() {
            line.push_str(&format!(" | {value:.3} {unit}"));
        }
        println!("{line}");
        self.entries.push(entry);
        self.entries.last().expect("just pushed")
    }

    /// Results recorded so far, in `bench` order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Serialize this group as one JSON object:
    /// `{"group": name, "entries": [...]}`.
    pub fn write_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, "{{\"group\":{},\"entries\":[", json_str(&self.name))?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            e.write_json(w)?;
        }
        write!(w, "]}}")
    }
}

/// Write `groups` as one machine-readable JSON document:
/// `{"groups":[{"group":...,"entries":[...]}, ...]}` — the format of
/// the `BENCH_*.json` files at the repo root.
pub fn write_groups_json(path: &std::path::Path, groups: &[Group]) -> io::Result<()> {
    let mut buf = Vec::new();
    write!(buf, "{{\"groups\":[")?;
    for (i, g) in groups.iter().enumerate() {
        if i > 0 {
            write!(buf, ",")?;
        }
        g.write_json(&mut buf)?;
    }
    writeln!(buf, "]}}")?;
    std::fs::write(path, buf)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_record_order_statistics_and_rates() {
        let mut g = Group::new("t").sample_size(5).warmup(1).flops(2_000_000);
        g.bench("spin", || std::hint::black_box((0..1000).sum::<u64>()));
        let e = &g.entries()[0];
        assert_eq!(e.samples, 5);
        assert!(e.min_ns <= e.median_ns && e.median_ns <= e.p90_ns);
        assert!(e.gflops().is_some());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut g = Group::new("grp").sample_size(3).warmup(0);
        g.bench_metric("a \"quoted\"", Some(Metric::Bytes(1024)), || 1 + 1);
        let mut out = Vec::new();
        g.write_json(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"group\":\"grp\",\"entries\":["), "{s}");
        assert!(s.contains("\\\"quoted\\\""), "{s}");
        assert!(s.contains("\"bytes\":1024"), "{s}");
        assert!(s.contains("\"rate_unit\":\"MiB/s\""), "{s}");
        assert!(s.contains("\"wall_median_s\":"), "{s}");
    }

    #[test]
    fn metric_rates() {
        let d = Duration::from_secs(1);
        assert_eq!(Metric::Flops(2_000_000_000).rate(d), (2.0, "GFLOP/s"));
        assert_eq!(Metric::Elems(3_000_000).rate(d), (3.0, "Melem/s"));
        let (v, u) = Metric::Bytes(1024 * 1024).rate(d);
        assert_eq!((v, u), (1.0, "MiB/s"));
        assert_eq!(Metric::Runs(12).rate(d), (12.0, "runs/s"));
    }
}
