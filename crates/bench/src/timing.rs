//! A minimal wall-clock timing harness for the `[[bench]]` targets.
//!
//! The container this repo builds in has no external crates, so the
//! benches use this dependency-free stand-in: warm up, take a fixed
//! number of samples, and print min/median/mean per iteration plus an
//! optional throughput figure. Output is one line per benchmark, stable
//! enough to eyeball across commits.

use std::time::{Duration, Instant};

/// One benchmark group; prints a header on creation.
pub struct Group {
    name: String,
    samples: usize,
    throughput: Option<u64>,
}

impl Group {
    /// Start a named group with the default 20 samples per benchmark.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            samples: 20,
            throughput: None,
        }
    }

    /// Override the number of timed samples.
    pub fn sample_size(mut self, samples: usize) -> Group {
        self.samples = samples.max(3);
        self
    }

    /// Report elements/second derived from this many elements per iteration.
    pub fn throughput(mut self, elements: u64) -> Group {
        self.throughput = Some(elements);
        self
    }

    /// Time `f`, printing one summary line.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: run until ~50 ms elapsed or 3 iterations, whichever
        // is later, so first-touch costs don't pollute the samples.
        let warm_start = Instant::now();
        let mut warmed = 0usize;
        while warmed < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(f());
            warmed += 1;
            if warmed > 10_000 {
                break;
            }
        }

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let mut line = format!(
            "{}/{label}: min {} | median {} | mean {} ({} samples)",
            self.name,
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(mean),
            times.len()
        );
        if let Some(elems) = self.throughput {
            let per_sec = elems as f64 / median.as_secs_f64();
            line.push_str(&format!(" | {:.3} Melem/s", per_sec / 1e6));
        }
        println!("{line}");
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}
