//! Derived metrics over a merged wall-clock trace.
//!
//! The paper argues with per-stage timing tables; a [`TraceReport`] is
//! the runtime-generated version of one: where the wall time went
//! (compute vs. waiting), how expensive hops were, and how long the
//! pipeline took to fill. It is computed once, after the run, from the
//! merged [`Trace`] — the hot path only ever appends events.

use navp_sim::trace::{Trace, TraceKind};
use std::collections::BTreeMap;
use std::fmt;

/// Latency distribution summary (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencyStats {
    fn from_samples(mut xs: Vec<f64>) -> LatencyStats {
        if xs.is_empty() {
            return LatencyStats::default();
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| xs[((p * (xs.len() - 1) as f64).round() as usize).min(xs.len() - 1)];
        LatencyStats {
            count: xs.len(),
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: *xs.last().unwrap(),
        }
    }
}

/// One messenger's itinerary through the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Itinerary {
    /// Stable actor id.
    pub actor: u64,
    /// Human label (first one recorded for this actor).
    pub label: String,
    /// Exec spans (messenger activations).
    pub execs: usize,
    /// Inter-PE hops taken.
    pub hops: usize,
    /// Total compute time, seconds.
    pub busy: f64,
    /// Distinct PEs the messenger executed on.
    pub pes_visited: usize,
}

/// Post-run metrics derived from a merged wall-clock [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// PEs the report covers.
    pub pes: usize,
    /// Wall makespan of the traced events, seconds.
    pub makespan: f64,
    /// Compute (Exec) seconds per PE; index = PE.
    pub busy_per_pe: Vec<f64>,
    /// `busy / makespan` per PE; index = PE.
    pub utilization_per_pe: Vec<f64>,
    /// Mean utilization over all PEs.
    pub utilization: f64,
    /// Inter-PE hop latency distribution (Transfer spans).
    pub hop_latency: LatencyStats,
    /// Bytes moved between distinct PEs.
    pub bytes_transferred: u64,
    /// Event-wait (Block) spans: count and total seconds per PE.
    pub waits_per_pe: Vec<(usize, f64)>,
    /// Seconds until *every* PE had started executing — the pipeline
    /// fill time of Figure 1(c)/(d). `None` when some PE never ran.
    pub pipeline_fill: Option<f64>,
    /// Per-messenger itinerary summaries, by actor id.
    pub itineraries: Vec<Itinerary>,
    /// Trace events evicted by ring buffers (report is partial if > 0).
    pub dropped: u64,
}

impl TraceReport {
    /// Compute a report from a merged trace. `dropped` is the total
    /// ring-buffer eviction count from collection.
    pub fn from_trace(trace: &Trace, pes: usize, dropped: u64) -> TraceReport {
        let makespan = trace.makespan().as_secs_f64();
        let busy_per_pe: Vec<f64> = trace
            .busy_per_pe(pes)
            .iter()
            .map(|t| t.as_secs_f64())
            .collect();
        let utilization_per_pe: Vec<f64> = busy_per_pe
            .iter()
            .map(|b| if makespan > 0.0 { b / makespan } else { 0.0 })
            .collect();
        let mut hops = Vec::new();
        let mut waits_per_pe = vec![(0usize, 0.0f64); pes];
        let mut first_exec: Vec<Option<f64>> = vec![None; pes];
        let mut itins: BTreeMap<u64, (String, usize, usize, f64, std::collections::BTreeSet<usize>)> =
            BTreeMap::new();
        for e in trace.events() {
            let span = e.end.saturating_sub(e.start).as_secs_f64();
            match e.kind {
                TraceKind::Exec { pe } => {
                    if pe < pes {
                        let f = &mut first_exec[pe];
                        let s = e.start.as_secs_f64();
                        *f = Some(f.map_or(s, |prev: f64| prev.min(s)));
                    }
                    let ent = itins.entry(e.actor).or_insert_with(|| {
                        (e.label.clone(), 0, 0, 0.0, Default::default())
                    });
                    ent.1 += 1;
                    ent.3 += span;
                    if let TraceKind::Exec { pe } = e.kind {
                        ent.4.insert(pe);
                    }
                }
                TraceKind::Transfer { from, to, .. } if from != to => {
                    hops.push(span);
                    let ent = itins.entry(e.actor).or_insert_with(|| {
                        (e.label.clone(), 0, 0, 0.0, Default::default())
                    });
                    ent.2 += 1;
                }
                TraceKind::Block { pe } if pe < pes => {
                    waits_per_pe[pe].0 += 1;
                    waits_per_pe[pe].1 += span;
                }
                _ => {}
            }
        }
        let pipeline_fill = if pes > 0 && first_exec.iter().all(Option::is_some) {
            first_exec.iter().map(|f| f.unwrap()).fold(0.0f64, f64::max).into()
        } else {
            None
        };
        TraceReport {
            pes,
            makespan,
            utilization: trace.utilization(pes),
            busy_per_pe,
            utilization_per_pe,
            hop_latency: LatencyStats::from_samples(hops),
            bytes_transferred: trace.bytes_transferred(),
            waits_per_pe,
            pipeline_fill,
            itineraries: itins
                .into_iter()
                .map(|(actor, (label, execs, hops, busy, pes))| Itinerary {
                    actor,
                    label,
                    execs,
                    hops,
                    busy,
                    pes_visited: pes.len(),
                })
                .collect(),
            dropped,
        }
    }
}

fn ms(s: f64) -> f64 {
    s * 1e3
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace report: {} PEs, makespan {:.3}ms, utilization {:.1}%{}",
            self.pes,
            ms(self.makespan),
            self.utilization * 100.0,
            if self.dropped > 0 {
                format!(" ({} events dropped — partial)", self.dropped)
            } else {
                String::new()
            }
        )?;
        writeln!(
            f,
            "{:>4} {:>10} {:>7} {:>7} {:>12}",
            "PE", "busy", "util", "waits", "wait time"
        )?;
        for pe in 0..self.pes {
            let (wn, wt) = self.waits_per_pe.get(pe).copied().unwrap_or((0, 0.0));
            writeln!(
                f,
                "{:>4} {:>8.3}ms {:>6.1}% {:>7} {:>10.3}ms",
                pe,
                ms(self.busy_per_pe.get(pe).copied().unwrap_or(0.0)),
                self.utilization_per_pe.get(pe).copied().unwrap_or(0.0) * 100.0,
                wn,
                ms(wt)
            )?;
        }
        let h = &self.hop_latency;
        writeln!(
            f,
            "hops: {} inter-PE ({} bytes), latency mean {:.3}ms p50 {:.3}ms p90 {:.3}ms p99 {:.3}ms max {:.3}ms",
            h.count,
            self.bytes_transferred,
            ms(h.mean),
            ms(h.p50),
            ms(h.p90),
            ms(h.p99),
            ms(h.max)
        )?;
        match self.pipeline_fill {
            Some(t) => writeln!(f, "pipeline fill: {:.3}ms", ms(t))?,
            None => writeln!(f, "pipeline fill: n/a (some PE never executed)")?,
        }
        writeln!(f, "itineraries ({} messengers):", self.itineraries.len())?;
        for it in &self.itineraries {
            writeln!(
                f,
                "  {:<24} execs {:>4}  hops {:>4}  busy {:>8.3}ms  PEs {}",
                it.label,
                it.execs,
                it.hops,
                ms(it.busy),
                it.pes_visited
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::trace::TraceEvent;
    use navp_sim::VTime;

    fn push(t: &mut Trace, s: u64, e: u64, actor: u64, label: &str, kind: TraceKind) {
        t.push(TraceEvent {
            start: VTime(s),
            end: VTime(e),
            actor,
            label: label.into(),
            kind,
        });
    }

    fn two_pe_trace() -> Trace {
        let mut t = Trace::enabled();
        // Actor 1 runs on PE0, hops to PE1, runs there.
        push(&mut t, 0, 100, 1, "A", TraceKind::Exec { pe: 0 });
        push(
            &mut t,
            100,
            150,
            1,
            "A",
            TraceKind::Transfer {
                from: 0,
                to: 1,
                bytes: 64,
            },
        );
        push(&mut t, 150, 250, 1, "A", TraceKind::Exec { pe: 1 });
        // PE1 waited for the hop.
        push(&mut t, 0, 150, 2, "B", TraceKind::Block { pe: 1 });
        t
    }

    #[test]
    fn report_totals_are_consistent() {
        let r = TraceReport::from_trace(&two_pe_trace(), 2, 0);
        assert_eq!(r.pes, 2);
        assert!((r.makespan - 250e-9).abs() < 1e-15);
        assert!((r.busy_per_pe[0] - 100e-9).abs() < 1e-15);
        assert!((r.busy_per_pe[1] - 100e-9).abs() < 1e-15);
        assert_eq!(r.hop_latency.count, 1);
        assert!((r.hop_latency.max - 50e-9).abs() < 1e-15);
        assert_eq!(r.bytes_transferred, 64);
        assert_eq!(r.waits_per_pe[1].0, 1);
        // PE1 first executes at 150ns → pipeline fill.
        assert!((r.pipeline_fill.unwrap() - 150e-9).abs() < 1e-15);
        let a = r.itineraries.iter().find(|i| i.actor == 1).unwrap();
        assert_eq!((a.execs, a.hops, a.pes_visited), (2, 1, 2));
    }

    #[test]
    fn pipeline_fill_absent_when_a_pe_never_runs() {
        let r = TraceReport::from_trace(&two_pe_trace(), 3, 0);
        assert_eq!(r.pipeline_fill, None);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut t = Trace::enabled();
        for i in 0..100u64 {
            push(
                &mut t,
                i * 10,
                i * 10 + i,
                i,
                "H",
                TraceKind::Transfer {
                    from: 0,
                    to: 1,
                    bytes: 1,
                },
            );
        }
        let h = TraceReport::from_trace(&t, 2, 0).hop_latency;
        assert_eq!(h.count, 100);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);
        assert!(h.mean > 0.0);
    }

    #[test]
    fn display_renders_without_panicking() {
        let r = TraceReport::from_trace(&two_pe_trace(), 2, 5);
        let s = r.to_string();
        assert!(s.contains("2 PEs"), "{s}");
        assert!(s.contains("partial"), "{s}");
        assert!(s.contains("pipeline fill"), "{s}");
    }

    #[test]
    fn empty_trace_report_is_all_zeros() {
        let r = TraceReport::from_trace(&Trace::enabled(), 4, 0);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.hop_latency, LatencyStats::default());
        assert_eq!(r.pipeline_fill, None);
        assert!(r.itineraries.is_empty());
    }
}
