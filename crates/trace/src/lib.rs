//! Wall-clock tracing for the *real* NavP executors.
//!
//! The simulator (`navp_sim`) already records a [`Trace`] in virtual
//! time — that is how the repo regenerates the paper's Figure-1
//! space-time diagrams. This crate extends the same trace model to the
//! wall-clock executors:
//!
//! * [`PeRecorder`] — a bounded, lock-free (single-writer) ring buffer
//!   each PE daemon owns. Events are stamped with nanoseconds since a
//!   per-recorder anchor `Instant`, so recording is one `Instant::elapsed`
//!   plus a vector write; when disabled it is a single branch.
//! * [`merge_pe_traces`] — combines per-PE event logs into one
//!   [`Trace`] on a common timeline, correcting each PE's clock by a
//!   signed offset measured at collection time (Cristian's algorithm in
//!   the net executor; zero offsets for in-process threads that share
//!   one anchor).
//! * [`ChromeTrace`] — Chrome trace-event / Perfetto JSON export, so a
//!   traced run opens directly in `ui.perfetto.dev`, plus a hand-rolled
//!   validator ([`validate_chrome_json`]) used by tests and CI (the
//!   workspace has no serde).
//! * [`TraceReport`] — derived metrics: per-PE utilization, hop-latency
//!   percentiles, event-wait breakdown, pipeline-fill time, and
//!   messenger itinerary summaries.
//!
//! The design contract, matching the sim: tracing is off by default,
//! must not touch the data path (products stay bitwise identical), and
//! bounded buffers mean a runaway run degrades to dropped trace events,
//! never to unbounded memory.

pub mod chrome;
pub mod json;
pub mod merge;
pub mod recorder;
pub mod report;

pub use chrome::{validate_chrome_json, ChromeSummary, ChromeTrace};
pub use merge::{merge_pe_traces, PeLog};
pub use recorder::PeRecorder;
pub use report::TraceReport;

// Re-export the shared trace model so executor crates need only one
// trace dependency.
pub use navp_sim::trace::{Trace, TraceEvent, TraceKind};
pub use navp_sim::VTime;
