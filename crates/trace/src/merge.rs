//! Merging per-PE wall-clock logs onto one corrected timeline.
//!
//! Each PE records events against its own anchor clock. The executor
//! measures, per PE, a signed offset that maps local nanoseconds into
//! the coordinator's timeline (Cristian's algorithm over the collect
//! round-trip for the net executor; all zeros for in-process threads,
//! whose daemons share one anchor). The merge applies the offsets,
//! normalizes the earliest instant to t=0, and emits a sorted
//! [`Trace`] that the sim's renderer and statistics consume unchanged.
//!
//! Transfers are the one subtle case: the *receiving* PE records the
//! span, but its `start` field carries the **sender's** clock (the
//! send timestamp travels with the hop frame). So a Transfer start is
//! corrected with the sender's offset and its end with the receiver's;
//! residual skew that would make a hop look acausal is clamped to a
//! zero-length span rather than a negative one.

use navp_sim::trace::{Trace, TraceEvent, TraceKind};
use navp_sim::VTime;
use std::collections::HashMap;

/// One PE's collected log: its events (local clock), the signed
/// nanosecond offset mapping that clock into the coordinator timeline,
/// and how many events its ring buffer evicted.
#[derive(Debug, Clone, Default)]
pub struct PeLog {
    /// PE that recorded these events.
    pub pe: usize,
    /// Add this to the PE's local timestamps to get coordinator time.
    pub offset_ns: i64,
    /// Events in recording order, stamped with the PE's local clock.
    pub events: Vec<TraceEvent>,
    /// Events evicted by the PE's ring buffer (trace is incomplete).
    pub dropped: u64,
}

/// Merge per-PE logs into one normalized [`Trace`]. Returns the trace
/// and the total number of events dropped across all PEs.
pub fn merge_pe_traces(logs: Vec<PeLog>) -> (Trace, u64) {
    let offsets: HashMap<usize, i64> = logs.iter().map(|l| (l.pe, l.offset_ns)).collect();
    let mut dropped = 0u64;
    // Work in i128 so offset application can't wrap; normalize after.
    let mut staged: Vec<(i128, i128, TraceEvent)> = Vec::new();
    for log in logs {
        dropped += log.dropped;
        let own = log.offset_ns as i128;
        for ev in log.events {
            let start_off = match ev.kind {
                // Transfer starts are stamped by the *sender's* clock.
                TraceKind::Transfer { from, .. } => {
                    offsets.get(&from).map(|o| *o as i128).unwrap_or(own)
                }
                _ => own,
            };
            let s = ev.start.0 as i128 + start_off;
            let e = (ev.end.0 as i128 + own).max(s);
            staged.push((s, e, ev));
        }
    }
    if staged.is_empty() {
        return (Trace::enabled(), dropped);
    }
    let t0 = staged.iter().map(|(s, _, _)| *s).min().unwrap_or(0);
    staged.sort_by(|a, b| {
        (a.0, a.1, a.2.actor)
            .cmp(&(b.0, b.1, b.2.actor))
            .then_with(|| kind_rank(&a.2.kind).cmp(&kind_rank(&b.2.kind)))
    });
    let mut trace = Trace::enabled();
    for (s, e, mut ev) in staged {
        ev.start = VTime((s - t0).max(0) as u64);
        ev.end = VTime((e - t0).max(0) as u64);
        trace.push(ev);
    }
    (trace, dropped)
}

fn kind_rank(k: &TraceKind) -> u8 {
    match k {
        TraceKind::Exec { .. } => 0,
        TraceKind::Transfer { .. } => 1,
        TraceKind::Block { .. } => 2,
        TraceKind::Signal { .. } => 3,
        TraceKind::Fault { .. } => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u64, e: u64, actor: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            start: VTime(s),
            end: VTime(e),
            actor,
            label: "M".into(),
            kind,
        }
    }

    #[test]
    fn offsets_align_two_pe_clocks() {
        // PE0's clock is 1000ns behind the coordinator, PE1's 500 ahead.
        let logs = vec![
            PeLog {
                pe: 0,
                offset_ns: 1000,
                events: vec![ev(0, 100, 1, TraceKind::Exec { pe: 0 })],
                dropped: 0,
            },
            PeLog {
                pe: 1,
                offset_ns: -500,
                events: vec![ev(1600, 1700, 2, TraceKind::Exec { pe: 1 })],
                dropped: 3,
            },
        ];
        let (trace, dropped) = merge_pe_traces(logs);
        assert_eq!(dropped, 3);
        let evs = trace.events();
        assert_eq!(evs.len(), 2);
        // PE0: 0+1000=1000 → normalized 0. PE1: 1600-500=1100 → 100.
        assert_eq!(evs[0].start, VTime(0));
        assert_eq!(evs[0].end, VTime(100));
        assert_eq!(evs[1].start, VTime(100));
        assert_eq!(evs[1].end, VTime(200));
    }

    #[test]
    fn transfer_start_uses_sender_offset() {
        // Receiver PE1 records a hop from PE0; start is on PE0's clock.
        let hop = ev(
            100,
            250,
            7,
            TraceKind::Transfer {
                from: 0,
                to: 1,
                bytes: 64,
            },
        );
        let logs = vec![
            PeLog {
                pe: 0,
                offset_ns: 0,
                events: vec![ev(0, 100, 7, TraceKind::Exec { pe: 0 })],
                dropped: 0,
            },
            PeLog {
                pe: 1,
                offset_ns: -50,
                events: vec![hop],
                dropped: 0,
            },
        ];
        let (trace, _) = merge_pe_traces(logs);
        let t = trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceKind::Transfer { .. }))
            .unwrap();
        // start: 100 + offset[0]=0 → 100; end: 250 + offset[1]=-50 → 200.
        assert_eq!(t.start, VTime(100));
        assert_eq!(t.end, VTime(200));
    }

    #[test]
    fn acausal_skew_clamps_to_zero_length() {
        // Offsets so wrong the hop would end before it starts.
        let hop = ev(
            100,
            110,
            7,
            TraceKind::Transfer {
                from: 0,
                to: 1,
                bytes: 8,
            },
        );
        let logs = vec![
            PeLog {
                pe: 0,
                offset_ns: 10_000,
                events: vec![],
                dropped: 0,
            },
            PeLog {
                pe: 1,
                offset_ns: 0,
                events: vec![hop],
                dropped: 0,
            },
        ];
        let (trace, _) = merge_pe_traces(logs);
        let t = &trace.events()[0];
        assert_eq!(t.start, t.end, "clamped, not negative");
    }

    #[test]
    fn empty_merge_is_an_empty_enabled_trace() {
        let (trace, dropped) = merge_pe_traces(vec![]);
        assert!(trace.events().is_empty());
        assert_eq!(dropped, 0);
        // Must still accept pushes (it is the executors' output type).
        assert_eq!(trace.makespan(), VTime::ZERO);
    }

    #[test]
    fn merge_sorts_by_corrected_start() {
        let logs = vec![PeLog {
            pe: 0,
            offset_ns: 0,
            events: vec![
                ev(500, 600, 2, TraceKind::Exec { pe: 0 }),
                ev(0, 100, 1, TraceKind::Exec { pe: 0 }),
            ],
            dropped: 0,
        }];
        let (trace, _) = merge_pe_traces(logs);
        assert!(trace.events()[0].start <= trace.events()[1].start);
        assert_eq!(trace.events()[0].actor, 1);
    }
}
