//! Chrome trace-event (Perfetto) export.
//!
//! Emits the JSON Object Format of the Trace Event spec: a top-level
//! `{"traceEvents": [...]}` whose entries are complete spans
//! (`"ph":"X"`, with `ts`/`dur` in microseconds), instants
//! (`"ph":"i"`), and process-name metadata (`"ph":"M"`). PEs map to
//! Chrome *processes* and messengers to *threads*, so loading the file
//! in `ui.perfetto.dev` shows one swim-lane per PE with named messenger
//! tracks — the paper's space-time diagram, zoomable.
//!
//! [`validate_chrome_json`] re-parses an export with the in-crate JSON
//! parser and checks the schema; tests and the CI loopback job use it
//! as the round-trip oracle since the workspace has no serde.

use crate::json::{escape_into, Json};
use navp_sim::trace::{Trace, TraceKind};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Extension trait adding Chrome trace-event export to [`Trace`].
pub trait ChromeTrace {
    /// Serialize as Chrome trace-event JSON (µs timestamps), openable
    /// in `ui.perfetto.dev` or `chrome://tracing`.
    fn to_chrome_json(&self) -> String;
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

impl ChromeTrace for Trace {
    fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(s);
        };
        // Metadata: name each PE lane and each (PE, messenger) track.
        let mut pes = BTreeSet::new();
        let mut tracks = BTreeSet::new();
        for e in self.events() {
            let (pe, _) = home_of(&e.kind);
            pes.insert(pe);
            if tracks.insert((pe, e.actor)) {
                let mut m = String::new();
                let _ = write!(
                    m,
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pe},\"tid\":{},\"args\":{{\"name\":\"",
                    e.actor
                );
                escape_into(&mut m, &e.label);
                m.push_str("\"}}");
                emit(&m, &mut out);
            }
        }
        for pe in &pes {
            emit(
                &format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pe},\"args\":{{\"name\":\"PE {pe}\"}}}}"
                ),
                &mut out,
            );
        }
        for e in self.events() {
            let (pe, cat) = home_of(&e.kind);
            let mut rec = String::new();
            let instant = e.start == e.end;
            let ph = if instant { "i" } else { "X" };
            let _ = write!(
                rec,
                "{{\"ph\":\"{ph}\",\"pid\":{pe},\"tid\":{},\"ts\":{:.3},",
                e.actor,
                us(e.start.0)
            );
            if !instant {
                let _ = write!(rec, "\"dur\":{:.3},", us(e.end.0.saturating_sub(e.start.0)));
            } else {
                rec.push_str("\"s\":\"p\",");
            }
            let _ = write!(rec, "\"cat\":\"{cat}\",\"name\":\"");
            escape_into(&mut rec, &e.label);
            rec.push('"');
            if let TraceKind::Transfer { from, to, bytes } = e.kind {
                let _ = write!(
                    rec,
                    ",\"args\":{{\"from\":{from},\"to\":{to},\"bytes\":{bytes}}}"
                );
            }
            rec.push('}');
            emit(&rec, &mut out);
        }
        out.push_str("\n]}");
        out
    }
}

/// Which PE lane an event is drawn in, and its category string. A
/// transfer is drawn on the *receiving* PE (where the hop lands).
fn home_of(kind: &TraceKind) -> (usize, &'static str) {
    match kind {
        TraceKind::Exec { pe } => (*pe, "exec"),
        TraceKind::Transfer { to, .. } => (*to, "transfer"),
        TraceKind::Block { pe } => (*pe, "block"),
        TraceKind::Signal { pe } => (*pe, "signal"),
        TraceKind::Fault { pe } => (*pe, "fault"),
    }
}

/// What a validated Chrome export contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Non-metadata events.
    pub events: usize,
    /// Distinct `pid`s (PEs) among non-metadata events, ascending.
    pub pids: Vec<usize>,
    /// `"cat":"exec"` spans.
    pub execs: usize,
    /// `"cat":"transfer"` spans.
    pub transfers: usize,
    /// `"cat":"block"` events.
    pub blocks: usize,
    /// `"cat":"signal"` instants.
    pub signals: usize,
}

/// Parse a Chrome trace-event document and check the schema: a
/// `traceEvents` array whose spans carry numeric `pid`/`tid`/`ts` (and
/// `dur` for `"X"`), with non-negative durations. Returns a summary of
/// what the trace covered, or a description of the first violation.
pub fn validate_chrome_json(doc: &str) -> Result<ChromeSummary, String> {
    let root = Json::parse(doc).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut sum = ChromeSummary::default();
    let mut pids = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let num = |field: &str| {
            ev.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i} (ph {ph}): missing numeric {field}"))
        };
        match ph {
            "M" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("metadata event {i}: missing name"))?;
            }
            "X" | "i" => {
                let pid = num("pid")?;
                num("tid")?;
                let ts = num("ts")?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts"));
                }
                if ph == "X" && num("dur")? < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: missing name"))?;
                sum.events += 1;
                pids.insert(pid as usize);
                match ev.get("cat").and_then(Json::as_str).unwrap_or("") {
                    "exec" => sum.execs += 1,
                    "transfer" => sum.transfers += 1,
                    "block" => sum.blocks += 1,
                    "signal" => sum.signals += 1,
                    _ => {}
                }
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    sum.pids = pids.into_iter().collect();
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use navp_sim::trace::TraceEvent;
    use navp_sim::VTime;

    fn sample() -> Trace {
        let mut t = Trace::enabled();
        t.push(TraceEvent {
            start: VTime(1_000),
            end: VTime(5_000),
            actor: 7,
            label: "RowCarrier(3)".into(),
            kind: TraceKind::Exec { pe: 0 },
        });
        t.push(TraceEvent {
            start: VTime(5_000),
            end: VTime(9_000),
            actor: 7,
            label: "RowCarrier(3)".into(),
            kind: TraceKind::Transfer {
                from: 0,
                to: 1,
                bytes: 640,
            },
        });
        t.push(TraceEvent {
            start: VTime(9_000),
            end: VTime(9_000),
            actor: 7,
            label: "evil \"label\"\n".into(),
            kind: TraceKind::Signal { pe: 1 },
        });
        t
    }

    #[test]
    fn export_roundtrips_through_the_validator() {
        let doc = sample().to_chrome_json();
        let sum = validate_chrome_json(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(sum.events, 3);
        assert_eq!(sum.pids, vec![0, 1]);
        assert_eq!((sum.execs, sum.transfers, sum.signals), (1, 1, 1));
    }

    #[test]
    fn transfer_spans_carry_from_to_bytes_args() {
        let doc = sample().to_chrome_json();
        let root = Json::parse(&doc).unwrap();
        let evs = root.get("traceEvents").and_then(Json::as_arr).unwrap();
        let t = evs
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("transfer"))
            .expect("transfer event");
        let args = t.get("args").unwrap();
        assert_eq!(args.get("from").and_then(Json::as_num), Some(0.0));
        assert_eq!(args.get("to").and_then(Json::as_num), Some(1.0));
        assert_eq!(args.get("bytes").and_then(Json::as_num), Some(640.0));
        // Timestamps are µs: 1000ns span start → 1.0µs.
        let exec = evs
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("exec"))
            .unwrap();
        assert_eq!(exec.get("ts").and_then(Json::as_num), Some(1.0));
        assert_eq!(exec.get("dur").and_then(Json::as_num), Some(4.0));
    }

    #[test]
    fn metadata_names_every_pe() {
        let doc = sample().to_chrome_json();
        let root = Json::parse(&doc).unwrap();
        let evs = root.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("name").and_then(Json::as_str) == Some("process_name")
            })
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["PE 0", "PE 1"]);
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = Trace::enabled().to_chrome_json();
        let sum = validate_chrome_json(&doc).unwrap();
        assert_eq!(sum.events, 0);
        assert!(sum.pids.is_empty());
    }

    #[test]
    fn validator_rejects_wrong_shapes() {
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("[1,2]").is_err());
        assert!(validate_chrome_json(r#"{"traceEvents":[{"pid":0}]}"#).is_err());
        assert!(validate_chrome_json(
            r#"{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1,"name":"a"}]}"#
        )
        .is_err(), "X without dur must fail");
    }
}
