//! Per-PE wall-clock recorders.
//!
//! One recorder per PE daemon, owned and written by exactly one thread:
//! the hot path is `Instant::elapsed` + a bounded vector write, with no
//! locks and no allocation after the first lap. A disabled recorder
//! costs one branch per call site.

use navp_sim::trace::{TraceEvent, TraceKind};
use navp_sim::VTime;
use std::time::Instant;

/// Default per-PE event capacity. At ~80 bytes/event this bounds a PE's
/// trace memory to a few MB even on long runs; overflow evicts the
/// oldest events and counts them in [`PeRecorder::dropped`].
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A bounded single-writer event log stamped in nanoseconds since a
/// local anchor [`Instant`].
///
/// Timestamps are *local*: comparable within one recorder, and across
/// recorders only after [`merge_pe_traces`](crate::merge_pe_traces)
/// applies per-PE clock offsets. The thread executor hands every daemon
/// the same anchor (offsets all zero); the net executor anchors each PE
/// process independently and measures offsets at collection time.
#[derive(Debug)]
pub struct PeRecorder {
    anchor: Instant,
    enabled: bool,
    cap: usize,
    /// Ring storage: once `events.len() == cap`, `head` marks the
    /// logical start and new events overwrite the oldest slot.
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

impl PeRecorder {
    /// A recorder that drops everything (the default; one branch/event).
    pub fn disabled() -> PeRecorder {
        PeRecorder::with_anchor(Instant::now(), false, DEFAULT_CAPACITY)
    }

    /// An enabled recorder with the default capacity, anchored now.
    pub fn enabled() -> PeRecorder {
        PeRecorder::with_anchor(Instant::now(), true, DEFAULT_CAPACITY)
    }

    /// Full-control constructor: shared anchors make in-process
    /// recorders directly comparable; a small `cap` is useful in tests.
    pub fn with_anchor(anchor: Instant, enabled: bool, cap: usize) -> PeRecorder {
        PeRecorder {
            anchor,
            enabled,
            cap: cap.max(1),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether this recorder keeps events. Call sites should gate any
    /// non-trivial argument construction (label formatting etc.) on
    /// this so the disabled path stays free.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since this recorder's anchor — the timestamp domain
    /// of every event it stores. Returns 0 when disabled so callers can
    /// stamp unconditionally without branching.
    pub fn now_ns(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Record a span; no-op when disabled, evicts the oldest event when
    /// at capacity.
    pub fn record(&mut self, start_ns: u64, end_ns: u64, actor: u64, label: &str, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent {
            start: VTime(start_ns),
            end: VTime(end_ns.max(start_ns)),
            actor,
            label: label.to_string(),
            kind,
        };
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Record an instantaneous event at `now_ns()`.
    pub fn instant(&mut self, actor: u64, label: &str, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        let t = self.now_ns();
        self.record(t, t, actor, label, kind);
    }

    /// Events evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or recording is disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drain events in recording order (oldest surviving event first)
    /// together with the dropped count, resetting the recorder.
    pub fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        let head = std::mem::take(&mut self.head);
        let mut evs = std::mem::take(&mut self.events);
        evs.rotate_left(head);
        (evs, std::mem::take(&mut self.dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(pe: usize) -> TraceKind {
        TraceKind::Exec { pe }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = PeRecorder::disabled();
        r.record(0, 10, 1, "A", exec(0));
        r.instant(1, "A", TraceKind::Signal { pe: 0 });
        assert!(r.is_empty());
        assert_eq!(r.now_ns(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn records_in_order_and_clamps_backwards_spans() {
        let mut r = PeRecorder::enabled();
        r.record(5, 3, 1, "A", exec(0));
        let (evs, dropped) = r.take();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 1);
        // A span whose end precedes its start is clamped, not negative.
        assert_eq!(evs[0].start, VTime(5));
        assert_eq!(evs[0].end, VTime(5));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = PeRecorder::with_anchor(Instant::now(), true, 3);
        for i in 0..5u64 {
            r.record(i, i + 1, i, &i.to_string(), exec(0));
        }
        assert_eq!(r.dropped(), 2);
        let (evs, dropped) = r.take();
        assert_eq!(dropped, 2);
        // Oldest two (0, 1) evicted; order preserved for survivors.
        let actors: Vec<u64> = evs.iter().map(|e| e.actor).collect();
        assert_eq!(actors, vec![2, 3, 4]);
    }

    #[test]
    fn take_resets_the_recorder() {
        let mut r = PeRecorder::with_anchor(Instant::now(), true, 2);
        r.record(0, 1, 0, "A", exec(0));
        r.record(1, 2, 1, "B", exec(0));
        r.record(2, 3, 2, "C", exec(0));
        let (evs, dropped) = r.take();
        assert_eq!((evs.len(), dropped), (2, 1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.record(3, 4, 3, "D", exec(0));
        let (evs, dropped) = r.take();
        assert_eq!((evs.len(), dropped), (1, 0));
        assert_eq!(evs[0].actor, 3);
    }

    #[test]
    fn now_ns_is_monotone() {
        let r = PeRecorder::enabled();
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }
}
