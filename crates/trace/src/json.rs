//! A minimal JSON parser, enough to validate our own Chrome-trace
//! exports in tests and CI.
//!
//! The workspace deliberately has zero external dependencies, so there
//! is no serde; this is a small recursive-descent parser for the full
//! JSON grammar (objects, arrays, strings with escapes, numbers,
//! literals). It is used only on trusted, self-produced input — errors
//! carry a byte position for debugging, not hardened diagnostics.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// The object's field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the source.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept, combine when valid.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte at a time.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "x"}, []], "c": {}}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn decodes_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair → one astral scalar.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", r#""unterminated"#, "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "line\n\"quote\"\\back\ttab\u{1}end é😀";
        let mut doc = String::from("\"");
        escape_into(&mut doc, nasty);
        doc.push('"');
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
