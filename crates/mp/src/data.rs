//! Message payloads.

use std::any::Any;
use std::fmt;

/// A typed message payload with an explicit wire size.
///
/// The wire size is declared (rather than derived) for the same reason
/// `navp_sim::NodeStore` declares bytes: the simulation executors charge
/// communication cost from it, and phantom payloads (shape-only blocks)
/// must cost exactly what their real counterparts would.
pub struct MpData {
    bytes: u64,
    val: Box<dyn Any + Send>,
}

impl MpData {
    /// Wrap `val`, declaring its wire size.
    pub fn new<T: Any + Send>(val: T, bytes: u64) -> MpData {
        MpData {
            bytes,
            val: Box::new(val),
        }
    }

    /// A payload with size but no content (phantom-mode block transfers).
    pub fn empty(bytes: u64) -> MpData {
        MpData::new((), bytes)
    }

    /// Declared wire size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Take the payload as `T`; returns `Err(self)` unchanged when the
    /// payload is of a different type.
    pub fn downcast<T: Any + Send>(self) -> Result<T, MpData> {
        match self.val.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(val) => Err(MpData {
                bytes: self.bytes,
                val,
            }),
        }
    }

    /// Borrow the payload as `T` without consuming it.
    pub fn peek<T: Any + Send>(&self) -> Option<&T> {
        self.val.downcast_ref()
    }
}

impl fmt::Debug for MpData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MpData({} bytes)", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_typed_payload() {
        let d = MpData::new(vec![1.0f64, 2.0], 16);
        assert_eq!(d.bytes(), 16);
        assert_eq!(d.peek::<Vec<f64>>().unwrap()[1], 2.0);
        let v: Vec<f64> = d.downcast().unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn downcast_mismatch_preserves_payload() {
        let d = MpData::new(7u32, 4);
        let d = d.downcast::<String>().unwrap_err();
        assert_eq!(d.bytes(), 4);
        assert_eq!(d.downcast::<u32>().unwrap(), 7);
    }

    #[test]
    fn empty_payload_costs_bytes() {
        let d = MpData::empty(1 << 20);
        assert_eq!(d.bytes(), 1 << 20);
        assert!(d.peek::<()>().is_some());
    }
}
