//! An MPI-like message-passing substrate.
//!
//! The paper compares NavP against Gentleman's algorithm written in
//! LAM/MPI. This crate reproduces the MPI subset that implementation
//! needs — point-to-point sends, receives with source/tag matching, and
//! barriers — on top of the *same* virtual cluster model (`navp-sim`)
//! the NavP runtime uses, so the two paradigms are compared under one
//! machine.
//!
//! A rank is a [`Process`]: a state machine stepped by an executor, where
//! each step ends in an [`MpEffect`] (send / recv / barrier / done) —
//! the same explicit-continuation style as `navp::Messenger`, which keeps
//! the comparison honest at the source level too.
//!
//! Semantics notes (mirroring the paper's implementation, Section 4):
//!
//! * Sends are **buffered/eager**: the sender resumes once the payload
//!   has left its NIC; the paper's code uses non-blocking receives with
//!   blocking sends precisely so that nothing rendezvous-deadlocks.
//! * [`MpEffect::Recv`] blocks until a matching message arrives. Posting
//!   `MPI_Irecv` early and `MPI_Wait`ing later is, under this buffered
//!   model, cost-equivalent to a blocking receive at the wait point —
//!   and crucially it preserves the *fixed reception order* that the
//!   paper's Section 5 identifies as MPI's artificial sequencing.
//!   `from: None` gives wildcard (`MPI_ANY_SOURCE`) matching, which the
//!   scheduling ablation uses to model relaxed ordering.
//!
//! Two executors mirror the NavP ones: [`MpSimExecutor`] (deterministic
//! virtual time) and [`MpThreadExecutor`] (one OS thread per rank,
//! wall-clock).

#![warn(missing_docs)]

pub mod data;
pub mod error;
pub mod process;
pub mod sim_exec;
pub mod thread_exec;

pub use data::MpData;
pub use error::MpError;
pub use process::{MpCharges, MpCluster, MpEffect, ProcCtx, Process, RankScript, Tag};
pub use sim_exec::{MpSimExecutor, MpSimReport};
pub use thread_exec::{MpThreadExecutor, MpWallReport};
